"""Unit tests for the canonical run report and terminal dashboard."""

import json

import numpy as np

from repro.telemetry import (
    CostSnapshot,
    EventBus,
    FleetSample,
    ProfilePhase,
    RingBufferSink,
    build_report,
    render_dashboard,
)
from repro.telemetry.events import RequestSpanEvent
from repro.telemetry.report import (
    REPORT_SCHEMA,
    downsample_series,
    sparkline,
)


def _span(time, status="ok"):
    return RequestSpanEvent(
        time=time, request_id=int(time), status=status, queue=0.1,
        prefill=0.2, decode=0.6, wan=0.1, total=1.0, retries=0,
        replica_id=1, zone="aws:z:a", batch_size=1, queue_depth=0,
    )


def _events():
    events = []
    for i in range(20):
        t = float(i * 10)
        events.append(FleetSample(t, 3 if i % 4 else 1, 4))
        events.append(_span(t, status="ok" if i % 5 else "failed"))
    events.append(CostSnapshot(200.0, 1.25, 2.75, 4.0))
    return events


class TestDownsample:
    def test_short_series_pass_through(self):
        series = [(0.0, 1.0), (10.0, 2.0)]
        assert downsample_series(series, width=64) == [1.0, 2.0]

    def test_time_weighted_bucket_means(self):
        # Step function: value 0 for [0, 50), value 10 for [50, 100).
        series = [(0.0, 0.0), (50.0, 10.0), (100.0, 10.0)]
        out = downsample_series(series, width=2)
        assert out == [0.0, 10.0]

    def test_deterministic(self):
        series = [(float(i), float(i % 7)) for i in range(500)]
        assert downsample_series(series, 32) == downsample_series(series, 32)
        assert len(downsample_series(series, 32)) == 32

    def test_sparkline_levels(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"


class TestBuildReport:
    def test_sections_present(self):
        report = build_report(_events(), label="unit")
        data = report.to_dict()
        assert data["schema"] == REPORT_SCHEMA
        assert data["label"] == "unit"
        assert data["events"]["count"] == 41
        assert data["events"]["time_start"] == 0.0
        assert data["events"]["time_end"] == 200.0
        assert data["timelines"]["fleet_ready"]
        assert data["latency"]["latency.ok"]["count"] == 16
        assert data["latency"]["ttft"]["count"] == 16
        assert "availability" in data["slo"]

    def test_json_byte_identical_across_invocations(self):
        events = _events()
        r1 = build_report(events, label="x").to_json()
        r2 = build_report(events, label="x").to_json()
        assert r1 == r2
        assert r1.endswith("\n")
        json.loads(r1)  # valid JSON

    def test_profile_phases_excluded_from_time_range(self):
        events = _events()
        # A profile event stamped with wall-clock time must not stretch
        # the simulated time range.
        events.append(ProfilePhase(99999.0, "replay.policy", 10, 0.5, 0.1, True))
        report = build_report(events, label="x")
        data = report.to_dict()
        assert data["events"]["time_end"] == 200.0
        assert data["profile"][0]["phase"] == "replay.policy"

    def test_dropped_total_from_marker_events(self):
        from repro.telemetry import EventsDropped

        events = _events()
        events.append(EventsDropped(150.0, 42, 1000))
        report = build_report(events, label="x")
        assert report.to_dict()["events"]["dropped_total"] == 42

    def test_burn_alerts_listed(self):
        events = [_span(float(i), status="failed") for i in range(6)]
        report = build_report(
            events, label="x", window_fast=60.0, window_slow=600.0
        )
        data = report.to_dict()
        assert data["alerts"]
        assert data["alerts"][0]["state"] == "firing"
        assert data["slo"]["ttft"]["firing"]

    def test_from_replay_events(self):
        from repro.cloud import SpotTrace
        from repro.core import spothedge
        from repro.experiments import ReplayConfig, TraceReplayer

        zones = ["aws:r1:a", "aws:r1:b"]
        rng = np.random.default_rng(0)
        trace = SpotTrace("t", zones, 60.0, rng.integers(0, 4, size=(2, 128)))
        sink = RingBufferSink()
        replayer = TraceReplayer(
            trace, ReplayConfig(n_tar=2), telemetry=EventBus([sink])
        )
        replayer.run(spothedge(zones))
        report = build_report(sink.events, label="replay")
        data = report.to_dict()
        assert data["timelines"]["cost_total"][-1] > 0
        assert sum(data["counters"]["replica_launches_total"].values()) >= 1


class TestRenderDashboard:
    def test_renders_all_sections(self):
        events = _events()
        events.append(ProfilePhase(0.0, "replay.policy", 8, 0.4, 0.1, True))
        report = build_report(events, label="demo")
        text = render_dashboard(report)
        assert "demo" in text
        assert "fleet" in text
        assert "hot phases" in text
        assert "replay.policy" in text
        assert "(sampled)" in text

    def test_dashboard_is_pure_function_of_report(self):
        events = _events()
        a = render_dashboard(build_report(events, label="x"))
        b = render_dashboard(build_report(events, label="x"))
        assert a == b
