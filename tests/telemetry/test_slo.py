"""Unit tests for SLO budgets and multi-window burn-rate monitors."""

import math

import pytest

from repro.telemetry import (
    BurnRateMonitor,
    EventBus,
    FleetSample,
    RingBufferSink,
    SloBudget,
    SloMonitorSink,
    burn_rate,
    default_budgets,
)
from repro.telemetry.events import RequestSpanEvent


def _span(time, status="ok", queue=0.1, prefill=0.2, wan=0.05, total=1.0):
    return RequestSpanEvent(
        time=time, request_id=1, status=status, queue=queue, prefill=prefill,
        decode=total - queue - prefill - wan, wan=wan, total=total,
        retries=0, replica_id=1, zone="aws:z:a", batch_size=1, queue_depth=0,
    )


class TestBurnRate:
    def test_exact_budget_boundary(self):
        # bad fraction == error budget -> burn exactly 1.0.
        assert burn_rate(0.01, 0.01) == 1.0

    def test_zero_bad_is_zero_even_with_zero_budget(self):
        assert burn_rate(0.0, 0.0) == 0.0

    def test_zero_budget_with_bad_is_infinite(self):
        assert burn_rate(0.001, 0.0) == math.inf

    def test_proportional(self):
        assert burn_rate(0.144, 0.01) == pytest.approx(14.4)


class TestSloBudget:
    def test_error_budget(self):
        assert SloBudget("x", 0.99).error_budget == pytest.approx(0.01)

    def test_target_bounds(self):
        with pytest.raises(ValueError):
            SloBudget("x", 1.0)
        with pytest.raises(ValueError):
            SloBudget("x", 0.0)

    def test_defaults_cover_paper_slos(self):
        budgets = default_budgets()
        assert set(budgets) == {"ttft", "latency", "availability"}
        assert budgets["ttft"].threshold_s == 10.0
        assert math.isnan(budgets["availability"].threshold_s)


class TestBurnRateMonitor:
    def _monitor(self, **kw):
        kw.setdefault("window_fast", 60.0)
        kw.setdefault("window_slow", 600.0)
        kw.setdefault("threshold", 10.0)
        return BurnRateMonitor(SloBudget("x", 0.99, 1.0), **kw)

    def test_window_ordering_enforced(self):
        with pytest.raises(ValueError):
            BurnRateMonitor(
                SloBudget("x", 0.99), window_fast=600.0, window_slow=60.0
            )

    def test_fires_only_when_both_windows_burn(self):
        monitor = self._monitor()
        # All-bad observations: both windows hit burn 100 >= 10.
        alert = None
        for i in range(5):
            alert = monitor.observe(float(i), bad=True) or alert
        assert monitor.firing
        assert alert is not None and alert.state == "firing"
        assert monitor.transitions == 1

    def test_boundary_burn_exactly_at_threshold_fires(self):
        # error budget 1%, threshold 10 -> bad fraction exactly 10%
        # burns at exactly the threshold; >= fires.
        monitor = self._monitor()
        for i in range(9):
            monitor.observe(float(i), bad=False)
        assert not monitor.firing
        monitor.observe(9.0, bad=True)  # 1 bad / 10 = burn 10.0
        assert monitor.firing

    def test_burn_just_below_threshold_does_not_fire(self):
        monitor = self._monitor()
        for i in range(10):
            monitor.observe(float(i), bad=False)
        monitor.observe(10.0, bad=True)  # 1/11 -> burn ~9.09
        assert not monitor.firing

    def test_fast_spike_alone_does_not_fire(self):
        monitor = self._monitor()
        # A long good history fills the slow window...
        for i in range(500):
            monitor.observe(float(i), bad=False)
        # ...then a 10-observation bad burst: the fast window (60 s)
        # sees ~100% bad, the slow window only ~2% (burn 2 < 10).
        for i in range(500, 510):
            monitor.observe(float(i), bad=True)
        assert monitor.burn_fast() >= monitor.threshold
        assert monitor.burn_slow() < monitor.threshold
        assert not monitor.firing

    def test_edge_triggered_resolution(self):
        monitor = self._monitor()
        for i in range(5):
            monitor.observe(float(i), bad=True)
        assert monitor.firing
        # Bad observations age out of both windows; advance() alone
        # must resolve the alert even with no new traffic.
        alert = monitor.advance(1000.0)
        assert alert is not None and alert.state == "resolved"
        assert not monitor.firing
        assert monitor.transitions == 2
        # Steady state emits nothing further.
        assert monitor.advance(2000.0) is None

    def test_observe_value_uses_latency_threshold(self):
        monitor = self._monitor()
        monitor.observe_value(0.0, 0.5)  # under 1 s threshold: good
        monitor.observe_value(1.0, 1.5)  # over: bad
        assert monitor.burn_fast() == pytest.approx(0.5 / 0.01)

    def test_observe_value_requires_threshold(self):
        monitor = BurnRateMonitor(
            SloBudget("x", 0.99), window_fast=60.0, window_slow=600.0
        )
        with pytest.raises(ValueError):
            monitor.observe_value(0.0, 1.0)

    def test_alerts_published_to_bus(self):
        sink = RingBufferSink()
        monitor = self._monitor(bus=EventBus([sink]))
        for i in range(3):
            monitor.observe(float(i), bad=True)
        kinds = [e.kind for e in sink.events]
        assert kinds == ["slo.burn_alert"]


class TestSloMonitorSink:
    def test_failed_spans_burn_ttft_and_latency(self):
        sink = SloMonitorSink(
            window_fast=60.0, window_slow=600.0, threshold=10.0
        )
        for i in range(5):
            sink.accept(_span(float(i), status="timeout"))
        assert sink.monitors["ttft"].firing
        assert sink.monitors["latency"].firing
        assert not sink.monitors["availability"].firing

    def test_availability_is_time_weighted(self):
        sink = SloMonitorSink(
            window_fast=60.0, window_slow=600.0, threshold=10.0
        )
        # 10 s at target, then 10 s below target.
        sink.accept(FleetSample(0.0, 4, 4))
        sink.accept(FleetSample(10.0, 1, 4))   # interval [0,10] was good
        sink.accept(FleetSample(20.0, 1, 4))   # interval [10,20] was bad
        monitor = sink.monitors["availability"]
        # 10 bad seconds of 20 -> bad fraction 0.5, budget 0.1% -> 500x.
        assert monitor.burn_fast() == pytest.approx(0.5 / 0.001)
        assert monitor.firing

    def test_snapshot_is_json_native(self):
        import json

        sink = SloMonitorSink()
        sink.accept(_span(1.0))
        snap = sink.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["ttft"]["transitions"] == 0
        assert snap["availability"]["threshold_s"] is None

    def test_feed_returns_transition_alerts_in_order(self):
        sink = SloMonitorSink(
            window_fast=60.0, window_slow=600.0, threshold=10.0
        )
        events = [_span(float(i), status="failed") for i in range(4)]
        alerts = sink.feed(events)
        assert [a.state for a in alerts] == ["firing", "firing"]
        assert sorted(a.budget for a in alerts) == ["latency", "ttft"]
