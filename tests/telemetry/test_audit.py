"""Unit tests for the policy decision audit log."""

from repro.telemetry import EventBus, PolicyAuditLog, PolicyDecision, RingBufferSink


class TestPolicyAuditLog:
    def test_records_carry_clock_and_sequence(self):
        log = PolicyAuditLog(policy="SpotHedge")
        log.touch(10.0)
        first = log.record("target_mix", spot_target=4, fallback=1)
        log.touch(20.0)
        second = log.record("select_zone", zone="aws:z:a")
        assert (first.seq, first.time) == (0, 10.0)
        assert (second.seq, second.time) == (1, 20.0)
        assert first.policy == "SpotHedge"
        assert first.data == {"spot_target": 4, "fallback": 1}

    def test_query_helpers(self):
        log = PolicyAuditLog()
        log.record("target_mix", spot_target=4)
        log.record("select_zone", zone="a")
        log.record("select_zone", zone="b")
        assert len(log) == 3
        assert log.count("select_zone") == 2
        assert [r.data["zone"] for r in log.records("select_zone")] == ["a", "b"]
        assert log.last("select_zone").data["zone"] == "b"
        assert log.last("rebalance") is None

    def test_forwards_to_bus_as_policy_decision_events(self):
        sink = RingBufferSink()
        log = PolicyAuditLog(policy="SpotHedge", bus=EventBus([sink]))
        log.touch(5.0)
        log.record("rebalance", restored=["aws:z:a"], active=1)
        (event,) = sink.events
        assert isinstance(event, PolicyDecision)
        assert event.time == 5.0
        assert event.policy == "SpotHedge"
        assert event.decision == "rebalance"
        assert event.data == {"restored": ["aws:z:a"], "active": 1}

    def test_no_bus_still_records(self):
        log = PolicyAuditLog()
        log.record("target_mix", spot_target=1)
        assert len(log) == 1
        assert log.bus.enabled is False
