"""Tests for event-log summarisation and rendering."""

from repro.telemetry import (
    AutoscaleDecision,
    ChaosInjected,
    ChaosScenarioEnded,
    ChaosScenarioStarted,
    CostSnapshot,
    PolicyDecision,
    ReplicaLaunch,
    ReplicaPreempted,
    ReplicaReady,
    ReplicaTerminated,
    RequestSpanEvent,
    format_summary,
    summarize,
)


def _span(request_id, total, status="ok"):
    return RequestSpanEvent(
        time=float(total),
        request_id=request_id,
        status=status,
        queue=1.0,
        prefill=0.5,
        decode=total - 1.5,
        wan=0.0,
        total=float(total),
        retries=0,
        replica_id=1,
        zone="aws:z:a",
    )


def sample_events():
    return [
        ReplicaLaunch(time=0.0, replica_id=1, zone="aws:z:a", spot=True),
        ReplicaLaunch(time=0.0, replica_id=2, zone="aws:z:b", spot=False),
        ReplicaReady(time=120.0, replica_id=1, zone="aws:z:a", spot=True),
        ReplicaReady(time=90.0, replica_id=2, zone="aws:z:b", spot=False),
        PolicyDecision(
            time=150.0, policy="SpotHedge", decision="rebalance",
            data={"restored": ["aws:z:c"]},
        ),
        AutoscaleDecision(time=200.0, old_target=2, new_target=3, request_rate=0.4),
        _span(1, 10.0),
        _span(2, 12.0),
        _span(3, 100.0, status="failed"),
        ReplicaPreempted(time=300.0, replica_id=1, zone="aws:z:a", spot=True,
                         warned=True),
        ReplicaTerminated(time=400.0, replica_id=2, zone="aws:z:b", spot=False,
                          reason="scale_down"),
        CostSnapshot(time=500.0, spot=1.25, on_demand=0.75, total=2.0),
    ]


class TestSummarize:
    def test_aggregates(self):
        s = summarize(sample_events())
        assert s.total_events == 12
        assert s.start_time == 0.0
        assert s.end_time == 500.0
        assert s.counts_by_kind["request.span"] == 3
        assert s.completed_spans == 2
        assert s.failed_spans == 1
        assert s.preemptions_by_zone == {"aws:z:a": 1}
        assert s.warned_preemptions == 1
        assert s.policy_decisions == {"rebalance": 1}
        assert s.rebalance_times == [150.0]
        assert s.autoscale_moves == [(200.0, 2, 3)]
        assert s.final_cost == (1.25, 0.75)

    def test_replica_lifecycle_rows(self):
        s = summarize(sample_events())
        one, two = s.replicas[1], s.replicas[2]
        assert (one.launched, one.ready, one.ended) == (0.0, 120.0, 300.0)
        assert one.outcome == "preempted (warned)"
        assert one.spot is True
        assert two.outcome == "scale_down"
        assert two.spot is False

    def test_empty_log(self):
        s = summarize([])
        assert s.total_events == 0
        assert not s.replicas


class TestFormatSummary:
    def test_sections_present(self):
        text = format_summary(sample_events())
        assert "events by kind:" in text
        assert "replica timeline:" in text
        assert "preemptions: 1 total (1 warned)" in text
        assert "request spans: 2 completed, 1 failed" in text
        assert "policy decisions:" in text
        assert "Z_P rebalances at: 150s" in text
        assert "autoscale moves: t=200s: 2->3" in text
        assert "cost: $2.00 (spot $1.25 / on-demand $0.75)" in text

    def test_replica_limit_truncates(self):
        events = [
            ReplicaLaunch(time=float(i), replica_id=i, zone="z", spot=True)
            for i in range(10)
        ]
        text = format_summary(events, replica_limit=4)
        assert "... 6 more replicas" in text

    def test_empty_log_renders(self):
        assert "0 events" in format_summary([])


def chaos_events():
    return [
        ChaosScenarioStarted(time=0.0, scenario="storm-demo", injections=2),
        ChaosInjected(time=3600.0, scenario="storm-demo",
                      injection="preemption_storm",
                      zones=["aws:z:a", "aws:z:b"],
                      detail="pulse systemic severity=1"),
        ChaosInjected(time=3900.0, scenario="storm-demo",
                      injection="preemption_storm", zones=["aws:z:a"],
                      detail="pulse independent severity=1"),
        ChaosInjected(time=5000.0, scenario="storm-demo",
                      injection="warning_disruption", zones=["aws:z:b"],
                      detail="warning suppressed"),
        ChaosScenarioEnded(time=10800.0, scenario="storm-demo", injected=3),
    ]


class TestChaosRendering:
    def test_summarize_collects_chaos_state(self):
        s = summarize(chaos_events())
        assert s.chaos_scenario == "storm-demo"
        assert s.chaos_ended_at == 10800.0
        assert len(s.chaos_injections) == 3
        assert s.chaos_injections[0] == (
            3600.0, "preemption_storm", 2, "pulse systemic severity=1"
        )
        assert s.chaos_injections_by_kind == {
            "preemption_storm": 2,
            "warning_disruption": 1,
        }

    def test_injected_alone_still_names_scenario(self):
        s = summarize(chaos_events()[1:2])
        assert s.chaos_scenario == "storm-demo"

    def test_format_has_chaos_section(self):
        text = format_summary(chaos_events())
        assert "chaos scenario 'storm-demo': 3 injections, ended t=10800s" in text
        assert "preemption_storm" in text
        assert "t=3600s: preemption_storm hit 2 zones (pulse systemic severity=1)" in text
        assert "t=5000s: warning_disruption hit 1 zone (warning suppressed)" in text

    def test_injection_list_truncates(self):
        events = [ChaosScenarioStarted(time=0.0, scenario="many", injections=1)]
        events += [
            ChaosInjected(time=float(i), scenario="many",
                          injection="preemption_storm", zones=["z"])
            for i in range(14)
        ]
        text = format_summary(events)
        assert "... 4 more injections" in text

    def test_no_chaos_no_section(self):
        assert "chaos" not in format_summary(sample_events())


class TestObservabilitySections:
    def test_dropped_events_warning(self):
        from repro.telemetry import EventsDropped

        events = sample_events() + [EventsDropped(450.0, 7, 1000)]
        s = summarize(events)
        assert s.dropped_total == 7
        text = format_summary(events)
        assert "WARNING: the producing sink dropped 7 events" in text
        assert "undercount" in text

    def test_last_dropped_marker_wins(self):
        from repro.telemetry import EventsDropped

        events = [EventsDropped(1.0, 3, 10), EventsDropped(2.0, 9, 10)]
        assert summarize(events).dropped_total == 9

    def test_no_drops_no_warning(self):
        assert "WARNING" not in format_summary(sample_events())

    def test_lb_fallbacks_counted(self):
        from repro.telemetry import LoadBalancerFallback

        events = sample_events() + [
            LoadBalancerFallback(10.0, 5, 1, "locality"),
            LoadBalancerFallback(11.0, 6, 2, "locality"),
        ]
        assert summarize(events).lb_fallbacks == 2
        assert "load-balancer locality fallbacks: 2" in format_summary(events)

    def test_burn_alert_table(self):
        from repro.telemetry import SloBurnAlert

        events = sample_events() + [
            SloBurnAlert(50.0, "ttft", "firing", 20.0, 12.0, 300.0, 3600.0, 10.0),
            SloBurnAlert(90.0, "ttft", "resolved", 1.0, 2.0, 300.0, 3600.0, 10.0),
        ]
        s = summarize(events)
        assert s.burn_alerts == [
            (50.0, "ttft", "firing"), (90.0, "ttft", "resolved"),
        ]
        text = format_summary(events)
        assert "SLO burn alerts: 2 transitions (1 firing)" in text
        assert "ttft" in text

    def test_burn_alert_table_truncates(self):
        from repro.telemetry import SloBurnAlert

        events = [
            SloBurnAlert(float(i), "ttft", "firing" if i % 2 == 0 else "resolved",
                         20.0, 12.0, 300.0, 3600.0, 10.0)
            for i in range(15)
        ]
        assert "... 3 more transitions" in format_summary(events)
