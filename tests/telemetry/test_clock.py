"""The sanctioned wall-clock seam (``repro.telemetry.clock``)."""

from __future__ import annotations

from repro.telemetry import clock


def test_wall_monotonic_never_decreases() -> None:
    samples = [clock.wall_monotonic() for _ in range(10)]
    assert samples == sorted(samples)


def test_wall_time_is_epoch_seconds() -> None:
    # Sanity only: a plausibly-modern epoch timestamp, not a counter.
    assert clock.wall_time() > 1_500_000_000


def test_public_surface_is_exactly_the_two_accessors() -> None:
    assert clock.__all__ == ["wall_monotonic", "wall_time"]
