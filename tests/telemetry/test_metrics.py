"""Unit tests for the typed time-series metrics registry."""

import json
import math

import numpy as np
import pytest

from repro.telemetry import (
    CostSnapshot,
    EventBus,
    FleetSample,
    MetricRegistry,
    MetricsSink,
    ReplicaPreempted,
    RequestSpanEvent,
    registry_from_events,
)
from repro.telemetry.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
)


class TestCounter:
    def test_inc(self):
        c = CounterMetric()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            CounterMetric().inc(-1)


class TestGauge:
    def test_series_records_time_value_pairs(self):
        g = GaugeMetric()
        g.set(0.0, 1.0)
        g.set(10.0, 3.0)
        assert g.last == 3.0
        assert g.series() == [(0.0, 1.0), (10.0, 3.0)]

    def test_same_time_overwrites(self):
        g = GaugeMetric()
        g.set(5.0, 1.0)
        g.set(5.0, 2.0)
        assert g.series() == [(5.0, 2.0)]

    def test_last_only_mode_keeps_no_series(self):
        g = GaugeMetric(series=False)
        for i in range(100):
            g.set(float(i), float(i))
        assert g.last == 99.0
        assert g.series() == []


class TestHistogramPercentiles:
    def test_quantiles_match_numpy_on_in_range_data(self):
        edges = (1.0, 2.0, 3.0, 4.0, 5.0)
        h = HistogramMetric(edges)
        rng = np.random.default_rng(7)
        samples = rng.uniform(0.5, 5.5, size=500)
        for s in samples:
            h.observe(float(s))
        for q in (0, 25, 50, 90, 99, 100):
            estimate = h.quantile(q)
            exact = float(np.percentile(samples, q))
            # Bucket interpolation is exact only up to one bucket width.
            assert abs(estimate - exact) <= 1.0, (q, estimate, exact)

    def test_extremes_are_exact(self):
        h = HistogramMetric((10.0, 20.0))
        for v in (3.0, 12.0, 31.0):
            h.observe(v)
        assert h.quantile(0) == 3.0
        assert h.quantile(100) == 31.0

    def test_single_observation(self):
        h = HistogramMetric((1.0,))
        h.observe(0.5)
        assert h.quantile(50) == 0.5

    def test_empty_histogram(self):
        h = HistogramMetric((1.0,))
        assert math.isnan(h.quantile(50))

    def test_deterministic(self):
        h1, h2 = HistogramMetric((1.0, 2.0)), HistogramMetric((1.0, 2.0))
        for v in (0.1, 0.9, 1.5, 1.7, 5.0):
            h1.observe(v)
            h2.observe(v)
        assert h1.to_dict() == h2.to_dict()


class TestRegistry:
    def test_reregistration_is_idempotent(self):
        reg = MetricRegistry()
        a = reg.counter("x_total", "help", ("zone",))
        b = reg.counter("x_total", "help", ("zone",))
        assert a is b

    def test_type_mismatch_rejected(self):
        reg = MetricRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_label_mismatch_rejected(self):
        reg = MetricRegistry()
        reg.counter("x_total", labels=("zone",))
        with pytest.raises(ValueError):
            reg.counter("x_total", labels=("region",))

    def test_to_dict_is_canonical_json(self):
        reg = MetricRegistry()
        reg.counter("b_total").labels().inc(2)
        reg.gauge("a_value").labels().set(1.0, 3.0)
        text = json.dumps(reg.to_dict(), sort_keys=True)
        reg2 = MetricRegistry()
        reg2.gauge("a_value").labels().set(1.0, 3.0)  # other order
        reg2.counter("b_total").labels().inc(2)
        assert json.dumps(reg2.to_dict(), sort_keys=True) == text

    def test_prometheus_render_escapes_quoted_zone_ids(self):
        # Regression: a zone id containing quotes/backslash/newline must
        # render as valid exposition text through the registry path too.
        reg = MetricRegistry()
        family = reg.counter("preempt_total", "Preempted.", ("zone",))
        family.labels('gcp:"us"\n\\z').inc()
        text = reg.render_prometheus()
        assert 'zone="gcp:\\"us\\"\\n\\\\z"' in text
        assert "\n\n" not in text

    def test_prometheus_render_histogram_cumulative_buckets(self):
        reg = MetricRegistry()
        h = reg.histogram("lat_seconds", buckets=(1.0, 2.0))
        child = h.labels()
        for v in (0.5, 1.5, 3.0):
            child.observe(v)
        text = reg.render_prometheus()
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="2.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text


def _span(time, status="ok", **kw):
    defaults = dict(
        request_id=1, status=status, queue=0.1, prefill=0.2, decode=1.0,
        wan=0.05, total=1.35, retries=0, replica_id=1, zone="aws:z:a",
        batch_size=2, queue_depth=1,
    )
    defaults.update(kw)
    return RequestSpanEvent(time=time, **defaults)


class TestMetricsSink:
    def test_aggregates_from_bus(self):
        sink = MetricsSink()
        bus = EventBus([sink])
        bus.emit(ReplicaPreempted(
            time=1.0, replica_id=1, zone="aws:z:a", spot=True, warned=True
        ))
        bus.emit(_span(2.0))
        bus.emit(_span(3.0, status="failed"))
        bus.emit(FleetSample(4.0, 3, 4))
        bus.emit(CostSnapshot(5.0, 1.5, 2.5, 4.0))
        reg = sink.registry
        preempt = reg.counter(
            "replica_preemptions_total", labels=("zone",)
        )
        assert preempt.labels("aws:z:a").value == 1
        lat = reg.histogram("request_latency_seconds", labels=("status",))
        assert lat.labels("ok").count == 1
        assert lat.labels("failed").count == 1
        ready = reg.gauge("fleet_ready_replicas")
        assert ready.labels().series() == [(4.0, 3.0)]
        cost = reg.gauge("cost_accrued_dollars", labels=("market",))
        assert cost.labels("total").last == 4.0

    def test_ttft_only_observed_for_ok_spans(self):
        sink = MetricsSink()
        sink.accept(_span(1.0))
        sink.accept(_span(2.0, status="timeout"))
        ttft = sink.registry.histogram("request_ttft_seconds")
        assert ttft.labels().count == 1
        # TTFT = queue + prefill + wan.
        assert ttft.labels().total == pytest.approx(0.35)

    def test_every_event_counted_by_kind(self):
        events = [_span(float(i)) for i in range(3)]
        reg = registry_from_events(events)
        family = reg.counter("events_total", labels=("kind",))
        assert family.labels("request.span").value == 3

    def test_unknown_kinds_still_counted(self):
        sink = MetricsSink()
        bus = EventBus([sink])
        bus.emit(CostSnapshot(1.0, 0.0, 0.0, 0.0))
        family = sink.registry.counter("events_total", labels=("kind",))
        assert family.labels("cost.snapshot").value == 1
