"""Unit tests for event sinks and JSONL round-trips."""

import io

import pytest

from repro.telemetry import (
    JsonlSink,
    PrometheusSnapshot,
    ReplicaLaunch,
    ReplicaPreempted,
    ReplicaReady,
    RingBufferSink,
    read_events,
)


def _event(i):
    return ReplicaReady(time=float(i), replica_id=i, zone="aws:z:a", spot=True)


class TestRingBufferSink:
    def test_unbounded_keeps_everything(self):
        sink = RingBufferSink()
        for i in range(100):
            sink.accept(_event(i))
        assert len(sink) == 100
        assert sink.dropped == 0

    def test_bounded_drops_oldest(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.accept(_event(i))
        assert [e.replica_id for e in sink.events] == [2, 3, 4]
        assert sink.dropped == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_clear(self):
        sink = RingBufferSink(capacity=1)
        sink.accept(_event(0))
        sink.accept(_event(1))
        sink.clear()
        assert len(sink) == 0
        assert sink.dropped == 0

    def test_dropped_total_counts_every_overwrite(self):
        sink = RingBufferSink(capacity=2)
        for i in range(7):
            sink.accept(_event(i))
        assert sink.dropped_total == 5
        assert sink.dropped == sink.dropped_total  # legacy alias
        assert sink.capacity == 2

    def test_drop_event_packages_the_loss(self):
        sink = RingBufferSink(capacity=2)
        assert sink.drop_event() is None  # nothing dropped yet
        for i in range(5):
            sink.accept(_event(i))
        marker = sink.drop_event()
        assert marker is not None
        assert marker.kind == "telemetry.dropped"
        assert marker.dropped_total == 3
        assert marker.capacity == 2
        assert marker.time == 4.0  # last buffered event's timestamp

    def test_unbounded_never_produces_drop_event(self):
        sink = RingBufferSink()
        for i in range(10):
            sink.accept(_event(i))
        assert sink.dropped_total == 0
        assert sink.capacity == 0
        assert sink.drop_event() is None


class TestJsonlSink:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [
            ReplicaLaunch(time=0.0, replica_id=1, zone="aws:z:a", spot=True),
            ReplicaReady(time=5.0, replica_id=1, zone="aws:z:a", spot=True),
            ReplicaPreempted(
                time=9.0, replica_id=1, zone="aws:z:a", spot=True, warned=True
            ),
        ]
        with JsonlSink(path) as sink:
            for event in events:
                sink.accept(event)
            assert sink.count == 3
        restored = read_events(path)
        assert restored == events
        assert [type(e) for e in restored] == [type(e) for e in events]

    def test_stream_target_not_closed(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.accept(_event(0))
        sink.close()
        assert not stream.closed
        assert stream.getvalue().count("\n") == 1

    def test_blank_lines_skipped_on_read(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "replica.ready", "time": 1.0, '
                        '"replica_id": 1, "zone": "z", "spot": true}\n\n')
        assert len(read_events(path)) == 1


class TestPrometheusSnapshot:
    def test_counts_by_kind_and_zone(self):
        snap = PrometheusSnapshot()
        snap.accept(_event(1))
        snap.accept(_event(2))
        snap.accept(ReplicaReady(time=3.0, replica_id=3, zone="aws:z:b", spot=True))
        assert snap.counts() == {
            ("replica.ready", "aws:z:a"): 2,
            ("replica.ready", "aws:z:b"): 1,
        }
        assert snap.last_event_time == 3.0

    def test_render_text_format(self):
        snap = PrometheusSnapshot()
        snap.accept(_event(1))
        text = snap.render()
        assert "# TYPE repro_events_total counter" in text
        assert 'repro_events_total{kind="replica.ready",zone="aws:z:a"} 1' in text
        assert text.endswith("\n")

    def test_gauges_sampled_at_render_time(self):
        snap = PrometheusSnapshot()
        cost = {"value": 1.0}
        snap.register_gauge(
            "repro_cost_dollars",
            lambda: cost["value"],
            labels={"market": "spot"},
            help_text="Accrued cost.",
        )
        cost["value"] = 2.5  # mutated after registration, before render
        text = snap.render()
        assert "# TYPE repro_cost_dollars gauge" in text
        assert 'repro_cost_dollars{market="spot"} 2.5' in text

    def test_label_escaping(self):
        snap = PrometheusSnapshot()
        snap.accept(ReplicaReady(time=0.0, replica_id=1, zone='z"1', spot=True))
        assert 'zone="z\\"1"' in snap.render()

    def test_label_escaping_backslash_and_newline(self):
        # Exposition format: \ -> \\, " -> \", newline -> \n, in that
        # escape order (a backslash introduced by the quote escape must
        # not be doubled).
        snap = PrometheusSnapshot()
        snap.accept(
            ReplicaReady(time=0.0, replica_id=1, zone='a\\b"c\nd', spot=True)
        )
        assert 'zone="a\\\\b\\"c\\nd"' in snap.render()

    def test_gauge_label_values_escaped(self):
        snap = PrometheusSnapshot()
        snap.register_gauge(
            "repro_cost_dollars",
            lambda: 1.0,
            labels={"zone": 'z"1\n'},
        )
        assert 'zone="z\\"1\\n"' in snap.render()

    def test_help_text_escaped(self):
        # HELP lines escape backslash and newline (quotes are legal).
        snap = PrometheusSnapshot()
        snap.register_gauge(
            "repro_cost_dollars",
            lambda: 1.0,
            help_text='Accrued "cost"\nwith a \\ backslash.',
        )
        text = snap.render()
        assert (
            '# HELP repro_cost_dollars Accrued "cost"\\nwith a \\\\ backslash.'
            in text
        )
        # The exposition stays one-metric-per-line despite the newline.
        assert all(
            line.startswith(("#", "repro_"))
            for line in text.strip().split("\n")
        )
