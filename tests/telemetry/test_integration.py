"""End-to-end telemetry tests against the real serving stack.

Covers the acceptance properties from the telemetry design: deterministic
event ordering under a fixed seed, JSONL round-trips of a live run, span
legs that sum exactly to the client-recorded end-to-end latency, and a
disabled bus that adds no events (and no behaviour change).
"""

import pytest

from repro.cloud import HOUR, aws1
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
    SkyService,
)
from repro.telemetry import (
    NULL_BUS,
    EventBus,
    JsonlSink,
    RingBufferSink,
    read_events,
)
from repro.workloads import poisson_workload


def make_spec():
    return ServiceSpec(
        name="svc",
        replica_policy=ReplicaPolicyConfig(fixed_target=2),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=60.0,
    )


def run_once(telemetry=None, *, seed=7, duration=HOUR):
    trace = aws1()
    service = SkyService(
        make_spec(), spothedge(trace.zone_ids), trace, seed=seed, telemetry=telemetry
    )
    workload = poisson_workload(duration, rate=0.1, seed=3)
    report = service.run(workload, duration)
    return service, report


class TestDeterministicOrdering:
    def test_same_seed_same_event_stream(self):
        streams = []
        for _ in range(2):
            sink = RingBufferSink()
            run_once(EventBus([sink]))
            streams.append([e.to_dict() for e in sink.events])
        assert streams[0] == streams[1]
        assert streams[0]  # the run actually produced events

    def test_emission_order_follows_simulated_time(self):
        # Span events are stamped with the client-receive time (server
        # finish + WAN leg) but emitted at server finish, so subtract the
        # WAN leg to recover each event's emission time.
        sink = RingBufferSink()
        run_once(EventBus([sink]))
        times = [
            e.time - e.wan if e.kind == "request.span" else e.time
            for e in sink.events
        ]
        for earlier, later in zip(times, times[1:]):
            assert later >= earlier - 1e-6  # float slack from the wan round-trip


class TestJsonlRoundTrip:
    def test_full_run_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ring = RingBufferSink()
        bus = EventBus([ring, JsonlSink(path)])
        run_once(bus)
        bus.close()
        restored = read_events(path)
        assert [e.to_dict() for e in restored] == [e.to_dict() for e in ring.events]
        # Typed reconstruction, not GenericEvent fallback.
        assert {type(e).__name__ for e in restored} >= {
            "ReplicaLaunch",
            "ReplicaReady",
            "RouteDecision",
            "RequestSpanEvent",
            "PolicyDecision",
        }


class TestSpanAccounting:
    def test_span_totals_equal_client_latencies(self):
        service, report = run_once(EventBus([RingBufferSink()]))
        spans = service.client.spans.completed
        assert len(spans) == report.completed
        span_totals = sorted(s.total for s in spans)
        latencies = sorted(service.client.latencies.samples)
        # Equal up to float rounding: the legs sum the same quantities
        # the client's latency sample computes, in a different order.
        assert span_totals == pytest.approx(latencies, abs=1e-9)

    def test_legs_sum_to_total(self):
        service, _ = run_once(EventBus([RingBufferSink()]))
        for span in service.client.spans.completed:
            assert sum(span.legs.values()) == pytest.approx(span.total, abs=1e-9)
            assert all(v >= 0 for v in span.legs.values())

    def test_failed_requests_get_failed_spans(self):
        service, report = run_once(EventBus([RingBufferSink()]))
        assert len(service.client.spans.failed) == report.failed
        # Requests still in flight when the run ends keep open spans.
        in_flight = report.total_requests - report.completed - report.failed
        assert service.client.spans.open_count == in_flight


class TestDisabledBus:
    def test_no_telemetry_uses_null_bus(self):
        service, report = run_once(telemetry=None)
        assert service.telemetry is NULL_BUS
        assert service.engine.telemetry.enabled is False
        assert report.total_requests > 0

    def test_empty_bus_collects_nothing(self):
        bus = EventBus()  # no sinks -> disabled
        run_once(bus)
        assert bus.enabled is False

    def test_results_identical_with_and_without_telemetry(self):
        _, without = run_once(telemetry=None)
        _, with_bus = run_once(EventBus([RingBufferSink()]))
        assert without.completed == with_bus.completed
        assert without.failed == with_bus.failed
        assert without.total_cost == pytest.approx(with_bus.total_cost)


class TestAuditWiring:
    def test_policy_audit_attached_when_telemetry_on(self):
        sink = RingBufferSink()
        service, _ = run_once(EventBus([sink]))
        audit = service.policy.audit
        assert audit is not None
        assert audit.count("target_mix") >= 1
        # Audit records surfaced on the bus as policy.decision events.
        decisions = [e for e in sink.events if e.kind == "policy.decision"]
        assert len(decisions) == len(audit)

    def test_no_audit_without_telemetry(self):
        service, _ = run_once(telemetry=None)
        assert service.policy.audit is None
