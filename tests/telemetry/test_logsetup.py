"""Tests for stdlib logging configuration."""

import logging

import pytest

from repro.telemetry import configure_logging, root_logger


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    logger = logging.getLogger("repro")
    saved = (logger.level, list(logger.handlers), logger.propagate)
    yield
    logger.level, logger.handlers, logger.propagate = saved[0], saved[1], saved[2]


class TestConfigureLogging:
    def test_sets_level_on_repro_root(self):
        configure_logging("DEBUG")
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_idempotent_single_handler(self):
        configure_logging("INFO")
        configure_logging("WARNING")
        logger = logging.getLogger("repro")
        assert len(logger.handlers) == 1
        assert logger.level == logging.WARNING

    def test_does_not_propagate_to_global_root(self):
        configure_logging("INFO")
        assert logging.getLogger("repro").propagate is False

    def test_module_loggers_inherit(self, caplog):
        configure_logging("DEBUG")
        child = logging.getLogger("repro.serving.controller")
        assert child.getEffectiveLevel() == logging.DEBUG

    def test_root_logger_helper(self):
        assert root_logger() is logging.getLogger("repro")
