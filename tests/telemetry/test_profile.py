"""Unit tests for the zero-overhead-when-disabled phase profiler."""

import pytest

from repro.telemetry import (
    NULL_PROFILER,
    EventBus,
    PhaseProfiler,
    RingBufferSink,
)
from repro.telemetry.profile import profiler_or_null


class TestPhaseProfiler:
    def test_accumulate_aggregates(self):
        prof = PhaseProfiler()
        prof.accumulate("a", 0.5)
        prof.accumulate("a", 1.5)
        prof.accumulate("b", 0.25)
        stats = prof.stats()
        assert list(stats) == ["a", "b"]  # sorted
        assert stats["a"].calls == 2
        assert stats["a"].total_s == 2.0
        assert stats["a"].max_s == 1.5
        assert stats["a"].mean_s == 1.0
        assert prof.total_s() == 2.25

    def test_phase_context_manager_times(self):
        prof = PhaseProfiler()
        ticks = iter([1.0, 3.5])
        prof.clock = lambda: next(ticks)
        with prof.phase("work"):
            pass
        assert prof.stats()["work"].total_s == 2.5

    def test_disabled_phase_is_shared_noop(self):
        prof = PhaseProfiler(enabled=False)
        a = prof.phase("a")
        b = prof.phase("b")
        assert a is b  # one shared instance: zero allocations
        with a:
            pass
        assert prof.stats() == {}

    def test_top_orders_by_total_then_name(self):
        prof = PhaseProfiler()
        prof.accumulate("z", 1.0)
        prof.accumulate("a", 1.0)
        prof.accumulate("big", 9.0)
        assert [s.name for s in prof.top(2)] == ["big", "a"]

    def test_merge(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        a.accumulate("x", 1.0)
        b.accumulate("x", 2.0, calls=3)
        b.accumulate("y", 0.5)
        a.merge(b)
        assert a.stats()["x"].calls == 4
        assert a.stats()["x"].total_s == 3.0
        assert a.stats()["x"].max_s == 2.0
        assert "y" in a.stats()

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            PhaseProfiler(stride=0)

    def test_emit_publishes_profile_phase_events(self):
        prof = PhaseProfiler(stride=16)
        prof.accumulate("replay.policy", 1.0, calls=10)
        sink = RingBufferSink()
        prof.emit(EventBus([sink]))
        (event,) = sink.events
        assert event.kind == "profile.phase"
        assert event.phase == "replay.policy"
        assert event.calls == 10
        assert event.sampled is True

    def test_null_profiler_guards_against_unguarded_hot_paths(self):
        assert not NULL_PROFILER.enabled
        with pytest.raises(RuntimeError):
            NULL_PROFILER.accumulate("x", 1.0)

    def test_profiler_or_null(self):
        prof = PhaseProfiler()
        assert profiler_or_null(prof) is prof
        assert profiler_or_null(None) is NULL_PROFILER


class TestReplayIntegration:
    def test_replay_records_all_five_phases(self):
        import numpy as np

        from repro.cloud import SpotTrace
        from repro.core import spothedge
        from repro.experiments import ReplayConfig, TraceReplayer

        zones = ["aws:r1:a", "aws:r1:b"]
        rng = np.random.default_rng(0)
        trace = SpotTrace(
            "t", zones, 60.0, rng.integers(0, 4, size=(2, 256))
        )
        prof = PhaseProfiler()
        replayer = TraceReplayer(trace, ReplayConfig(n_tar=2), profiler=prof)
        replayer.run(spothedge(zones))
        assert set(prof.stats()) == {
            "replay.promote", "replay.preempt", "replay.policy",
            "replay.reconcile", "replay.accrue",
        }
        # Stride-sampled: ~256/stride samples per phase.
        assert prof.stride > 1
        expected = 256 // prof.stride
        for stats in prof.stats().values():
            assert stats.calls == expected

    def test_replay_results_identical_with_and_without_profiler(self):
        import numpy as np

        from repro.cloud import SpotTrace
        from repro.core import spothedge
        from repro.experiments import ReplayConfig, TraceReplayer

        zones = ["aws:r1:a", "aws:r1:b"]
        rng = np.random.default_rng(1)
        trace = SpotTrace(
            "t", zones, 60.0, rng.integers(0, 4, size=(2, 200))
        )

        def run(profiler):
            replayer = TraceReplayer(
                trace, ReplayConfig(n_tar=2), seed=3, profiler=profiler
            )
            return replayer.run(spothedge(zones))

        plain = run(None)
        profiled = run(PhaseProfiler())
        assert plain.availability == profiled.availability
        assert plain.relative_cost == profiled.relative_cost
        assert plain.preemptions == profiled.preemptions
        assert np.array_equal(plain.ready_series, profiled.ready_series)
