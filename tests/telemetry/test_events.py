"""Unit tests for typed events and the event bus."""

import pytest

from repro.telemetry import (
    NULL_BUS,
    EventBus,
    GenericEvent,
    PolicyDecision,
    ReplicaPreempted,
    ReplicaReady,
    RingBufferSink,
    event_from_dict,
    event_kinds,
)


class TestRegistry:
    def test_expected_kinds_registered(self):
        kinds = event_kinds()
        for kind in (
            "replica.launch",
            "replica.ready",
            "replica.preempted",
            "replica.terminated",
            "replica.launch_failed",
            "replica.preempt_warning",
            "probe.failure",
            "autoscale.target",
            "lb.route",
            "request.span",
            "zone.capacity",
            "policy.decision",
            "cost.snapshot",
            "fleet.ready",
        ):
            assert kind in kinds

    def test_kinds_sorted_and_unique(self):
        kinds = event_kinds()
        assert kinds == sorted(kinds)
        assert len(kinds) == len(set(kinds))


class TestSerialization:
    def test_to_dict_includes_kind_and_fields(self):
        event = ReplicaReady(time=12.5, replica_id=3, zone="aws:z:a", spot=True)
        data = event.to_dict()
        assert data == {
            "kind": "replica.ready",
            "time": 12.5,
            "replica_id": 3,
            "zone": "aws:z:a",
            "spot": True,
        }

    def test_round_trip_preserves_type_and_values(self):
        event = ReplicaPreempted(
            time=7.0, replica_id=1, zone="aws:z:b", spot=True, warned=True
        )
        restored = event_from_dict(event.to_dict())
        assert isinstance(restored, ReplicaPreempted)
        assert restored == event

    def test_policy_decision_round_trip_keeps_data_dict(self):
        event = PolicyDecision(
            time=1.0,
            policy="SpotHedge",
            decision="target_mix",
            data={"spot_target": 4, "fallback": 1},
        )
        restored = event_from_dict(event.to_dict())
        assert isinstance(restored, PolicyDecision)
        assert restored.data == {"spot_target": 4, "fallback": 1}

    def test_unknown_kind_falls_back_to_generic(self):
        payload = {"kind": "future.metric", "time": 3.0, "value": 42}
        restored = event_from_dict(payload)
        assert isinstance(restored, GenericEvent)
        assert restored.time == 3.0
        assert restored.data == {"value": 42}
        # GenericEvent round-trips back to the original payload.
        assert restored.to_dict() == payload

    def test_extra_fields_from_newer_schema_ignored(self):
        payload = ReplicaReady(time=0.0, replica_id=1, zone="z", spot=False).to_dict()
        payload["added_in_v2"] = "whatever"
        restored = event_from_dict(payload)
        assert isinstance(restored, ReplicaReady)


class TestEventBus:
    def test_no_sinks_means_disabled(self):
        assert EventBus().enabled is False

    def test_attach_enables(self):
        bus = EventBus()
        bus.attach(RingBufferSink())
        assert bus.enabled is True

    def test_emit_fans_out_to_all_sinks(self):
        first, second = RingBufferSink(), RingBufferSink()
        bus = EventBus([first, second])
        event = ReplicaReady(time=0.0, replica_id=1, zone="z", spot=True)
        bus.emit(event)
        assert first.events == [event]
        assert second.events == [event]

    def test_emit_on_disabled_bus_is_noop(self):
        bus = EventBus()
        bus.emit(ReplicaReady(time=0.0, replica_id=1, zone="z", spot=True))

    def test_close_closes_sinks(self):
        class Closeable:
            closed = False

            def accept(self, event):
                pass

            def close(self):
                self.closed = True

        sink = Closeable()
        bus = EventBus([sink, RingBufferSink()])  # ring buffer has no close()
        bus.close()
        assert sink.closed


class TestNullBus:
    def test_disabled(self):
        assert NULL_BUS.enabled is False

    def test_attach_raises(self):
        with pytest.raises(RuntimeError):
            NULL_BUS.attach(RingBufferSink())
