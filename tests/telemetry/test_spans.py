"""Unit tests for request spans and the span recorder."""

import math

import pytest

from repro.telemetry import EventBus, RingBufferSink, SpanRecorder
from repro.telemetry.spans import RequestSpan


class TestRequestSpan:
    def test_legs_sum_exactly_to_total(self):
        span = RequestSpan(request_id=1, arrival=10.0)
        span.note_attempt(replica_id=2, zone="aws:z:a")
        span.mark_exec_start(12.0)
        span.mark_first_token(13.5)
        span._finalize(20.0, 0.25, "ok")
        assert span.legs == {
            "queue": 2.0,
            "prefill": 1.5,
            "decode": 6.5,
            "wan": 0.25,
        }
        assert span.total == 20.0 - 10.0 + 0.25

    def test_abort_resets_marks_and_counts_retry(self):
        span = RequestSpan(request_id=1, arrival=0.0)
        span.note_attempt(1, "aws:z:a")
        span.mark_exec_start(1.0)
        span.mark_first_token(2.0)
        span.note_abort()  # replica preempted mid-request
        assert span.retries == 1
        assert span.exec_start is None and span.first_token is None
        # The retry lands on another replica; lost time shows up in queue.
        span.note_attempt(2, "aws:z:b")
        span.mark_exec_start(8.0)
        span.mark_first_token(9.0)
        span._finalize(12.0, 0.0, "ok")
        assert span.legs["queue"] == 8.0
        assert span.legs["prefill"] == 1.0
        assert span.legs["decode"] == 3.0
        assert span.replica_id == 2

    def test_missing_marks_clamp_to_zero_legs(self):
        # A request failed before reaching a batching slot: everything is
        # queueing, and the leg identity still holds.
        span = RequestSpan(request_id=1, arrival=0.0)
        span._finalize(30.0, 0.0, "failed")
        assert span.legs == {"queue": 30.0, "prefill": 0.0, "decode": 0.0, "wan": 0.0}
        assert span.total == 30.0

    def test_total_before_finalize_raises(self):
        with pytest.raises(ValueError):
            RequestSpan(request_id=1, arrival=0.0).total

    def test_to_event_carries_breakdown(self):
        span = RequestSpan(request_id=7, arrival=0.0)
        span.note_attempt(3, "aws:z:c")
        span.mark_exec_start(1.0)
        span.mark_first_token(2.0)
        span._finalize(5.0, 0.5, "ok")
        event = span.to_event()
        assert event.kind == "request.span"
        assert event.request_id == 7
        assert event.replica_id == 3
        assert event.zone == "aws:z:c"
        assert event.queue + event.prefill + event.decode + event.wan == event.total
        assert event.time == 5.5  # server finish + wan


class TestSpanRecorder:
    def test_complete_moves_span_and_records_legs(self):
        recorder = SpanRecorder()
        span = recorder.open(1, arrival=0.0)
        span.mark_exec_start(1.0)
        span.mark_first_token(2.0)
        assert recorder.open_count == 1
        done = recorder.complete(1, finish=4.0, wan=0.5)
        assert done is span
        assert recorder.open_count == 0
        assert recorder.completed == [span]
        summaries = recorder.leg_summaries()
        assert summaries["total"].count == 1
        assert summaries["queue"].mean == pytest.approx(1.0)
        assert summaries["total"].mean == pytest.approx(4.5)

    def test_complete_unknown_id_returns_none(self):
        assert SpanRecorder().complete(99, finish=1.0, wan=0.0) is None

    def test_fail_records_separately(self):
        recorder = SpanRecorder()
        recorder.open(1, arrival=0.0)
        failed = recorder.fail(1, now=30.0)
        assert failed.status == "failed"
        assert recorder.failed == [failed]
        # Failed spans do not pollute the completed-leg percentiles.
        assert recorder.leg_summaries()["total"].count == 0

    def test_empty_summaries_are_nan_safe(self):
        summaries = SpanRecorder().leg_summaries()
        assert set(summaries) == {"queue", "prefill", "decode", "wan", "total"}
        for summary in summaries.values():
            assert not summary
            assert math.isnan(summary.p50)

    def test_emits_span_events_when_bus_enabled(self):
        sink = RingBufferSink()
        recorder = SpanRecorder(bus=EventBus([sink]))
        recorder.open(1, arrival=0.0)
        recorder.complete(1, finish=2.0, wan=0.0)
        recorder.open(2, arrival=0.0)
        recorder.fail(2, now=5.0)
        assert [e.kind for e in sink.events] == ["request.span", "request.span"]
        assert [e.status for e in sink.events] == ["ok", "failed"]

    def test_no_events_without_bus(self):
        recorder = SpanRecorder()
        recorder.open(1, arrival=0.0)
        recorder.complete(1, finish=1.0, wan=0.0)
        assert recorder.bus.enabled is False
