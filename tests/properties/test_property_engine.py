"""Property-based tests for the simulation engine."""

from hypothesis import given, settings, strategies as st

from repro.sim import SimulationEngine


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_events_always_fire_in_time_order(times):
    engine = SimulationEngine()
    fired = []
    for t in times:
        engine.call_at(t, lambda t=t: fired.append(t))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=30),
    st.floats(min_value=0.0, max_value=1000.0),
)
def test_run_until_partitions_events_exactly(times, cutoff):
    engine = SimulationEngine()
    fired = []
    for t in times:
        engine.call_at(t, lambda t=t: fired.append(t))
    engine.run_until(cutoff)
    assert all(t <= cutoff for t in fired)
    assert sorted(fired) == sorted(t for t in times if t <= cutoff)
    assert engine.now == cutoff


@given(
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=1.0, max_value=1000.0),
)
def test_recurring_timer_fires_expected_count(interval, horizon):
    engine = SimulationEngine()
    ticks = []
    engine.call_every(interval, lambda: ticks.append(engine.now))
    engine.run_until(horizon)
    # Floating-point accumulation can move the last tick across the
    # horizon boundary; allow off-by-one.
    expected = horizon / interval
    assert expected - 1 <= len(ticks) <= expected + 1


@given(st.data())
@settings(max_examples=50)
def test_cancellation_never_fires(data):
    times = data.draw(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=20)
    )
    cancel_count = data.draw(st.integers(min_value=1, max_value=len(times)))
    engine = SimulationEngine()
    fired = []
    handles = [engine.call_at(t, lambda t=t: fired.append(t)) for t in times]
    for handle in handles[:cancel_count]:
        handle.cancel()
    engine.run()
    assert len(fired) == len(times) - cancel_count
