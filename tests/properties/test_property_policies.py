"""Property-based tests for policy invariants (§3.2)."""

from hypothesis import given, strategies as st

from repro.baselines import ASGPolicy, AWSSpotPolicy
from repro.core import spothedge
from repro.serving.policy import Observation

ZONES = ["aws:r1:a", "aws:r1:b", "aws:r1:c"]


def make_obs(n_tar, spot_launched, spot_ready, od_launched, od_ready):
    return Observation(
        now=0.0,
        n_tar=n_tar,
        spot_launched=spot_launched,
        spot_ready=min(spot_ready, spot_launched),
        od_launched=od_launched,
        od_ready=min(od_ready, od_launched),
        spot_by_zone={},
    )


observations = st.builds(
    make_obs,
    n_tar=st.integers(1, 20),
    spot_launched=st.integers(0, 30),
    spot_ready=st.integers(0, 30),
    od_launched=st.integers(0, 20),
    od_ready=st.integers(0, 20),
)


@given(observations, st.integers(0, 5))
def test_spothedge_mix_invariants(obs, n_extra):
    """For every observable state: spot target = N_Tar + N_Extra and
    0 <= O(t) <= N_Tar (the §3.2 bound)."""
    policy = spothedge(ZONES, num_overprovision=n_extra)
    mix = policy.target_mix(obs)
    assert mix.spot_target == obs.n_tar + n_extra
    assert 0 <= mix.od_target <= obs.n_tar


@given(observations, st.integers(0, 5))
def test_spothedge_od_covers_ready_deficit(obs, n_extra):
    """When fewer than N_Tar spot replicas are ready, on-demand must
    cover the deficit up to N_Tar."""
    policy = spothedge(ZONES, num_overprovision=n_extra)
    mix = policy.target_mix(obs)
    if obs.spot_ready < obs.n_tar:
        assert mix.od_target >= min(obs.n_tar - obs.spot_ready, obs.n_tar)
    if obs.spot_ready >= obs.n_tar + n_extra:
        assert mix.od_target == 0


@given(observations)
def test_asg_mixture_is_static_in_readiness(obs):
    """ASG's pool split depends only on N_Tar, never on spot health."""
    policy = ASGPolicy(ZONES)
    mix_now = policy.target_mix(obs)
    starved = make_obs(obs.n_tar, 0, 0, 0, 0)
    mix_starved = policy.target_mix(starved)
    assert (mix_now.spot_target, mix_now.od_target) == (
        mix_starved.spot_target,
        mix_starved.od_target,
    )
    assert mix_now.spot_target + mix_now.od_target == obs.n_tar


@given(observations)
def test_awsspot_never_uses_on_demand(obs):
    mix = AWSSpotPolicy(ZONES).target_mix(obs)
    assert mix.od_target == 0
    assert mix.spot_target == obs.n_tar


@given(observations, st.integers(0, 5))
def test_spothedge_selects_only_enabled_zones(obs, n_extra):
    policy = spothedge(ZONES, num_overprovision=n_extra)
    zone = policy.select_spot_zone(obs)
    assert zone in ZONES
    od_zone = policy.select_od_zone(obs)
    assert od_zone in ZONES
