"""Property-based tests: histogram percentile estimation vs numpy.

The fixed-bucket :class:`~repro.telemetry.metrics.HistogramMetric`
estimates percentiles by linear interpolation inside the containing
bucket, using the same rank convention as ``numpy.percentile``'s
default linear interpolation.  The estimate cannot be exact — the
histogram only keeps bucket counts — but it is bounded: the estimated
percentile always lies within the data range, is monotone in ``q``,
and never strays from the exact value by more than one bucket width
(for in-range data).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.telemetry.metrics import HistogramMetric

#: Random strictly-increasing bucket edges.
edges_strategy = (
    st.lists(
        st.floats(min_value=-100.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=12,
        unique=True,
    )
    .map(sorted)
    .filter(lambda e: all(b - a > 1e-6 for a, b in zip(e, e[1:])))
)

samples_strategy = st.lists(
    st.floats(min_value=-150.0, max_value=150.0,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)

quantile_strategy = st.floats(min_value=0.0, max_value=100.0)


def _fill(edges, samples):
    h = HistogramMetric(edges)
    for s in samples:
        h.observe(s)
    return h


@given(edges_strategy, samples_strategy, quantile_strategy)
def test_quantile_within_observed_range(edges, samples, q):
    h = _fill(edges, samples)
    estimate = h.quantile(q)
    assert min(samples) <= estimate <= max(samples)


@given(edges_strategy, samples_strategy)
def test_quantile_monotone_in_q(edges, samples):
    h = _fill(edges, samples)
    values = [h.quantile(q) for q in (0, 10, 25, 50, 75, 90, 99, 100)]
    assert values == sorted(values)


@given(edges_strategy, samples_strategy)
def test_extremes_exact(edges, samples):
    h = _fill(edges, samples)
    assert h.quantile(0) == min(samples)
    assert h.quantile(100) == max(samples)


def _error_bound(edges, samples):
    """Worst-case estimate-vs-numpy error from the data geometry.

    numpy's exact percentile interpolates between two *adjacent sorted
    samples*; the histogram only knows those samples' buckets, so its
    estimate can land anywhere inside them.  The error is therefore
    bounded by the widest bucket interval (open-ended end buckets
    clamped to the observed min/max) plus the largest gap between
    adjacent samples (the cross-bucket interpolation span)."""
    lo_clamp = min(samples)
    hi_clamp = max(samples)
    bounds = [lo_clamp] + [
        min(max(e, lo_clamp), hi_clamp) for e in edges
    ] + [hi_clamp]
    widest = max(b - a for a, b in zip(bounds, bounds[1:]))
    ordered = sorted(samples)
    max_gap = max(
        (b - a for a, b in zip(ordered, ordered[1:])), default=0.0
    )
    return widest + max_gap


@settings(max_examples=200)
@given(edges_strategy, samples_strategy, quantile_strategy)
def test_quantile_error_bounded_by_data_geometry(edges, samples, q):
    h = _fill(edges, samples)
    estimate = h.quantile(q)
    exact = float(np.percentile(samples, q))
    assert abs(estimate - exact) <= _error_bound(edges, samples) + 1e-9


@given(samples_strategy)
def test_dense_uniform_edges_converge_to_numpy(samples):
    """With bucket edges much denser than the data spread, the bucket
    term of the error bound shrinks to the (unit) edge spacing — the
    estimate tracks numpy up to the sample gaps themselves."""
    edges = [float(e) for e in np.linspace(-150.0, 150.0, 301)]  # width 1
    h = _fill(edges, samples)
    ordered = sorted(samples)
    max_gap = max(
        (b - a for a, b in zip(ordered, ordered[1:])), default=0.0
    )
    for q in (10, 50, 90):
        exact = float(np.percentile(samples, q))
        assert abs(h.quantile(q) - exact) <= 1.0 + max_gap + 1e-9


@given(edges_strategy, samples_strategy)
def test_count_and_sum_exact(edges, samples):
    h = _fill(edges, samples)
    assert h.count == len(samples)
    assert np.isclose(h.total, sum(samples))
    assert sum(h.counts) == len(samples)
