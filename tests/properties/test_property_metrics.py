"""Property-based tests for metric recorders."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import LatencyRecorder, TimeSeries

monotone_samples = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e5),
        st.floats(min_value=-100.0, max_value=100.0),
    ),
    min_size=1,
    max_size=50,
).map(lambda pairs: sorted(pairs, key=lambda p: p[0]))


@given(monotone_samples)
def test_value_at_returns_last_sample_at_or_before(samples):
    series = TimeSeries("s")
    for t, v in samples:
        series.record(t, v)
    query = samples[-1][0] + 1.0
    # The last recorded value at each timestamp wins.
    last = {}
    for t, v in samples:
        last[t] = v
    expected = last[max(last)]
    assert series.value_at(query) == expected


@given(monotone_samples, st.floats(min_value=1.0, max_value=1e4))
def test_integral_equals_weighted_sum(samples, extra):
    series = TimeSeries("s")
    for t, v in samples:
        series.record(t, v)
    start = samples[0][0]
    end = samples[-1][0] + extra
    # Independent oracle: sum value * segment-length over the recorded
    # breakpoints (last sample at a timestamp wins, as documented).
    last: dict[float, float] = {}
    for t, v in samples:
        last[t] = v
    points = sorted(last)
    expected = 0.0
    for i, t in enumerate(points):
        seg_end = points[i + 1] if i + 1 < len(points) else end
        expected += last[t] * (min(seg_end, end) - max(t, start))
    exact = series.integrate(start, end)
    assert exact == pytest.approx(expected, rel=1e-9, abs=1e-6)


@given(monotone_samples, st.floats(min_value=-50, max_value=50))
def test_fraction_at_least_is_a_fraction(samples, threshold):
    series = TimeSeries("s")
    for t, v in samples:
        series.record(t, v)
    start = samples[0][0]
    end = samples[-1][0] + 10.0
    fraction = series.fraction_at_least(threshold, start, end)
    assert 0.0 <= fraction <= 1.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=200))
def test_latency_percentiles_ordered(latencies):
    recorder = LatencyRecorder()
    recorder.extend(latencies)
    summary = recorder.summary()
    assert summary.p50 <= summary.p90 <= summary.p99
    # Allow a few ulps of float summation error around the extremes.
    tolerance = 1e-9 * max(abs(max(latencies)), 1.0)
    assert min(latencies) - tolerance <= summary.mean <= max(latencies) + tolerance
    assert summary.count == len(latencies)
