"""Property-based fuzz of the full serving stack.

Random capacity traces and policies drive the controller through the
real provider; the invariants below must hold for every realisation —
no crashes, bounded fleets, sane billing, consistent availability.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import ASGPolicy, AWSSpotPolicy
from repro.cloud import CloudConfig, SimCloud, SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceController,
    ServiceSpec,
)
from repro.sim import SimulationEngine

ZONES = [
    "aws:us-west-2:us-west-2a",
    "aws:us-west-2:us-west-2b",
    "aws:us-west-2:us-west-2c",
]


@st.composite
def capacity_traces(draw):
    n_steps = draw(st.integers(min_value=20, max_value=40))
    rows = draw(
        st.lists(
            st.lists(st.integers(0, 6), min_size=n_steps, max_size=n_steps),
            min_size=3,
            max_size=3,
        )
    )
    return SpotTrace("fuzz", ZONES, 60.0, np.asarray(rows))


policy_factories = st.sampled_from(
    [
        lambda: spothedge(ZONES, num_overprovision=1),
        lambda: ASGPolicy(ZONES),
        lambda: AWSSpotPolicy(ZONES),
    ]
)


@given(capacity_traces(), policy_factories, st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_controller_survives_any_trace(trace, factory, n_tar):
    engine = SimulationEngine()
    cloud = SimCloud(
        engine,
        trace,
        config=CloudConfig(provision_delay_mean=30.0, setup_delay_mean=30.0,
                           delay_jitter=0.0),
    )
    spec = ServiceSpec(
        replica_policy=ReplicaPolicyConfig(fixed_target=n_tar, num_overprovision=1),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
    )
    profile = ModelProfile("m", 1.0, 0.0, 0.0, 4)
    controller = ServiceController(engine, cloud, spec, factory(), profile)
    controller.start()
    engine.run_until(trace.duration)

    # Invariant 1: the fleet is bounded by target x over-request factor
    # plus the on-demand cap.
    alive = [r for r in controller.replicas]
    assert len(alive) <= (n_tar + 1) * 4 + n_tar + 2

    # Invariant 2: spot usage never exceeded capacity (the provider
    # enforces it; ready spot at the end must fit current capacity).
    for zone in ZONES:
        assert cloud.spot_usage(zone) <= trace.capacity_at(zone, engine.now - 1)

    # Invariant 3: billing is non-negative and finite.
    breakdown = cloud.billing.breakdown(engine.now)
    assert breakdown.spot >= 0.0
    assert breakdown.on_demand >= 0.0
    assert np.isfinite(breakdown.total)

    # Invariant 4: availability metric well-formed.
    availability = controller.availability(0.0, trace.duration, n_tar=n_tar)
    assert 0.0 <= availability <= 1.0

    # Invariant 5: every dead replica's workers are terminal.
    for replica in controller.replicas:
        for worker in replica.workers:
            assert worker.state.is_alive or worker.state.is_terminal


@given(capacity_traces(), st.integers(1, 3))
@settings(max_examples=15, deadline=None)
def test_spothedge_availability_with_fallback_dominates_without(trace, n_tar):
    """Dynamic Fallback can only help availability."""

    def run(fallback):
        from repro.core import DynamicSpotPlacer, MixturePolicy

        engine = SimulationEngine()
        cloud = SimCloud(
            engine,
            trace,
            config=CloudConfig(provision_delay_mean=30.0, setup_delay_mean=30.0,
                               delay_jitter=0.0),
        )
        spec = ServiceSpec(
            replica_policy=ReplicaPolicyConfig(fixed_target=n_tar, num_overprovision=1),
            resources=ResourceSpec(
                accelerator="V100",
                any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
            ),
        )
        policy = MixturePolicy(
            DynamicSpotPlacer(ZONES),
            num_overprovision=1,
            dynamic_ondemand_fallback=fallback,
        )
        profile = ModelProfile("m", 1.0, 0.0, 0.0, 4)
        controller = ServiceController(engine, cloud, spec, policy, profile)
        controller.start()
        engine.run_until(trace.duration)
        return controller.availability(0.0, trace.duration, n_tar=n_tar)

    # Allow a small tolerance: fallback replicas can perturb placement
    # timing slightly, but they must not make things materially worse.
    assert run(True) >= run(False) - 0.05
