"""Property-based tests for trace generation and statistics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud import HOUR, SpotTrace, TraceZoneSpec, make_correlated_trace

zone_specs = st.lists(
    st.builds(
        TraceZoneSpec,
        zone_id=st.sampled_from(
            ["aws:r1:a", "aws:r1:b", "aws:r2:a", "gcp:r3:a", "gcp:r3:b"]
        ),
        mean_up=st.floats(min_value=0.5 * HOUR, max_value=24 * HOUR),
        mean_down=st.floats(min_value=0.5 * HOUR, max_value=24 * HOUR),
        capacity_up=st.integers(1, 16),
    ),
    min_size=1,
    max_size=5,
    unique_by=lambda s: s.zone_id,
)


@given(zone_specs, st.integers(1, 4), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_generated_traces_are_valid(specs, days, seed):
    trace = make_correlated_trace(
        "prop", specs, duration=days * 24 * HOUR, seed=seed,
        region_shock_rate=1 / (12 * HOUR),
    )
    assert trace.capacity.min() >= 0
    assert trace.n_steps == int(days * 24 * HOUR / trace.step)
    for spec in specs:
        row = trace.zone_row(spec.zone_id)
        assert row.max() <= spec.capacity_up
        assert 0.0 <= trace.availability(spec.zone_id) <= 1.0


@given(zone_specs, st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_json_round_trip_lossless(specs, seed):
    trace = make_correlated_trace("prop", specs, duration=6 * HOUR, seed=seed)
    restored = SpotTrace.from_json(trace.to_json())
    np.testing.assert_array_equal(restored.capacity, trace.capacity)
    assert restored.zone_ids == trace.zone_ids
    assert restored.step == trace.step


@given(zone_specs, st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_pooled_availability_at_least_best_zone(specs, seed):
    """Pooling zones can only help: pooled availability >= max single."""
    trace = make_correlated_trace("prop", specs, duration=2 * 24 * HOUR, seed=seed)
    best_single = max(trace.availability(z) for z in trace.zone_ids)
    assert trace.pooled_availability() >= best_single - 1e-12


@given(zone_specs, st.integers(0, 1000), st.integers(1, 10))
@settings(max_examples=30, deadline=None)
def test_availability_monotone_in_threshold(specs, seed, threshold):
    trace = make_correlated_trace("prop", specs, duration=24 * HOUR, seed=seed)
    low = trace.pooled_availability(threshold=threshold)
    high = trace.pooled_availability(threshold=threshold + 1)
    assert high <= low


@given(zone_specs, st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_preemption_indicator_matches_capacity_drops(specs, seed):
    trace = make_correlated_trace("prop", specs, duration=24 * HOUR, seed=seed)
    for spec in specs:
        row = trace.zone_row(spec.zone_id)
        indicator = trace.preemption_indicator(spec.zone_id)
        assert not indicator[0]
        drops = np.where(indicator)[0]
        assert (row[drops] < row[drops - 1]).all()
