"""Property-based tests of the simulated provider's capacity contract."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud import CloudConfig, SimCloud, SpotTrace
from repro.sim import SimulationEngine

ZONES = ["aws:r1:a", "aws:r1:b"]


@st.composite
def traces(draw):
    n_steps = draw(st.integers(min_value=10, max_value=30))
    rows = draw(
        st.lists(
            st.lists(st.integers(0, 5), min_size=n_steps, max_size=n_steps),
            min_size=2,
            max_size=2,
        )
    )
    return SpotTrace("prov", ZONES, 60.0, np.asarray(rows))


@given(traces(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_spot_usage_never_exceeds_capacity(trace, seed):
    """Launch greedily every 30 s; at every sampled instant, alive spot
    usage respects the trace capacity (after preemption settles)."""
    from repro.sim.rng import RngRegistry

    engine = SimulationEngine()
    cloud = SimCloud(
        engine,
        trace,
        config=CloudConfig(provision_delay_mean=10.0, setup_delay_mean=10.0,
                           delay_jitter=0.0),
        rng=RngRegistry(seed),
    )
    violations = []

    def launch_greedily():
        for zone in ZONES:
            if cloud.spot_room(zone) > 0:
                cloud.request_instance(zone, "p3.2xlarge", spot=True)

    def check():
        # Sample just after capacity-change events have run.
        for zone in ZONES:
            capacity = trace.capacity_at(zone, engine.now)
            if cloud.spot_usage(zone) > capacity:
                violations.append((engine.now, zone))

    engine.call_every(30.0, launch_greedily)
    engine.call_every(60.0, check, start_delay=61.0)
    engine.run_until(trace.duration)
    assert violations == []


@given(traces(), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_billing_monotone_while_instances_live(trace, seed):
    from repro.sim.rng import RngRegistry

    engine = SimulationEngine()
    cloud = SimCloud(
        engine,
        trace,
        config=CloudConfig(provision_delay_mean=10.0, setup_delay_mean=10.0,
                           delay_jitter=0.0),
        rng=RngRegistry(seed),
    )
    cloud.request_instance(ZONES[0], "p3.2xlarge", spot=True)
    cloud.request_instance(ZONES[1], "p3.2xlarge", spot=False)
    totals = []
    engine.call_every(60.0, lambda: totals.append(cloud.billing.total(engine.now)))
    engine.run_until(trace.duration)
    assert all(b >= a - 1e-12 for a, b in zip(totals, totals[1:]))


@given(traces())
@settings(max_examples=30, deadline=None)
def test_zero_capacity_zone_never_hosts_spot(trace):
    zero = SpotTrace("zero", ZONES, trace.step, np.zeros_like(trace.capacity))
    engine = SimulationEngine()
    cloud = SimCloud(engine, zero, config=CloudConfig(delay_jitter=0.0))
    instances = [
        cloud.request_instance(ZONES[0], "p3.2xlarge", spot=True) for _ in range(3)
    ]
    engine.run_until(zero.duration)
    assert all(i.state.value == "failed" for i in instances)
    assert cloud.billing.total(engine.now) == 0.0
