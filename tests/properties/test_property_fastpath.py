"""Property tests: discrete ↔ vectorized ↔ hybrid engine equivalence.

The discrete loop is the oracle; the fastpath engines must reproduce
every :class:`ReplayResult` field byte-for-byte — including the float
cost accumulators and the RNG-driven preemption counts — over random
traces, policies, seeds and chaos overlays.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import MArkPolicy
from repro.cloud import SpotTrace
from repro.core import (
    OnDemandOnlyPolicy,
    even_spread_policy,
    round_robin_policy,
    spothedge,
)
from repro.experiments import ReplayConfig, TraceReplayer

ZONES = ["aws:r1:a", "aws:r1:b", "aws:r2:a"]


@st.composite
def traces(draw):
    n_steps = draw(st.integers(min_value=10, max_value=60))
    capacity = draw(
        st.lists(
            st.lists(st.integers(0, 8), min_size=n_steps, max_size=n_steps),
            min_size=len(ZONES),
            max_size=len(ZONES),
        )
    )
    return SpotTrace("prop", ZONES, 60.0, np.asarray(capacity))


@st.composite
def quiet_traces(draw):
    """Piecewise-constant high-capacity traces with a few dips — the
    regime where the hybrid engine actually fast-forwards."""
    n_segments = draw(st.integers(min_value=2, max_value=5))
    seg_len = draw(st.integers(min_value=5, max_value=20))
    rows = []
    for _ in ZONES:
        segs = draw(
            st.lists(
                st.integers(0, 8), min_size=n_segments, max_size=n_segments
            )
        )
        rows.append([c for c in segs for _ in range(seg_len)])
    return SpotTrace("prop-quiet", ZONES, 60.0, np.asarray(rows))


policy_factories = st.sampled_from(
    [spothedge, even_spread_policy, round_robin_policy, OnDemandOnlyPolicy]
)


def assert_identical(ref, got):
    assert got.policy == ref.policy
    assert got.availability == ref.availability
    assert got.relative_cost == ref.relative_cost
    assert got.spot_cost == ref.spot_cost
    assert got.od_cost == ref.od_cost
    assert got.preemptions == ref.preemptions
    assert got.launch_failures == ref.launch_failures
    np.testing.assert_array_equal(got.ready_series, ref.ready_series)
    np.testing.assert_array_equal(got.od_series, ref.od_series)


@given(traces(), policy_factories, st.integers(1, 6), st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_engines_byte_identical_random_traces(trace, factory, n_tar, seed):
    config = ReplayConfig(n_tar=n_tar, k=3.0, cold_start=120.0)
    ref = TraceReplayer(trace, config, seed=seed).run(factory(ZONES))
    for engine in ("vectorized", "hybrid"):
        got = TraceReplayer(trace, config, seed=seed, engine=engine).run(
            factory(ZONES)
        )
        assert_identical(ref, got)


@given(quiet_traces(), policy_factories, st.integers(1, 6), st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_engines_byte_identical_quiet_traces(trace, factory, n_tar, seed):
    # Quiet piecewise-constant traces exercise the fluid fast-forward
    # (window boundaries at capacity crossings) rather than per-step
    # churn; results must still match bit for bit.
    config = ReplayConfig(n_tar=n_tar, k=3.0, cold_start=180.0)
    ref = TraceReplayer(trace, config, seed=seed).run(factory(ZONES))
    for engine in ("vectorized", "hybrid"):
        got = TraceReplayer(trace, config, seed=seed, engine=engine).run(
            factory(ZONES)
        )
        assert_identical(ref, got)


@given(
    quiet_traces(),
    st.floats(min_value=0.0, max_value=600.0),
    st.integers(1, 5),
)
@settings(max_examples=30, deadline=None)
def test_engines_byte_identical_cold_start_sweep(trace, cold_start, n_tar):
    # Cold starts that are non-multiples of the step stress the
    # ready-step bucketing against the oracle's float comparison.
    config = ReplayConfig(n_tar=n_tar, cold_start=cold_start)
    ref = TraceReplayer(trace, config, seed=2).run(spothedge(ZONES))
    for engine in ("vectorized", "hybrid"):
        got = TraceReplayer(trace, config, seed=2, engine=engine).run(
            spothedge(ZONES)
        )
        assert_identical(ref, got)


@st.composite
def chaos_overlays(draw, trace):
    """Random per-step cold-start factors and per-zone price rows —
    the shape the chaos overlay compiler hands to the replayer."""
    n = trace.n_steps
    cold = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.floats(min_value=0.25, max_value=4.0),
                min_size=n,
                max_size=n,
            ),
        )
    )
    prices = draw(
        st.one_of(
            st.none(),
            st.fixed_dictionaries(
                {
                    ZONES[0]: st.lists(
                        st.floats(min_value=0.5, max_value=3.0),
                        min_size=n,
                        max_size=n,
                    ),
                    ZONES[2]: st.lists(
                        st.floats(min_value=0.5, max_value=3.0),
                        min_size=n,
                        max_size=n,
                    ),
                }
            ),
        )
    )
    return cold, prices


@given(st.data(), policy_factories, st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_engines_byte_identical_chaos_overlays(data, factory, n_tar):
    trace = data.draw(traces())
    cold, prices = data.draw(chaos_overlays(trace))
    config = ReplayConfig(
        n_tar=n_tar, zone_price_multipliers={ZONES[1]: 1.4}
    )
    kwargs = dict(cold_start_factors=cold, zone_price_factors=prices)
    ref = TraceReplayer(trace, config, seed=1, **kwargs).run(factory(ZONES))
    for engine in ("vectorized", "hybrid"):
        got = TraceReplayer(
            trace, config, seed=1, engine=engine, **kwargs
        ).run(factory(ZONES))
        assert_identical(ref, got)


@given(traces(), st.integers(1, 5), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_hybrid_matches_oracle_for_nonstationary_policy(trace, n_tar, seed):
    # MArk keeps a time-keyed prediction history (not stationary): the
    # hybrid engine must degrade to per-step processing and still agree.
    # MArk is single-region, so remap the trace onto one region's zones.
    one_region = ["aws:r1:a", "aws:r1:b", "aws:r1:c"]
    trace = SpotTrace(trace.name, one_region, trace.step, trace.capacity)
    config = ReplayConfig(n_tar=n_tar)
    ref = TraceReplayer(trace, config, seed=seed).run(MArkPolicy(one_region))
    got = TraceReplayer(trace, config, seed=seed, engine="hybrid").run(
        MArkPolicy(one_region)
    )
    assert_identical(ref, got)


@given(traces(), policy_factories, st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_rng_stream_consumption_identical(trace, factory, n_tar):
    # Same stream position after the run ⇒ the engines drew the same
    # victim-sampling batches in the same order.
    config = ReplayConfig(n_tar=n_tar)
    ref = TraceReplayer(trace, config, seed=4)
    ref.run(factory(ZONES))
    for engine in ("vectorized", "hybrid"):
        fast = TraceReplayer(trace, config, seed=4, engine=engine)
        fast.run(factory(ZONES))
        assert ref._rng.bit_generator.state == fast._rng.bit_generator.state
