"""Property-based tests for the Alg. 1 placer invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import DynamicSpotPlacer, EvenSpreadPlacer, RoundRobinPlacer

zones_strategy = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=3),
    min_size=2,
    max_size=8,
    unique=True,
)

events_strategy = st.lists(
    st.tuples(st.sampled_from(["preempt", "fail", "active"]), st.integers(0, 7)),
    max_size=60,
)


@given(zones_strategy, events_strategy)
@settings(max_examples=200)
def test_za_zp_partition_invariant(zones, events):
    """Z_A and Z_P always partition the enabled zone set (Alg. 1)."""
    placer = DynamicSpotPlacer(zones)
    for kind, index in events:
        zone = zones[index % len(zones)]
        if kind == "preempt":
            placer.handle_preemption(zone)
        elif kind == "fail":
            placer.handle_launch_failure(zone)
        else:
            placer.handle_active(zone)
        combined = sorted(placer.active_zones + placer.preempting_zones)
        assert combined == sorted(zones)
        # Rebalancing guarantee: never cornered into a single zone.
        assert len(placer.active_zones) >= min(2, len(zones))


@given(zones_strategy, events_strategy)
@settings(max_examples=100)
def test_selection_always_from_active_zones_when_available(zones, events):
    placer = DynamicSpotPlacer(zones)
    for kind, index in events:
        zone = zones[index % len(zones)]
        if kind == "preempt":
            placer.handle_preemption(zone)
        elif kind == "active":
            placer.handle_active(zone)
        chosen = placer.select_zone({})
        assert chosen in placer.active_zones


@given(zones_strategy, st.integers(min_value=0, max_value=20))
def test_even_spread_quotas_sum_to_target(zones, target):
    placer = EvenSpreadPlacer(zones)
    placer.set_target(target)
    quotas = placer.quotas()
    assert sum(quotas.values()) == target
    assert max(quotas.values()) - min(quotas.values()) <= 1


@given(zones_strategy, st.integers(min_value=1, max_value=12))
def test_even_spread_fills_exactly_target_then_stops(zones, target):
    placer = EvenSpreadPlacer(zones)
    placer.set_target(target)
    placements = {}
    launched = 0
    while True:
        zone = placer.select_zone(placements)
        if zone is None:
            break
        placements[zone] = placements.get(zone, 0) + 1
        launched += 1
        assert launched <= target
    assert launched == target


@given(zones_strategy, st.integers(min_value=1, max_value=40))
def test_round_robin_is_fair_over_full_cycles(zones, cycles):
    placer = RoundRobinPlacer(zones)
    counts = {z: 0 for z in zones}
    for _ in range(cycles * len(zones)):
        counts[placer.select_zone({})] += 1
    assert set(counts.values()) == {cycles}


@given(zones_strategy)
def test_dynamic_placer_prefers_empty_zones(zones):
    placer = DynamicSpotPlacer(zones)
    placements = {}
    for _ in range(len(zones)):
        zone = placer.select_zone(placements)
        assert placements.get(zone, 0) == 0  # always an unused zone first
        placements[zone] = placements.get(zone, 0) + 1
