"""Property-based tests for the §5.2 trace-replay harness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud import SpotTrace
from repro.core import (
    OnDemandOnlyPolicy,
    even_spread_policy,
    round_robin_policy,
    spothedge,
)
from repro.experiments import ReplayConfig, TraceReplayer

ZONES = ["aws:r1:a", "aws:r1:b", "aws:r2:a"]


@st.composite
def traces(draw):
    n_steps = draw(st.integers(min_value=10, max_value=60))
    capacity = draw(
        st.lists(
            st.lists(st.integers(0, 8), min_size=n_steps, max_size=n_steps),
            min_size=len(ZONES),
            max_size=len(ZONES),
        )
    )
    return SpotTrace("prop", ZONES, 60.0, np.asarray(capacity))


policy_factories = st.sampled_from(
    [spothedge, even_spread_policy, round_robin_policy, OnDemandOnlyPolicy]
)


@given(traces(), policy_factories, st.integers(1, 6))
@settings(max_examples=60, deadline=None)
def test_replay_invariants(trace, factory, n_tar):
    config = ReplayConfig(n_tar=n_tar, k=3.0, cold_start=120.0)
    result = TraceReplayer(trace, config, seed=1).run(factory(ZONES))
    # Availability is a fraction; costs are non-negative.
    assert 0.0 <= result.availability <= 1.0
    assert result.spot_cost >= 0.0
    assert result.od_cost >= 0.0
    assert result.preemptions >= 0
    # Ready series is bounded by what the policy may hold: at most
    # N_Tar + overprovision spot plus N_Tar on-demand.
    overprovision = getattr(factory(ZONES), "num_overprovision", 0)
    assert result.ready_series.max() <= n_tar + overprovision + n_tar
    assert result.ready_series.min() >= 0
    # Nothing can be ready before one cold start has elapsed.
    cold_steps = int(config.cold_start // trace.step)
    if cold_steps > 0:
        assert result.ready_series[:cold_steps].max() == 0


@given(traces(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_ondemand_only_reference(trace, n_tar):
    """On-demand-only always converges to exactly n_tar ready replicas
    and costs exactly the baseline (after the initial cold start)."""
    config = ReplayConfig(n_tar=n_tar, k=3.0, cold_start=0.0)
    result = TraceReplayer(trace, config, seed=2).run(OnDemandOnlyPolicy(ZONES))
    assert result.availability == 1.0
    assert result.relative_cost == pytest.approx(1.0)
    assert result.spot_cost == 0.0
    assert (result.ready_series == n_tar).all()


@given(traces(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_replay_deterministic(trace, n_tar):
    config = ReplayConfig(n_tar=n_tar, k=3.0)
    a = TraceReplayer(trace, config, seed=3).run(spothedge(ZONES))
    b = TraceReplayer(trace, config, seed=3).run(spothedge(ZONES))
    np.testing.assert_array_equal(a.ready_series, b.ready_series)
    assert a.relative_cost == b.relative_cost
    assert a.preemptions == b.preemptions


@given(traces())
@settings(max_examples=40, deadline=None)
def test_spot_fleet_never_exceeds_capacity(trace):
    """At every step, per-zone spot placements respect trace capacity —
    verified indirectly: a zero-capacity trace yields zero spot cost."""
    zero = SpotTrace("zero", ZONES, trace.step, np.zeros_like(trace.capacity))
    result = TraceReplayer(zero, ReplayConfig(n_tar=2, k=3.0), seed=4).run(
        round_robin_policy(ZONES)
    )
    assert result.spot_cost == 0.0
    assert result.availability == 0.0


@given(traces(), st.floats(min_value=1.5, max_value=8.0))
@settings(max_examples=30, deadline=None)
def test_cost_scales_with_k(trace, k):
    """Same replay, higher on-demand price: the on-demand-only baseline
    stays at 1.0 while pure-spot policies get relatively cheaper."""
    cheap = TraceReplayer(trace, ReplayConfig(n_tar=2, k=1.5), seed=5).run(
        round_robin_policy(ZONES)
    )
    expensive = TraceReplayer(trace, ReplayConfig(n_tar=2, k=k), seed=5).run(
        round_robin_policy(ZONES)
    )
    # Pure-spot absolute spot cost is identical; only the normalisation
    # changes, so relative cost is non-increasing in k.
    assert expensive.relative_cost <= cheap.relative_cost + 1e-12


# ---------------------------------------------------------------------------
# estimate_latency: vectorised fast path vs the scalar reference
# ---------------------------------------------------------------------------

from repro.experiments import estimate_latency  # noqa: E402
from repro.experiments.replay import ReplayResult, _estimate_latency_reference  # noqa: E402
from repro.workloads import Request, Workload  # noqa: E402


def _result_from_series(ready_series: np.ndarray, step: float = 60.0) -> ReplayResult:
    """A minimal ReplayResult; estimate_latency only reads ready_series/step."""
    return ReplayResult(
        policy="prop", trace="prop", n_tar=4, availability=0.0,
        relative_cost=0.0, spot_cost=0.0, od_cost=0.0, preemptions=0,
        launch_failures=0, ready_series=np.asarray(ready_series), step=step,
    )


def _workload_from_arrivals(arrivals: list[float]) -> Workload:
    requests = [
        Request(request_id=i, arrival_time=t, input_tokens=10, output_tokens=10)
        for i, t in enumerate(sorted(arrivals))
    ]
    return Workload("prop", requests)


@st.composite
def latency_cases(draw):
    n_steps = draw(st.integers(min_value=3, max_value=40))
    series = draw(
        st.lists(st.integers(0, 6), min_size=n_steps, max_size=n_steps)
    )
    horizon = n_steps * 60.0
    # Arrivals spill 20% past the horizon to exercise the truncation edge.
    arrivals = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=horizon * 1.2,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=200,
        )
    )
    return np.asarray(series), arrivals


@given(latency_cases(), st.floats(min_value=20.0, max_value=500.0))
@settings(max_examples=60, deadline=None)
def test_estimate_latency_matches_scalar_reference(case, timeout):
    """The vectorised estimator is numerically identical to the scalar
    reference on arbitrary ready series — including downtime stretches,
    the timeout cutoff, and arrivals beyond the replay horizon."""
    series, arrivals = case
    result = _result_from_series(series)
    workload = _workload_from_arrivals(arrivals)
    fast = estimate_latency(result, workload, timeout=timeout)
    slow = _estimate_latency_reference(result, workload, timeout=timeout)
    np.testing.assert_array_equal(fast, slow)


@given(st.integers(min_value=3, max_value=30), st.integers(1, 50))
@settings(max_examples=40, deadline=None)
def test_estimate_latency_all_zero_capacity_times_out(n_steps, n_requests):
    """With no replica ever ready, every request hits the timeout — and
    the fast path still matches the reference exactly."""
    result = _result_from_series(np.zeros(n_steps, dtype=int))
    horizon = n_steps * 60.0
    arrivals = [i * horizon / (n_requests + 1) for i in range(n_requests)]
    workload = _workload_from_arrivals(arrivals)
    fast = estimate_latency(result, workload, timeout=80.0)
    slow = _estimate_latency_reference(result, workload, timeout=80.0)
    np.testing.assert_array_equal(fast, slow)
    assert (fast == 80.0).all()


@given(traces(), st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_estimate_latency_matches_reference_on_replayed_series(trace, n_tar):
    """End-to-end: estimates over a real replay's ready series agree."""
    config = ReplayConfig(n_tar=n_tar, k=3.0)
    result = TraceReplayer(trace, config, seed=6).run(spothedge(ZONES))
    arrivals = list(np.linspace(0.0, trace.duration * 0.99, 120))
    workload = _workload_from_arrivals(arrivals)
    fast = estimate_latency(result, workload)
    slow = _estimate_latency_reference(result, workload)
    np.testing.assert_array_equal(fast, slow)
