"""Property-based tests for the §5.2 trace-replay harness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import SpotTrace
from repro.core import (
    OnDemandOnlyPolicy,
    even_spread_policy,
    round_robin_policy,
    spothedge,
)
from repro.experiments import ReplayConfig, TraceReplayer

ZONES = ["aws:r1:a", "aws:r1:b", "aws:r2:a"]


@st.composite
def traces(draw):
    n_steps = draw(st.integers(min_value=10, max_value=60))
    capacity = draw(
        st.lists(
            st.lists(st.integers(0, 8), min_size=n_steps, max_size=n_steps),
            min_size=len(ZONES),
            max_size=len(ZONES),
        )
    )
    return SpotTrace("prop", ZONES, 60.0, np.asarray(capacity))


policy_factories = st.sampled_from(
    [spothedge, even_spread_policy, round_robin_policy, OnDemandOnlyPolicy]
)


@given(traces(), policy_factories, st.integers(1, 6))
@settings(max_examples=60, deadline=None)
def test_replay_invariants(trace, factory, n_tar):
    config = ReplayConfig(n_tar=n_tar, k=3.0, cold_start=120.0)
    result = TraceReplayer(trace, config, seed=1).run(factory(ZONES))
    # Availability is a fraction; costs are non-negative.
    assert 0.0 <= result.availability <= 1.0
    assert result.spot_cost >= 0.0
    assert result.od_cost >= 0.0
    assert result.preemptions >= 0
    # Ready series is bounded by what the policy may hold: at most
    # N_Tar + overprovision spot plus N_Tar on-demand.
    overprovision = getattr(factory(ZONES), "num_overprovision", 0)
    assert result.ready_series.max() <= n_tar + overprovision + n_tar
    assert result.ready_series.min() >= 0
    # Nothing can be ready before one cold start has elapsed.
    cold_steps = int(config.cold_start // trace.step)
    if cold_steps > 0:
        assert result.ready_series[:cold_steps].max() == 0


@given(traces(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_ondemand_only_reference(trace, n_tar):
    """On-demand-only always converges to exactly n_tar ready replicas
    and costs exactly the baseline (after the initial cold start)."""
    config = ReplayConfig(n_tar=n_tar, k=3.0, cold_start=0.0)
    result = TraceReplayer(trace, config, seed=2).run(OnDemandOnlyPolicy(ZONES))
    assert result.availability == 1.0
    assert result.relative_cost == pytest.approx(1.0)
    assert result.spot_cost == 0.0
    assert (result.ready_series == n_tar).all()


@given(traces(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_replay_deterministic(trace, n_tar):
    config = ReplayConfig(n_tar=n_tar, k=3.0)
    a = TraceReplayer(trace, config, seed=3).run(spothedge(ZONES))
    b = TraceReplayer(trace, config, seed=3).run(spothedge(ZONES))
    np.testing.assert_array_equal(a.ready_series, b.ready_series)
    assert a.relative_cost == b.relative_cost
    assert a.preemptions == b.preemptions


@given(traces())
@settings(max_examples=40, deadline=None)
def test_spot_fleet_never_exceeds_capacity(trace):
    """At every step, per-zone spot placements respect trace capacity —
    verified indirectly: a zero-capacity trace yields zero spot cost."""
    zero = SpotTrace("zero", ZONES, trace.step, np.zeros_like(trace.capacity))
    result = TraceReplayer(zero, ReplayConfig(n_tar=2, k=3.0), seed=4).run(
        round_robin_policy(ZONES)
    )
    assert result.spot_cost == 0.0
    assert result.availability == 0.0


@given(traces(), st.floats(min_value=1.5, max_value=8.0))
@settings(max_examples=30, deadline=None)
def test_cost_scales_with_k(trace, k):
    """Same replay, higher on-demand price: the on-demand-only baseline
    stays at 1.0 while pure-spot policies get relatively cheaper."""
    cheap = TraceReplayer(trace, ReplayConfig(n_tar=2, k=1.5), seed=5).run(
        round_robin_policy(ZONES)
    )
    expensive = TraceReplayer(trace, ReplayConfig(n_tar=2, k=k), seed=5).run(
        round_robin_policy(ZONES)
    )
    # Pure-spot absolute spot cost is identical; only the normalisation
    # changes, so relative cost is non-increasing in k.
    assert expensive.relative_cost <= cheap.relative_cost + 1e-12
