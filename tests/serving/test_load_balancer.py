"""Unit tests for the three load balancers (§4 and §6)."""

import pytest

from repro.cloud import default_network
from repro.serving import (
    LeastLoadBalancer,
    LocalityAwareBalancer,
    ModelProfile,
    Replica,
    RoundRobinBalancer,
    make_balancer,
)
from repro.sim import SimulationEngine
from repro.workloads import Request


def make_ready_replica(engine, zone_id, ongoing=0, weight=1.0):
    profile = ModelProfile("m", overhead=100.0, prefill_per_token=0.0,
                           decode_per_token=0.0, max_concurrency=64)
    replica = Replica(engine, profile, zone_id=zone_id, spot=True,
                      capacity_weight=weight)
    from repro.serving.replica import ReplicaState

    replica.state = ReplicaState.READY
    for i in range(ongoing):
        replica.server.submit(Request(1000 + i, 0.0, 1, 1), lambda r: None, lambda r: None)
    return replica


def request(i=0):
    return Request(i, 0.0, 10, 10)


class TestRoundRobin:
    def test_cycles_through_replicas(self):
        engine = SimulationEngine()
        replicas = [make_ready_replica(engine, "aws:us-west-2:us-west-2a") for _ in range(3)]
        balancer = RoundRobinBalancer()
        picks = [balancer.pick(replicas, request(i)).id for i in range(6)]
        assert picks[:3] == picks[3:]
        assert len(set(picks[:3])) == 3

    def test_empty_returns_none(self):
        assert RoundRobinBalancer().pick([], request()) is None

    def test_membership_change_keeps_cycling(self):
        engine = SimulationEngine()
        replicas = [make_ready_replica(engine, "aws:us-west-2:us-west-2a") for _ in range(2)]
        balancer = RoundRobinBalancer()
        balancer.pick(replicas, request())
        replicas.append(make_ready_replica(engine, "aws:us-west-2:us-west-2a"))
        assert balancer.pick(replicas, request()) is not None

    def test_departure_does_not_alias_rotation(self):
        """Removing a replica mid-rotation must not skip or repeat the
        others (the old modulo cursor aliased on membership changes)."""
        engine = SimulationEngine()
        a, b, c = (make_ready_replica(engine, "aws:us-west-2:us-west-2a")
                   for _ in range(3))
        balancer = RoundRobinBalancer()
        assert balancer.pick([a, b, c], request(0)) is a
        assert balancer.pick([a, b, c], request(1)) is b
        # b leaves the ready set: the rotation continues at c, the next
        # id after the last pick — not back at a.
        assert balancer.pick([a, c], request(2)) is c
        assert balancer.pick([a, c], request(3)) is a

    def test_join_does_not_disrupt_rotation(self):
        """A new replica slots into id order without resetting the
        rotation position."""
        engine = SimulationEngine()
        a, b = (make_ready_replica(engine, "aws:us-west-2:us-west-2a")
                for _ in range(2))
        balancer = RoundRobinBalancer()
        assert balancer.pick([a, b], request(0)) is a
        c = make_ready_replica(engine, "aws:us-west-2:us-west-2a")
        assert balancer.pick([a, b, c], request(1)) is b
        assert balancer.pick([a, b, c], request(2)) is c
        assert balancer.pick([a, b, c], request(3)) is a

    def test_pick_is_order_insensitive(self):
        """The rotation depends on replica ids, not list order."""
        engine = SimulationEngine()
        a, b, c = (make_ready_replica(engine, "aws:us-west-2:us-west-2a")
                   for _ in range(3))
        balancer = RoundRobinBalancer()
        assert balancer.pick([c, a, b], request(0)) is a
        assert balancer.pick([b, c, a], request(1)) is b
        assert balancer.pick([a, c, b], request(2)) is c


class TestLeastLoad:
    def test_prefers_least_ongoing(self):
        engine = SimulationEngine()
        busy = make_ready_replica(engine, "aws:us-west-2:us-west-2a", ongoing=5)
        idle = make_ready_replica(engine, "aws:us-west-2:us-west-2a", ongoing=0)
        balancer = LeastLoadBalancer()
        assert balancer.pick([busy, idle], request()) is idle

    def test_tie_broken_by_id(self):
        engine = SimulationEngine()
        a = make_ready_replica(engine, "aws:us-west-2:us-west-2a")
        b = make_ready_replica(engine, "aws:us-west-2:us-west-2a")
        balancer = LeastLoadBalancer()
        assert balancer.pick([b, a], request()) is min(a, b, key=lambda r: r.id)

    def test_empty_returns_none(self):
        assert LeastLoadBalancer().pick([], request()) is None


class TestLocalityAware:
    """§6: route to the closest replica unless it is overloaded."""

    def test_prefers_local_region(self):
        engine = SimulationEngine()
        local = make_ready_replica(engine, "aws:us-west-2:us-west-2a")
        remote = make_ready_replica(engine, "aws:eu-central-1:eu-central-1a")
        balancer = LocalityAwareBalancer("aws:us-west-2", default_network())
        assert balancer.pick([remote, local], request()) is local

    def test_overloaded_local_spills_to_remote(self):
        engine = SimulationEngine()
        local = make_ready_replica(engine, "aws:us-west-2:us-west-2a", ongoing=8)
        remote = make_ready_replica(engine, "aws:eu-central-1:eu-central-1a")
        balancer = LocalityAwareBalancer(
            "aws:us-west-2", default_network(), overload_threshold=8
        )
        assert balancer.pick([local, remote], request()) is remote

    def test_all_overloaded_falls_back_to_least_load(self):
        engine = SimulationEngine()
        local = make_ready_replica(engine, "aws:us-west-2:us-west-2a", ongoing=10)
        remote = make_ready_replica(engine, "aws:eu-central-1:eu-central-1a", ongoing=9)
        balancer = LocalityAwareBalancer(
            "aws:us-west-2", default_network(), overload_threshold=8
        )
        assert balancer.pick([local, remote], request()) is remote

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            LocalityAwareBalancer("aws:us-west-2", default_network(), overload_threshold=0)

    def test_least_loaded_within_nearest_bucket(self):
        """Regression: within the nearest RTT bucket the balancer must
        pick the least-loaded replica, not the lowest-id one under the
        threshold (which skewed load onto low-id replicas)."""
        engine = SimulationEngine()
        busy_local = make_ready_replica(
            engine, "aws:us-west-2:us-west-2a", ongoing=5
        )
        idle_local = make_ready_replica(
            engine, "aws:us-west-2:us-west-2b", ongoing=0
        )
        assert busy_local.id < idle_local.id  # low id is the busy one
        balancer = LocalityAwareBalancer(
            "aws:us-west-2", default_network(), overload_threshold=8
        )
        assert balancer.pick([busy_local, idle_local], request()) is idle_local

    def test_bucket_tie_broken_by_id(self):
        engine = SimulationEngine()
        a = make_ready_replica(engine, "aws:us-west-2:us-west-2a", ongoing=2)
        b = make_ready_replica(engine, "aws:us-west-2:us-west-2b", ongoing=2)
        balancer = LocalityAwareBalancer("aws:us-west-2", default_network())
        assert balancer.pick([b, a], request()) is min(a, b, key=lambda r: r.id)

    def test_loaded_local_still_beats_idle_remote(self):
        """Bucket order dominates load: a below-threshold local replica
        wins over an idle remote one."""
        engine = SimulationEngine()
        local = make_ready_replica(engine, "aws:us-west-2:us-west-2a", ongoing=7)
        remote = make_ready_replica(engine, "aws:eu-central-1:eu-central-1a")
        balancer = LocalityAwareBalancer(
            "aws:us-west-2", default_network(), overload_threshold=8
        )
        assert balancer.pick([remote, local], request()) is local


class TestCapacityWeighting:
    """Heterogeneous fleets: load is normalised per effective capacity,
    so a big GPU absorbs proportionally more concurrent requests."""

    def test_least_load_normalises_by_weight(self):
        engine = SimulationEngine()
        zone = "aws:us-west-2:us-west-2a"
        # 4/4.0 = 1.0 normalised load beats 2/1.0 = 2.0.
        big = make_ready_replica(engine, zone, ongoing=4, weight=4.0)
        small = make_ready_replica(engine, zone, ongoing=2, weight=1.0)
        assert LeastLoadBalancer().pick([small, big], request()) is big

    def test_unit_weight_matches_raw_ongoing(self):
        engine = SimulationEngine()
        zone = "aws:us-west-2:us-west-2a"
        busy = make_ready_replica(engine, zone, ongoing=3, weight=1.0)
        idle = make_ready_replica(engine, zone, ongoing=1, weight=1.0)
        assert LeastLoadBalancer().pick([busy, idle], request()) is idle

    def test_locality_overload_cutoff_scales_with_weight(self):
        engine = SimulationEngine()
        # 8 ongoing would overload a weight-1 local replica at
        # threshold 8, but a weight-2 replica overloads at 16.
        local = make_ready_replica(
            engine, "aws:us-west-2:us-west-2a", ongoing=8, weight=2.0
        )
        remote = make_ready_replica(engine, "aws:eu-central-1:eu-central-1a")
        balancer = LocalityAwareBalancer(
            "aws:us-west-2", default_network(), overload_threshold=8
        )
        assert balancer.pick([local, remote], request()) is local
        assert not balancer.last_pick_fallback

    def test_locality_fallback_uses_weighted_load(self):
        engine = SimulationEngine()
        # All replicas overloaded (9 >= 8, 33 >= 8*4): the fallback
        # compares normalised load, so 33/4.0 = 8.25 beats 9/1.0 = 9.0.
        local = make_ready_replica(
            engine, "aws:us-west-2:us-west-2a", ongoing=9, weight=1.0
        )
        remote = make_ready_replica(
            engine, "aws:eu-central-1:eu-central-1a", ongoing=33, weight=4.0
        )
        balancer = LocalityAwareBalancer(
            "aws:us-west-2", default_network(), overload_threshold=8
        )
        assert balancer.pick([local, remote], request()) is remote
        assert balancer.last_pick_fallback

    def test_non_positive_weight_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            make_ready_replica(engine, "aws:us-west-2:us-west-2a", weight=0.0)


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_balancer("round_robin"), RoundRobinBalancer)
        assert isinstance(make_balancer("least_load"), LeastLoadBalancer)
        assert isinstance(
            make_balancer("locality", network=default_network()), LocalityAwareBalancer
        )

    def test_locality_needs_network(self):
        with pytest.raises(ValueError):
            make_balancer("locality", network=None)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_balancer("hash_ring")

    def test_unknown_name_lists_known_policies(self):
        with pytest.raises(ValueError) as exc:
            make_balancer("hash_ring")
        message = str(exc.value)
        assert "hash_ring" in message
        for known in ("round_robin", "least_load", "locality"):
            assert known in message


class TestSyntheticTopologyHardening:
    """Free-form zone ids ("z1") and strict network models must degrade
    deterministically instead of raising out of the request path."""

    def test_bare_zone_id_doubles_as_region(self):
        engine = SimulationEngine()
        replica = make_ready_replica(engine, "z1")
        assert replica.region_id == "z1"

    def test_cloud_region_zone_id_still_splits(self):
        engine = SimulationEngine()
        replica = make_ready_replica(engine, "aws:us-west-2:us-west-2a")
        assert replica.region_id == "aws:us-west-2"

    def test_strict_network_falls_back_deterministically(self):
        from repro.cloud.network import NetworkModel

        class StrictNetwork(NetworkModel):
            def rtt(self, region_a, region_b):
                raise KeyError((region_a, region_b))

        engine = SimulationEngine()
        a = make_ready_replica(engine, "z1")
        b = make_ready_replica(engine, "z2")
        balancer = LocalityAwareBalancer("aws:us-west-2", StrictNetwork())
        expected = min(a, b, key=lambda r: r.id)
        for i in range(5):
            assert balancer.pick([b, a], request(i)) is expected

    def test_unplaceable_replica_sorts_after_placeable(self):
        from repro.cloud.network import NetworkModel

        class PartialNetwork(NetworkModel):
            def rtt(self, region_a, region_b):
                if region_b.startswith("z"):
                    raise KeyError(region_b)
                return super().rtt(region_a, region_b)

        engine = SimulationEngine()
        synthetic = make_ready_replica(engine, "z1")
        remote = make_ready_replica(engine, "aws:eu-central-1:eu-central-1a")
        balancer = LocalityAwareBalancer("aws:us-west-2", PartialNetwork())
        # A real (if remote) RTT always beats FALLBACK_RTT.
        assert balancer.pick([synthetic, remote], request()) is remote
        assert balancer._rtt_to(synthetic) == LocalityAwareBalancer.FALLBACK_RTT
