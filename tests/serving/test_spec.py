"""Unit tests for the service spec (Listing 1)."""

import pytest

from repro.cloud import default_topology
from repro.serving import DomainFilter, ReplicaPolicyConfig, ResourceSpec, ServiceSpec


class TestDomainFilter:
    def test_cloud_only(self):
        f = DomainFilter(cloud="gcp")
        assert f.to_dict() == {"cloud": "gcp"}

    def test_region_requires_cloud(self):
        with pytest.raises(ValueError):
            DomainFilter(region="us-east-1")

    def test_zone_requires_region(self):
        with pytest.raises(ValueError):
            DomainFilter(cloud="aws", zone="us-east-1a")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DomainFilter()

    def test_round_trip(self):
        f = DomainFilter(cloud="aws", region="us-east-1", zone="us-east-1a")
        assert DomainFilter.from_dict(f.to_dict()) == f


class TestReplicaPolicyConfig:
    def test_paper_defaults(self):
        config = ReplicaPolicyConfig()
        assert config.num_overprovision == 2
        assert config.dynamic_ondemand_fallback is True
        assert config.spot_placer == "dynamic"
        assert config.qps_window == 60.0

    def test_invalid_qps(self):
        with pytest.raises(ValueError):
            ReplicaPolicyConfig(target_qps_per_replica=0.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            ReplicaPolicyConfig(min_replicas=5, max_replicas=2)

    def test_invalid_placer(self):
        with pytest.raises(ValueError):
            ReplicaPolicyConfig(spot_placer="magic")

    def test_invalid_fixed_target(self):
        with pytest.raises(ValueError):
            ReplicaPolicyConfig(fixed_target=0)

    def test_round_trip(self):
        config = ReplicaPolicyConfig(num_overprovision=3, fixed_target=4)
        assert ReplicaPolicyConfig.from_dict(config.to_dict()) == config


class TestResourceSpec:
    def test_listing1_any_of(self):
        """Listing 1: one AWS region plus all of GCP."""
        spec = ResourceSpec(
            accelerator="A100",
            any_of=(
                DomainFilter(cloud="aws", region="us-east-1"),
                DomainFilter(cloud="gcp"),
            ),
        )
        zones = spec.allowed_zones(default_topology())
        ids = {z.id for z in zones}
        assert any(z.startswith("aws:us-east-1:") for z in ids)
        assert any(z.startswith("gcp:") for z in ids)
        assert not any(z.startswith("aws:us-west-2:") for z in ids)

    def test_empty_any_of_allows_everything(self):
        topo = default_topology()
        assert len(ResourceSpec().allowed_zones(topo)) == len(topo.zones)

    def test_workers_per_replica_validation(self):
        with pytest.raises(ValueError):
            ResourceSpec(workers_per_replica=0)

    def test_round_trip(self):
        spec = ResourceSpec(
            accelerator="T4",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
            workers_per_replica=2,
        )
        assert ResourceSpec.from_dict(spec.to_dict()) == spec


class TestServiceSpec:
    def test_defaults(self):
        spec = ServiceSpec()
        assert spec.request_timeout == 100.0
        assert spec.load_balancing_policy == "least_load"

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            ServiceSpec(request_timeout=0.0)

    def test_invalid_balancer(self):
        with pytest.raises(ValueError):
            ServiceSpec(load_balancing_policy="random")

    def test_full_round_trip(self):
        spec = ServiceSpec(
            name="llm",
            readiness_probe_path="/v1/chat/completions",
            replica_policy=ReplicaPolicyConfig(target_qps_per_replica=1.0, num_overprovision=2),
            resources=ResourceSpec(accelerator="A100"),
            request_timeout=100.0,
        )
        restored = ServiceSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_listing1_shape(self):
        """Build the Listing 1 config from a plain dict, as YAML would."""
        spec = ServiceSpec.from_dict(
            {
                "readiness_probe": {"path": "/v1/chat/completions"},
                "replica_policy": {
                    "target_qps_per_replica": 1.0,
                    "num_overprovision": 2,
                    "dynamic_ondemand_fallback": True,
                    "spot_placer": "dynamic",
                },
                "resources": {
                    "accelerator": "A100",
                    "ports": 8080,
                    "any_of": [
                        {"cloud": "aws", "region": "us-east-1"},
                        {"cloud": "gcp"},
                    ],
                },
            }
        )
        assert spec.readiness_probe_path == "/v1/chat/completions"
        assert spec.replica_policy.num_overprovision == 2
        assert spec.resources.accelerator == "A100"
        assert len(spec.resources.any_of) == 2
