"""Policy registries: lookup, plugin registration, spec validation."""

import pytest

from repro.core.placement import SpotPlacer, make_placer
from repro.serving import ReplicaPolicyConfig, ServiceSpec
from repro.serving.registry import (
    AUTOSCALE_MODES,
    BALANCERS,
    PLACERS,
    PolicyRegistry,
    load_entry_point_plugins,
)


class TestPolicyRegistry:
    def test_builtin_placers_registered(self):
        assert PLACERS.names() == ("dynamic", "even_spread", "round_robin")
        assert "dynamic" in PLACERS
        assert len(PLACERS) == 3
        assert list(PLACERS) == sorted(PLACERS.names())

    def test_builtin_balancers_registered(self):
        assert BALANCERS.names() == ("least_load", "locality", "round_robin")

    def test_builtin_autoscale_modes_registered(self):
        assert AUTOSCALE_MODES.names() == ("qps", "slo")

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="unknown spot placer 'bogus'"):
            PLACERS.get("bogus")
        with pytest.raises(ValueError, match="dynamic"):
            PLACERS.get("bogus")

    def test_register_decorator_and_unregister(self):
        reg = PolicyRegistry("widget")

        @reg.register("w1")
        def make_w1():
            return "w1"

        assert reg.get("w1") is make_w1
        assert reg.validate("w1") == "w1"
        reg.unregister("w1")
        assert "w1" not in reg

    def test_register_plain_call(self):
        reg = PolicyRegistry("widget")
        reg.register("w2", object)
        assert reg.get("w2") is object

    def test_duplicate_registration_rejected(self):
        reg = PolicyRegistry("widget")
        reg.register("dup", object)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("dup", int)

    def test_invalid_name_rejected(self):
        reg = PolicyRegistry("widget")
        with pytest.raises(ValueError):
            reg.register("", object)

    def test_entry_point_loading_is_explicit_and_empty_here(self):
        # No repro.policies plugins are installed in the test env; the
        # explicit loader must still run cleanly and return no names.
        assert load_entry_point_plugins() == []


class TestThirdPartyPlacer:
    def test_registered_placer_reaches_spec_and_factory(self):
        @PLACERS.register("test_fixed")
        class FixedPlacer(SpotPlacer):
            def select_zone(self, current_placements, excluded=frozenset()):
                return self.zones[0]

        try:
            # The spec now validates against the registry, so the new
            # name is accepted with no edits to spec.py ...
            spec = ServiceSpec(
                name="svc",
                replica_policy=ReplicaPolicyConfig(spot_placer="test_fixed"),
            )
            assert spec.replica_policy.spot_placer == "test_fixed"
            # ... and the factory instantiates it by lookup.
            placer = make_placer("test_fixed", ["z1", "z2"])
            assert isinstance(placer, FixedPlacer)
        finally:
            PLACERS.unregister("test_fixed")
        with pytest.raises(ValueError, match="test_fixed"):
            make_placer("test_fixed", ["z1"])


class TestSpecRegistryValidation:
    def test_unknown_spot_placer_names_choices(self):
        with pytest.raises(ValueError, match="even_spread"):
            ServiceSpec(
                name="svc",
                replica_policy=ReplicaPolicyConfig(spot_placer="nope"),
            )

    def test_unknown_balancer_names_choices(self):
        with pytest.raises(ValueError, match="least_load"):
            ServiceSpec(name="svc", load_balancing_policy="nope")

    def test_unknown_autoscale_mode_names_choices(self):
        with pytest.raises(ValueError, match="qps"):
            ServiceSpec(
                name="svc",
                replica_policy=ReplicaPolicyConfig(autoscale_mode="nope"),
            )
