"""Integration tests for the SkyService facade."""

import pytest

from repro.cloud import HOUR, aws1
from repro.core import OnDemandOnlyPolicy, spothedge
from repro.serving import (
    DomainFilter,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
    SkyService,
)
from repro.workloads import poisson_workload


def make_spec(**policy_kwargs):
    return ServiceSpec(
        name="svc",
        replica_policy=ReplicaPolicyConfig(fixed_target=2, **policy_kwargs),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=60.0,
    )


class TestSkyService:
    def test_run_produces_report(self):
        trace = aws1()
        service = SkyService(make_spec(), spothedge(trace.zone_ids), trace, seed=1)
        workload = poisson_workload(HOUR, rate=0.1, seed=1)
        report = service.run(workload, HOUR)
        assert report.system == "SpotHedge"
        assert report.total_requests == len(workload)
        assert report.completed + report.failed <= report.total_requests
        assert report.total_cost > 0
        assert 0.0 <= report.availability <= 1.0

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            trace = aws1()
            service = SkyService(make_spec(), spothedge(trace.zone_ids), trace, seed=7)
            workload = poisson_workload(HOUR, rate=0.1, seed=3)
            results.append(service.run(workload, HOUR))
        a, b = results
        assert a.completed == b.completed
        assert a.failed == b.failed
        assert a.total_cost == pytest.approx(b.total_cost)

    def test_on_demand_only_costs_more_than_spothedge(self):
        trace = aws1()
        workload = poisson_workload(2 * HOUR, rate=0.1, seed=2)
        od_service = SkyService(
            make_spec(), OnDemandOnlyPolicy(trace.zone_ids), trace, seed=2
        )
        od_report = od_service.run(workload, 2 * HOUR)
        sh_service = SkyService(
            make_spec(), spothedge(trace.zone_ids), trace, seed=2
        )
        sh_report = sh_service.run(workload, 2 * HOUR)
        assert od_report.od_cost > 0
        assert od_report.spot_cost == 0
        assert sh_report.total_cost < od_report.total_cost

    def test_cost_relative_normalisation(self):
        trace = aws1()
        service = SkyService(make_spec(), spothedge(trace.zone_ids), trace, seed=4)
        report = service.run(poisson_workload(HOUR, rate=0.05, seed=4), HOUR)
        relative = report.cost_relative_to_on_demand(od_hourly=3.06, n_tar=2)
        assert 0.0 < relative < 2.0

    def test_report_before_run_rejected(self):
        trace = aws1()
        service = SkyService(make_spec(), spothedge(trace.zone_ids), trace)
        with pytest.raises(RuntimeError):
            service.report(100.0)


class TestTeardown:
    def test_down_terminates_all_instances(self):

        trace = aws1()
        service = SkyService(make_spec(), spothedge(trace.zone_ids), trace, seed=5)
        workload = poisson_workload(HOUR, rate=0.05, seed=5)
        service.run(workload, HOUR)
        assert service.controller.replicas  # something was running
        service.down()
        assert service.controller.replicas == []
        for instance in service.cloud.billing.instances:
            assert instance.state.is_terminal

    def test_billing_stops_after_down(self):
        trace = aws1()
        service = SkyService(make_spec(), spothedge(trace.zone_ids), trace, seed=6)
        service.run(poisson_workload(HOUR, rate=0.05, seed=6), HOUR)
        service.down()
        cost_at_down = service.cloud.billing.total(service.engine.now)
        service.engine.run_until(2 * HOUR)
        assert service.cloud.billing.total(service.engine.now) == pytest.approx(
            cost_at_down
        )


class TestBoxPlot:
    def test_report_latency_boxplot(self):
        trace = aws1()
        service = SkyService(make_spec(), spothedge(trace.zone_ids), trace, seed=8)
        report = service.run(poisson_workload(HOUR, rate=0.1, seed=8), HOUR)
        box = report.latency_boxplot()
        assert box is not None
        assert box.p10 <= box.p50 <= box.p90
        assert box.count == report.completed
