"""Unit tests for the workload replay client: timeouts, retries, and
latency accounting (§5.1 methodology)."""

import numpy as np
import pytest

from repro.cloud import CloudConfig, SimCloud, SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    RetryPolicy,
    ServiceClient,
    ServiceController,
    ServiceSpec,
)
from repro.sim import SimulationEngine
from repro.workloads import Request, Workload

ZONES = ["aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b"]


def build(capacity_rows, workload, *, timeout=50.0, service_seconds=2.0):
    engine = SimulationEngine()
    trace = SpotTrace("cli", ZONES, 60.0, np.asarray(capacity_rows))
    cloud = SimCloud(
        engine,
        trace,
        config=CloudConfig(provision_delay_mean=30.0, setup_delay_mean=30.0, delay_jitter=0.0),
    )
    spec = ServiceSpec(
        replica_policy=ReplicaPolicyConfig(fixed_target=1, num_overprovision=0),
        resources=ResourceSpec(
            accelerator="V100", any_of=(DomainFilter(cloud="aws", region="us-west-2"),)
        ),
        request_timeout=timeout,
    )
    policy = spothedge(ZONES, num_overprovision=0)
    profile = ModelProfile("m", overhead=service_seconds, prefill_per_token=0.0,
                           decode_per_token=0.0, max_concurrency=4)
    controller = ServiceController(engine, cloud, spec, policy, profile)
    client = ServiceClient(controller, workload, retry_interval=2.0)
    return engine, controller, client


def workload_at(times):
    return Workload(
        "w", [Request(i, t, 10, 10) for i, t in enumerate(times)]
    )


def full_rows(steps=60):
    return [[2] * steps, [2] * steps]


class TestHappyPath:
    def test_request_completes_with_latency(self):
        engine, controller, client = build(full_rows(), workload_at([100.0]))
        controller.start()
        client.start()
        engine.run_until(300.0)
        stats = client.stats()
        assert stats.completed == 1
        assert stats.failed == 0
        # ~2 s compute plus a sub-second WAN round trip.
        assert 2.0 <= stats.latency.p50 <= 3.0

    def test_latency_includes_wan_rtt(self):
        engine, controller, client = build(full_rows(), workload_at([100.0]))
        controller.start()
        client.start()
        engine.run_until(300.0)
        assert client.stats().latency.p50 > 2.0

    def test_all_requests_served(self):
        times = [100.0 + 5 * i for i in range(20)]
        engine, controller, client = build(full_rows(), workload_at(times))
        controller.start()
        client.start()
        engine.run_until(500.0)
        assert client.stats().completed == 20


class TestDowntime:
    def test_no_replicas_times_out(self):
        rows = [[0] * 60, [0] * 60]
        engine, controller, client = build(rows, workload_at([100.0]), timeout=20.0)
        # No on-demand fallback in this policy config? SpotHedge falls
        # back to OD, so disable by blocking OD via capacity-free spec:
        # instead, simply don't start the controller -> no replicas ever.
        client.start()
        engine.run_until(300.0)
        stats = client.stats()
        assert stats.failed == 1
        assert stats.completed == 0

    def test_request_waits_until_replica_ready(self):
        # Capacity exists but replicas are cold until ~60s; a request at
        # t=10 with a generous timeout completes after readiness.
        engine, controller, client = build(full_rows(), workload_at([10.0]), timeout=90.0)
        controller.start()
        client.start()
        engine.run_until(300.0)
        stats = client.stats()
        assert stats.completed == 1
        # It waited tens of seconds for the first replica.
        assert stats.latency.p50 > 30.0

    def test_completion_after_deadline_counts_as_failure(self):
        engine, controller, client = build(
            full_rows(), workload_at([10.0]), timeout=20.0
        )
        controller.start()
        client.start()
        engine.run_until(400.0)
        stats = client.stats()
        assert stats.failed == 1
        assert stats.completed == 0


class TestPreemptionRetry:
    def test_aborted_request_retried_on_surviving_replica(self):
        # Zone a dies at t=120; its in-flight work must retry on zone b.
        rows = [[1] * 2 + [0] * 58, [1] * 60]
        engine, controller, client = build(
            rows, workload_at([100.0 + i for i in range(10)]),
            timeout=150.0, service_seconds=10.0,
        )
        controller.start()
        client.start()
        engine.run_until(600.0)
        stats = client.stats()
        assert stats.retries > 0
        assert stats.completed + stats.failed == 10
        assert stats.completed >= 5

    def test_failure_time_included_in_latency(self):
        rows = [[1] * 2 + [0] * 58, [1] * 60]
        engine, controller, client = build(
            rows, workload_at([110.0]), timeout=200.0, service_seconds=30.0,
        )
        controller.start()
        client.start()
        engine.run_until(600.0)
        stats = client.stats()
        if stats.retries and stats.completed:
            # Wasted work before the preemption stays in the latency.
            assert stats.latency.p50 > 30.0


class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base=2.0, multiplier=2.0, cap=30.0, jitter=0.0)
        assert [policy.delay(n) for n in range(6)] == [
            2.0, 4.0, 8.0, 16.0, 30.0, 30.0
        ]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base=2.0, multiplier=2.0, cap=30.0, jitter=0.25)
        a = [policy.delay(n, np.random.default_rng(7)) for n in range(4)]
        b = [policy.delay(n, np.random.default_rng(7)) for n in range(4)]
        assert a == b  # same seed, same delays
        for n, value in enumerate(a):
            raw = min(2.0 * 2.0**n, 30.0)
            assert 0.75 * raw <= value <= 1.25 * raw

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(cap=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestBackoffRetries:
    def test_no_replica_backs_off_exponentially(self):
        """With no replicas ever ready, the retry attempts follow the
        deterministic (jitter-0) exponential schedule."""
        rows = [[0] * 60, [0] * 60]
        engine, controller, _ = build(rows, workload_at([0.0]), timeout=120.0)
        client = ServiceClient(
            controller,
            workload_at([0.0]),
            backoff=RetryPolicy(base=2.0, multiplier=2.0, cap=30.0, jitter=0.0),
        )
        attempts = []
        original = controller.route

        def tracking_route(request):
            attempts.append(engine.now)
            return original(request)

        controller.route = tracking_route
        client.start()  # controller never starts -> no replicas
        engine.run_until(200.0)
        # Arrival attempt plus backoffs at +2, +4(=6), +8(=14), +16(=30),
        # +30(=60), +30(=90); the next (+30=120) would hit the deadline.
        assert attempts == [0.0, 2.0, 6.0, 14.0, 30.0, 60.0, 90.0]
        assert client.stats().failed == 1

    def test_shed_requests_retry_and_complete(self):
        """Admission-control sheds bounce back through the backoff path
        and eventually complete once the queue drains."""
        engine = SimulationEngine()
        trace = SpotTrace("cli", ZONES, 60.0, np.asarray(full_rows()))
        cloud = SimCloud(
            engine,
            trace,
            config=CloudConfig(provision_delay_mean=30.0, setup_delay_mean=30.0,
                               delay_jitter=0.0),
        )
        spec = ServiceSpec(
            replica_policy=ReplicaPolicyConfig(fixed_target=1, num_overprovision=0),
            resources=ResourceSpec(
                accelerator="V100",
                any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
            ),
            request_timeout=400.0,
            max_queue_per_replica=1,
        )
        policy = spothedge(ZONES, num_overprovision=0)
        profile = ModelProfile("m", overhead=10.0, prefill_per_token=0.0,
                               decode_per_token=0.0, max_concurrency=1)
        controller = ServiceController(engine, cloud, spec, policy, profile)
        # Burst of 6 requests at one instant against a single replica
        # with 1 slot + 1 queue entry: most are shed at least once.
        times = [100.0] * 6
        client = ServiceClient(
            controller,
            workload_at(times),
            backoff=RetryPolicy(base=2.0, multiplier=2.0, cap=30.0, jitter=0.0),
        )
        controller.start()
        client.start()
        engine.run_until(500.0)
        stats = client.stats()
        assert stats.shed > 0
        assert stats.retries >= stats.shed
        assert stats.completed == 6

    def test_backoff_runs_are_deterministic(self):
        """Same seed in, same stats out — the jitter draws come from the
        seeded generator."""

        def run():
            rows = full_rows()
            engine = SimulationEngine()
            trace = SpotTrace("cli", ZONES, 60.0, np.asarray(rows))
            cloud = SimCloud(
                engine,
                trace,
                config=CloudConfig(provision_delay_mean=30.0,
                                   setup_delay_mean=30.0, delay_jitter=0.0),
            )
            spec = ServiceSpec(
                replica_policy=ReplicaPolicyConfig(fixed_target=1,
                                                   num_overprovision=0),
                resources=ResourceSpec(
                    accelerator="V100",
                    any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
                ),
                request_timeout=300.0,
                max_queue_per_replica=1,
            )
            policy = spothedge(ZONES, num_overprovision=0)
            profile = ModelProfile("m", overhead=5.0, prefill_per_token=0.0,
                                   decode_per_token=0.0, max_concurrency=1)
            controller = ServiceController(engine, cloud, spec, policy, profile)
            client = ServiceClient(
                controller,
                workload_at([100.0] * 5),
                backoff=RetryPolicy(jitter=0.2),
                rng=np.random.default_rng(11),
            )
            controller.start()
            client.start()
            engine.run_until(400.0)
            s = client.stats()
            return (s.completed, s.failed, s.retries, s.shed,
                    tuple(client.latencies.samples))

        assert run() == run()


class TestValidation:
    def test_double_start_rejected(self):
        engine, controller, client = build(full_rows(), workload_at([1.0]))
        client.start()
        with pytest.raises(RuntimeError):
            client.start()

    def test_invalid_retry_interval(self):
        engine, controller, _ = build(full_rows(), workload_at([1.0]))
        with pytest.raises(ValueError):
            ServiceClient(controller, workload_at([1.0]), retry_interval=0.0)

    def test_stats_on_empty_workload(self):
        engine, controller, client = build(full_rows(), workload_at([]))
        client.start()
        engine.run_until(10.0)
        stats = client.stats()
        assert stats.total_requests == 0
        assert stats.failure_rate == 0.0
        # Empty recorders yield NaN-safe falsy summaries, not None.
        assert not stats.latency
        assert stats.latency.count == 0
