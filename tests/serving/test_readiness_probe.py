"""Tests for readiness probing (§4) and silent-failure detection.

The probe is "an actual user-defined compute workload" sent
periodically; a replica that stops answering — a *frozen* endpoint that
accepts requests but never completes them — is detected only by the
probe and replaced.
"""

import numpy as np
import pytest

from repro.cloud import CloudConfig, SimCloud, SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceClient,
    ServiceController,
    ServiceSpec,
)
from repro.sim import SimulationEngine
from repro.workloads import Request, Workload

ZONES = ["aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b"]


def build(*, probe_interval=30.0, probe_timeout=20.0, fixed_target=1):
    engine = SimulationEngine()
    trace = SpotTrace("probe", ZONES, 60.0, np.full((2, 120), 4))
    cloud = SimCloud(
        engine,
        trace,
        config=CloudConfig(provision_delay_mean=30.0, setup_delay_mean=30.0,
                           delay_jitter=0.0),
    )
    spec = ServiceSpec(
        replica_policy=ReplicaPolicyConfig(
            fixed_target=fixed_target, num_overprovision=0
        ),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=90.0,
    )
    policy = spothedge(ZONES, num_overprovision=0)
    profile = ModelProfile("m", overhead=2.0, prefill_per_token=0.0,
                           decode_per_token=0.0, max_concurrency=8)
    controller = ServiceController(
        engine, cloud, spec, policy, profile,
        probe_interval=probe_interval, probe_timeout=probe_timeout,
    )
    return engine, cloud, controller


class TestFreeze:
    def test_frozen_server_hangs_requests(self):
        from repro.serving import InferenceServer

        engine = SimulationEngine()
        profile = ModelProfile("m", 1.0, 0.0, 0.0, 4)
        server = InferenceServer(engine, profile)
        done, aborted = [], []
        server.submit(Request(0, 0.0, 1, 1), done.append, aborted.append)
        server.freeze()
        engine.run()
        assert done == []
        assert aborted == []  # silent: nothing is notified
        assert server.frozen


class TestProbing:
    def test_healthy_replica_passes_probes(self):
        engine, cloud, controller = build()
        controller.start()
        engine.run_until(600.0)
        assert controller.probe_failure_count.value == 0
        assert len(controller.ready_replicas()) == 1

    def test_frozen_replica_detected_and_replaced(self):
        engine, cloud, controller = build()
        controller.start()
        engine.run_until(120.0)
        victim = controller.ready_replicas()[0]
        engine.call_at(150.0, victim.server.freeze)
        engine.run_until(400.0)
        assert controller.probe_failure_count.value >= 1
        ready = controller.ready_replicas()
        assert len(ready) == 1
        assert ready[0] is not victim

    def test_detection_latency_bounded_by_interval_plus_timeout(self):
        engine, cloud, controller = build(probe_interval=30.0, probe_timeout=20.0)
        controller.start()
        engine.run_until(120.0)
        victim = controller.ready_replicas()[0]
        engine.call_at(130.0, victim.server.freeze)
        # Worst case: freeze right after a probe -> next probe at +30,
        # timeout +20 -> detected by ~180.
        engine.run_until(185.0)
        assert controller.probe_failure_count.value >= 1

    def test_no_probing_when_disabled(self):
        engine, cloud, controller = build(probe_interval=None)
        controller.start()
        engine.run_until(120.0)
        victim = controller.ready_replicas()[0]
        engine.call_at(130.0, victim.server.freeze)
        engine.run_until(600.0)
        # Without probes the frozen replica is never detected.
        assert controller.probe_failure_count.value == 0
        assert victim in controller.ready_replicas()

    def test_probes_protect_client_traffic(self):
        engine, cloud, controller = build(fixed_target=2)
        workload = Workload(
            "w", [Request(i, 200.0 + 2.0 * i, 10, 10) for i in range(100)]
        )
        client = ServiceClient(controller, workload)
        controller.start()
        client.start()
        # Freeze one of the two replicas mid-run.
        def freeze_one():
            ready = controller.ready_replicas()
            if ready:
                ready[0].server.freeze()

        engine.call_at(250.0, freeze_one)
        engine.run_until(700.0)
        stats = client.stats()
        # Requests stuck on the frozen replica are lost (their failure),
        # but the service recovers and the vast majority complete.
        assert stats.completed >= 80
        assert controller.probe_failure_count.value >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            build(probe_interval=0.0)
        with pytest.raises(ValueError):
            build(probe_timeout=0.0)
