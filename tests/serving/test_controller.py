"""Unit/integration tests for the service controller."""

import numpy as np
import pytest

from repro.cloud import CloudConfig, SimCloud, SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceController,
    ServiceSpec,
)
from repro.sim import SimulationEngine

ZONES = [
    "aws:us-west-2:us-west-2a",
    "aws:us-west-2:us-west-2b",
    "aws:us-west-2:us-west-2c",
]


def build(capacity_rows, *, policy=None, spec=None, steps=120, step=60.0):
    engine = SimulationEngine()
    capacity = np.asarray(capacity_rows)
    assert capacity.shape[0] == len(ZONES)
    trace = SpotTrace("ctl", ZONES, step, capacity)
    cloud = SimCloud(
        engine,
        trace,
        config=CloudConfig(provision_delay_mean=60.0, setup_delay_mean=120.0, delay_jitter=0.0),
    )
    spec = spec or ServiceSpec(
        replica_policy=ReplicaPolicyConfig(fixed_target=2, num_overprovision=1),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
    )
    policy = policy or spothedge(ZONES, num_overprovision=1)
    profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.0,
                           decode_per_token=0.0, max_concurrency=8)
    controller = ServiceController(engine, cloud, spec, policy, profile)
    return engine, cloud, controller


def full_capacity(steps=120):
    return [[4] * steps for _ in ZONES]


class TestReconciliation:
    def test_launches_target_plus_overprovision_spot(self):
        engine, cloud, controller = build(full_capacity())
        controller.start()
        engine.run_until(600.0)
        obs = controller.observe()
        assert obs.spot_ready == 3  # fixed_target 2 + overprovision 1
        assert obs.od_ready == 0  # fallback scaled down once spot is up

    def test_ondemand_fallback_while_spot_cold(self):
        engine, cloud, controller = build(full_capacity())
        controller.start()
        engine.run_until(30.0)  # spot still provisioning
        obs = controller.observe()
        assert obs.od_launched == 2  # min(n_tar, target+extra-ready) = 2

    def test_spot_spread_across_zones(self):
        engine, cloud, controller = build(full_capacity())
        controller.start()
        engine.run_until(600.0)
        obs = controller.observe()
        # Dynamic placement prefers unused zones: 3 replicas in 3 zones.
        assert len(obs.spot_by_zone) == 3

    def test_preemption_triggers_replacement(self):
        rows = full_capacity()
        # Zone a loses capacity at step 20 (t=1200) and stays down.
        rows[0] = [4] * 20 + [0] * 100
        engine, cloud, controller = build(rows)
        controller.start()
        engine.run_until(3000.0)
        obs = controller.observe()
        assert obs.spot_ready == 3
        assert "aws:us-west-2:us-west-2a" not in obs.spot_by_zone
        assert controller.preemption_count.value >= 1

    def test_total_blackout_falls_back_to_ondemand(self):
        rows = [[4] * 10 + [0] * 110 for _ in ZONES]
        engine, cloud, controller = build(rows)
        controller.start()
        engine.run_until(3000.0)
        obs = controller.observe()
        assert obs.spot_ready == 0
        assert obs.od_ready == 2  # capped at N_Tar

    def test_ondemand_scaled_down_when_spot_returns(self):
        rows = [[0] * 20 + [4] * 100 for _ in ZONES]
        engine, cloud, controller = build(rows)
        controller.start()
        engine.run_until(4000.0)
        obs = controller.observe()
        assert obs.spot_ready == 3
        assert obs.od_launched == 0

    def test_start_twice_rejected(self):
        engine, cloud, controller = build(full_capacity())
        controller.start()
        with pytest.raises(RuntimeError):
            controller.start()


class TestMetricsSeries:
    def test_ready_series_recorded(self):
        engine, cloud, controller = build(full_capacity())
        controller.start()
        engine.run_until(1000.0)
        assert controller.ready_total_series.value_at(900.0) == 3
        assert controller.n_tar_series.value_at(900.0) == 2

    def test_availability_window(self):
        engine, cloud, controller = build(full_capacity())
        controller.start()
        engine.run_until(2000.0)
        # Cold start eats the first ~3 minutes; after that it holds.
        assert controller.availability(0.0, 2000.0, n_tar=2) > 0.8
        assert controller.availability(500.0, 2000.0, n_tar=2) == pytest.approx(1.0)


class TestZoneResolution:
    def test_accelerator_unavailable_anywhere_rejected(self):
        spec = ServiceSpec(resources=ResourceSpec(accelerator="H100"))
        with pytest.raises(ValueError):
            build(full_capacity(), spec=spec)

    def test_spec_restricts_spot_zones(self):
        spec = ServiceSpec(
            replica_policy=ReplicaPolicyConfig(fixed_target=2),
            resources=ResourceSpec(
                accelerator="V100",
                any_of=(
                    DomainFilter(
                        cloud="aws", region="us-west-2", zone="us-west-2a"
                    ),
                ),
            ),
        )
        engine, cloud, controller = build(full_capacity(), spec=spec)
        assert controller.spot_zones == ["aws:us-west-2:us-west-2a"]

    def test_instance_type_is_cheapest_for_accelerator(self):
        engine, cloud, controller = build(full_capacity())
        itype = controller._zone_itype[ZONES[0]]
        # p3.2xlarge is the cheapest V100 carrier on AWS in the catalog.
        assert itype == "p3.2xlarge"
