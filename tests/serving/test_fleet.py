"""Tests for multi-service fleets sharing one cloud."""

import numpy as np
import pytest

from repro.cloud import SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
)
from repro.serving.fleet import ServiceFleet
from repro.workloads import Request, Workload

ZONES = ["aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b"]
HOUR = 3600.0


def make_spec(name, target=2, overprovision=0):
    return ServiceSpec(
        name=name,
        replica_policy=ReplicaPolicyConfig(
            fixed_target=target, num_overprovision=overprovision
        ),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=60.0,
    )


def make_workload(name, n=30, start=400.0):
    return Workload(name, [Request(i, start + 10.0 * i, 10, 10) for i in range(n)])


def profile():
    return ModelProfile("m", overhead=2.0, prefill_per_token=0.0,
                        decode_per_token=0.0, max_concurrency=8)


def flat_trace(cap, hours=2):
    return SpotTrace("fleet", ZONES, 60.0, np.full((2, int(hours * 60)), cap))


class TestFleetBasics:
    def test_two_services_serve_independently(self):
        fleet = ServiceFleet(flat_trace(cap=8), seed=1)
        for name in ("chat", "rag"):
            fleet.deploy(
                make_spec(name),
                spothedge(ZONES, num_overprovision=0),
                profile=profile(),
                workload=make_workload(name),
            )
        reports = fleet.run(2 * HOUR)
        assert set(reports) == {"chat", "rag"}
        for report in reports.values():
            assert report.failure_rate < 0.05
            assert report.availability > 0.9

    def test_shared_bill_covers_both_services(self):
        fleet = ServiceFleet(flat_trace(cap=8), seed=2)
        for name in ("a", "b"):
            fleet.deploy(
                make_spec(name),
                spothedge(ZONES, num_overprovision=0),
                profile=profile(),
                workload=make_workload(name),
            )
        fleet.run(HOUR)
        # Four spot replicas (2 per service) for ~an hour.
        assert fleet.total_cost() > 0
        instances = fleet.cloud.billing.instances
        assert len([i for i in instances if i.spot]) >= 4

    def test_status_lists_every_service(self):
        fleet = ServiceFleet(flat_trace(cap=8), seed=3)
        fleet.deploy(make_spec("solo"), spothedge(ZONES), profile=profile(),
                     workload=make_workload("solo"))
        fleet.run(HOUR)
        status = fleet.status()
        assert "solo" in status
        assert status["solo"]

    def test_duplicate_names_rejected(self):
        fleet = ServiceFleet(flat_trace(cap=8))
        fleet.deploy(make_spec("x"), spothedge(ZONES), profile=profile())
        with pytest.raises(ValueError):
            fleet.deploy(make_spec("x"), spothedge(ZONES), profile=profile())

    def test_deploy_after_run_rejected(self):
        fleet = ServiceFleet(flat_trace(cap=8))
        fleet.deploy(make_spec("x"), spothedge(ZONES), profile=profile(),
                     workload=make_workload("x"))
        fleet.run(HOUR)
        with pytest.raises(RuntimeError):
            fleet.deploy(make_spec("y"), spothedge(ZONES), profile=profile())

    def test_empty_fleet_rejected(self):
        with pytest.raises(RuntimeError):
            ServiceFleet(flat_trace(cap=8)).run(HOUR)


class TestCapacityContention:
    def test_services_compete_for_scarce_capacity(self):
        """Total capacity 3/zone; two services each wanting 4 replicas
        cannot both be satisfied — the shared market is the constraint."""
        fleet = ServiceFleet(flat_trace(cap=3), seed=4)
        for name in ("first", "second"):
            fleet.deploy(
                make_spec(name, target=4),
                spothedge(ZONES, num_overprovision=0),
                profile=profile(),
                workload=make_workload(name),
            )
        fleet.run(2 * HOUR)
        ready_totals = {
            name: s.controller.observe().spot_ready
            for name, s in fleet.services.items()
        }
        # 6 spot slots total; 8 wanted: the sum is capacity-bound.
        assert sum(ready_totals.values()) <= 6
        # On-demand fallback covers the shortfall for both services.
        od_ready = {
            name: s.controller.observe().od_ready
            for name, s in fleet.services.items()
        }
        assert sum(ready_totals.values()) + sum(od_ready.values()) >= 7

    def test_contention_harms_no_one_with_fallback(self):
        fleet = ServiceFleet(flat_trace(cap=2), seed=5)
        for name in ("a", "b"):
            fleet.deploy(
                make_spec(name, target=3),
                spothedge(ZONES, num_overprovision=0),
                profile=profile(),
                workload=make_workload(name),
            )
        reports = fleet.run(2 * HOUR)
        for name, report in reports.items():
            assert report.failure_rate < 0.1, name
