"""Unit tests for the simulated inference engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving import (
    InferenceServer,
    ModelProfile,
    llama2_70b_profile,
    opt_6_7b_profile,
    vicuna_13b_profile,
)
from repro.sim import SimulationEngine
from repro.workloads import Request


def req(i=0, inp=20, out=44, t=0.0):
    return Request(i, t, input_tokens=inp, output_tokens=out)


class TestModelProfile:
    def test_processing_time_linear_in_tokens(self):
        profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.01,
                               decode_per_token=0.1, max_concurrency=4)
        assert profile.processing_time(req(inp=10, out=20)) == pytest.approx(
            1.0 + 0.1 + 2.0
        )

    def test_slowdown_scales(self):
        profile = ModelProfile("m", 1.0, 0.0, 0.1, 4)
        base = profile.processing_time(req())
        assert profile.processing_time(req(), slowdown=2.0) == pytest.approx(2 * base)

    def test_slowdown_below_one_rejected(self):
        profile = ModelProfile("m", 1.0, 0.0, 0.1, 4)
        with pytest.raises(ValueError):
            profile.processing_time(req(), slowdown=0.5)

    def test_ttft_excludes_decode(self):
        profile = ModelProfile("m", 1.0, 0.01, 0.1, 4)
        assert profile.time_to_first_token(req(inp=100, out=500)) == pytest.approx(2.0)

    def test_fig6a_vicuna_request_takes_seconds(self):
        """Fig. 6a: a 20-in/44-out request on Vicuna-13B takes seconds of
        compute, far above any WAN RTT."""
        assert 1.0 <= vicuna_13b_profile().processing_time(req()) <= 10.0

    def test_llama70b_slower_than_opt67b(self):
        r = req(inp=60, out=150)
        assert llama2_70b_profile().processing_time(r) > opt_6_7b_profile().processing_time(r)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            ModelProfile("m", -1.0, 0.0, 0.1, 4)
        with pytest.raises(ValueError):
            ModelProfile("m", 1.0, 0.0, 0.1, 0)
        with pytest.raises(ValueError):
            ModelProfile("m", 1.0, 0.0, 0.1, 4, decode_batch_slope=-0.1)

    def test_ttft_slowdown_below_one_rejected(self):
        """Consistency with processing_time: both raise on slowdown < 1
        (time_to_first_token used to clamp silently)."""
        profile = ModelProfile("m", 1.0, 0.0, 0.1, 4)
        with pytest.raises(ValueError):
            profile.time_to_first_token(req(), slowdown=0.5)

    def test_batch_factor_exact_one_at_batch_one(self):
        profile = ModelProfile("m", 1.0, 0.0, 0.1, 4, decode_batch_slope=0.37)
        assert profile.batch_factor(1) == 1.0  # exact, not approx

    def test_batch_factor_linear(self):
        profile = ModelProfile("m", 1.0, 0.0, 0.1, 8, decode_batch_slope=0.1)
        assert profile.batch_factor(5) == pytest.approx(1.4)

    def test_batch_factor_rejects_nonpositive_batch(self):
        profile = ModelProfile("m", 1.0, 0.0, 0.1, 4, decode_batch_slope=0.1)
        with pytest.raises(ValueError):
            profile.batch_factor(0)

    def test_factories_accept_batch_slope(self):
        for factory in (llama2_70b_profile, opt_6_7b_profile, vicuna_13b_profile):
            assert factory().decode_batch_slope == 0.0
            assert factory(decode_batch_slope=0.08).decode_batch_slope == 0.08

    @given(
        slope=st.floats(min_value=0.0, max_value=2.0),
        batch=st.integers(min_value=1, max_value=63),
    )
    @settings(max_examples=50, deadline=None)
    def test_batch_factor_monotone_nondecreasing(self, slope, batch):
        profile = ModelProfile("m", 1.0, 0.0, 0.1, 64, decode_batch_slope=slope)
        assert profile.batch_factor(batch + 1) >= profile.batch_factor(batch)


class TestInferenceServer:
    def make(self, concurrency=2):
        engine = SimulationEngine()
        profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.0,
                               decode_per_token=0.0, max_concurrency=concurrency)
        return engine, InferenceServer(engine, profile)

    def test_completion_after_processing_time(self):
        engine, server = self.make()
        done = []
        server.submit(req(0), done.append, lambda r: None)
        engine.run()
        assert [r.request_id for r in done] == [0]
        assert engine.now == pytest.approx(1.0)

    def test_concurrency_limit_queues_requests(self):
        engine, server = self.make(concurrency=2)
        done_times = {}
        for i in range(3):
            server.submit(req(i), lambda r: done_times.__setitem__(r.request_id, engine.now),
                          lambda r: None)
        assert server.executing == 2
        assert server.ongoing == 3
        engine.run()
        assert done_times[0] == pytest.approx(1.0)
        assert done_times[1] == pytest.approx(1.0)
        assert done_times[2] == pytest.approx(2.0)  # waited for a slot

    def test_fifo_queue_order(self):
        engine, server = self.make(concurrency=1)
        order = []
        for i in range(3):
            server.submit(req(i), lambda r: order.append(r.request_id), lambda r: None)
        engine.run()
        assert order == [0, 1, 2]

    def test_abort_all_fails_queued_and_running(self):
        engine, server = self.make(concurrency=1)
        completed, aborted = [], []
        for i in range(3):
            server.submit(req(i), completed.append, lambda r: aborted.append(r.request_id))
        server.abort_all()
        engine.run()
        assert completed == []
        assert sorted(aborted) == [0, 1, 2]
        assert server.ongoing == 0

    def test_submissions_after_abort_are_rejected(self):
        engine, server = self.make()
        server.abort_all()
        aborted = []
        server.submit(req(9), lambda r: None, lambda r: aborted.append(r.request_id))
        assert aborted == [9]

    def test_slowdown_applies_to_new_requests(self):
        engine, server = self.make(concurrency=1)
        done = {}
        server.set_slowdown(3.0)
        server.submit(req(0), lambda r: done.__setitem__(r.request_id, engine.now), lambda r: None)
        engine.run()
        assert done[0] == pytest.approx(3.0)

    def test_invalid_slowdown_rejected(self):
        _, server = self.make()
        with pytest.raises(ValueError):
            server.set_slowdown(0.9)

    def test_jitter_validation(self):
        engine = SimulationEngine()
        profile = llama2_70b_profile()
        with pytest.raises(ValueError):
            InferenceServer(engine, profile, jitter=1.0)

    def test_negative_max_queue_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            InferenceServer(engine, llama2_70b_profile(), max_queue=-1)


class TestAdmissionControl:
    def make(self, concurrency=1, max_queue=1):
        engine = SimulationEngine()
        profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.0,
                               decode_per_token=0.0, max_concurrency=concurrency)
        return engine, InferenceServer(engine, profile, max_queue=max_queue)

    def test_sheds_when_queue_full(self):
        engine, server = self.make(concurrency=1, max_queue=1)
        done, aborted = [], []
        assert server.submit(req(0), done.append, aborted.append) is True
        assert server.submit(req(1), done.append, aborted.append) is True
        # Slot busy, queue full: deterministic shed, no callback ever.
        assert server.submit(req(2), done.append, aborted.append) is False
        assert server.shed_count == 1
        assert server.queue_depth == 1
        engine.run()
        assert [r.request_id for r in done] == [0, 1]
        assert aborted == []

    def test_urgent_bypasses_queue_bound(self):
        engine, server = self.make(concurrency=1, max_queue=0)
        done = []
        server.submit(req(0), done.append, lambda r: None)
        assert server.submit(req(1), done.append, lambda r: None) is False
        assert server.submit(req(2), done.append, lambda r: None,
                             urgent=True) is True
        engine.run()
        assert [r.request_id for r in done] == [0, 2]

    def test_unbounded_queue_never_sheds(self):
        engine = SimulationEngine()
        profile = ModelProfile("m", 1.0, 0.0, 0.0, 1)
        server = InferenceServer(engine, profile)
        for i in range(50):
            assert server.submit(req(i), lambda r: None, lambda r: None) is True
        assert server.shed_count == 0

    def test_shed_frees_slot_for_later_submit(self):
        engine, server = self.make(concurrency=1, max_queue=1)
        done = []
        server.submit(req(0), done.append, lambda r: None)
        server.submit(req(1), done.append, lambda r: None)
        assert server.submit(req(2), done.append, lambda r: None) is False
        engine.run_until(1.5)  # request 0 done, 1 executing, queue empty
        assert server.submit(req(3), done.append, lambda r: None) is True
        engine.run()
        assert [r.request_id for r in done] == [0, 1, 3]


class TestContinuousBatching:
    def batched_server(self, *, slope=0.5, concurrency=2):
        engine = SimulationEngine()
        profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.0,
                               decode_per_token=0.1, max_concurrency=concurrency,
                               decode_batch_slope=slope)
        return engine, InferenceServer(engine, profile)

    def test_solo_request_matches_fixed_rate_model(self):
        """With nothing co-resident the batched engine reproduces the
        slope-0 timing exactly."""
        engine, server = self.batched_server()
        done = {}
        server.submit(req(0, out=40), lambda r: done.__setitem__(r.request_id, engine.now),
                      lambda r: None)
        engine.run()
        assert done[0] == 5.0  # 1.0 overhead + 40 * 0.1, bit-exact

    def test_repricing_hand_computed(self):
        """Two overlapping streams, slope 0.5 (factor 1.5 at batch 2).

        A (40 out tokens): decode budget 4 s, prefill done at t=1.
        B (20 out tokens): decode budget 2 s, admitted at t=0 too.
        Both decode at 1.5x slowness while co-resident: B's 2 s budget
        takes 3 s of wall clock (done t=4); A consumed 2 of its 4 s by
        then and finishes the rest solo (done t=6).
        """
        engine, server = self.batched_server(slope=0.5, concurrency=2)
        done = {}
        server.submit(req(0, out=40), lambda r: done.__setitem__(r.request_id, engine.now),
                      lambda r: None)
        server.submit(req(1, out=20), lambda r: done.__setitem__(r.request_id, engine.now),
                      lambda r: None)
        engine.run()
        assert done[1] == pytest.approx(4.0)
        assert done[0] == pytest.approx(6.0)

    def test_batched_slower_than_solo(self):
        """Total completion under co-residency strictly exceeds the
        fixed-rate model's (same requests, slope 0)."""

        def last_finish(slope):
            engine, server = self.batched_server(slope=slope, concurrency=4)
            for i in range(4):
                server.submit(req(i, out=30), lambda r: None, lambda r: None)
            engine.run()
            return engine.now

        assert last_finish(0.3) > last_finish(0.0)

    @given(extra=st.integers(min_value=0, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_finish_time_monotone_in_batch_size(self, extra):
        """A request's total decode time is monotone non-decreasing in
        the number of co-resident streams."""

        def finish_with_companions(k):
            engine, server = self.batched_server(slope=0.4, concurrency=8)
            done = {}
            server.submit(req(0, out=30), lambda r: done.__setitem__(r.request_id, engine.now),
                          lambda r: None)
            for i in range(1, k + 1):
                server.submit(req(i, out=30), lambda r: None, lambda r: None)
            engine.run()
            return done[0]

        assert finish_with_companions(extra + 1) >= finish_with_companions(extra)

    def test_abort_all_cancels_batched_finish_events(self):
        engine, server = self.batched_server()
        done, aborted = [], []
        server.submit(req(0), done.append, lambda r: aborted.append(r.request_id))
        server.submit(req(1), done.append, lambda r: aborted.append(r.request_id))
        server.abort_all()
        engine.run()
        assert done == []
        assert sorted(aborted) == [0, 1]
        assert server.ongoing == 0
