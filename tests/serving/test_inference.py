"""Unit tests for the simulated inference engine."""

import pytest

from repro.serving import (
    InferenceServer,
    ModelProfile,
    llama2_70b_profile,
    opt_6_7b_profile,
    vicuna_13b_profile,
)
from repro.sim import SimulationEngine
from repro.workloads import Request


def req(i=0, inp=20, out=44, t=0.0):
    return Request(i, t, input_tokens=inp, output_tokens=out)


class TestModelProfile:
    def test_processing_time_linear_in_tokens(self):
        profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.01,
                               decode_per_token=0.1, max_concurrency=4)
        assert profile.processing_time(req(inp=10, out=20)) == pytest.approx(
            1.0 + 0.1 + 2.0
        )

    def test_slowdown_scales(self):
        profile = ModelProfile("m", 1.0, 0.0, 0.1, 4)
        base = profile.processing_time(req())
        assert profile.processing_time(req(), slowdown=2.0) == pytest.approx(2 * base)

    def test_slowdown_below_one_rejected(self):
        profile = ModelProfile("m", 1.0, 0.0, 0.1, 4)
        with pytest.raises(ValueError):
            profile.processing_time(req(), slowdown=0.5)

    def test_ttft_excludes_decode(self):
        profile = ModelProfile("m", 1.0, 0.01, 0.1, 4)
        assert profile.time_to_first_token(req(inp=100, out=500)) == pytest.approx(2.0)

    def test_fig6a_vicuna_request_takes_seconds(self):
        """Fig. 6a: a 20-in/44-out request on Vicuna-13B takes seconds of
        compute, far above any WAN RTT."""
        assert 1.0 <= vicuna_13b_profile().processing_time(req()) <= 10.0

    def test_llama70b_slower_than_opt67b(self):
        r = req(inp=60, out=150)
        assert llama2_70b_profile().processing_time(r) > opt_6_7b_profile().processing_time(r)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            ModelProfile("m", -1.0, 0.0, 0.1, 4)
        with pytest.raises(ValueError):
            ModelProfile("m", 1.0, 0.0, 0.1, 0)


class TestInferenceServer:
    def make(self, concurrency=2):
        engine = SimulationEngine()
        profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.0,
                               decode_per_token=0.0, max_concurrency=concurrency)
        return engine, InferenceServer(engine, profile)

    def test_completion_after_processing_time(self):
        engine, server = self.make()
        done = []
        server.submit(req(0), done.append, lambda r: None)
        engine.run()
        assert [r.request_id for r in done] == [0]
        assert engine.now == pytest.approx(1.0)

    def test_concurrency_limit_queues_requests(self):
        engine, server = self.make(concurrency=2)
        done_times = {}
        for i in range(3):
            server.submit(req(i), lambda r: done_times.__setitem__(r.request_id, engine.now),
                          lambda r: None)
        assert server.executing == 2
        assert server.ongoing == 3
        engine.run()
        assert done_times[0] == pytest.approx(1.0)
        assert done_times[1] == pytest.approx(1.0)
        assert done_times[2] == pytest.approx(2.0)  # waited for a slot

    def test_fifo_queue_order(self):
        engine, server = self.make(concurrency=1)
        order = []
        for i in range(3):
            server.submit(req(i), lambda r: order.append(r.request_id), lambda r: None)
        engine.run()
        assert order == [0, 1, 2]

    def test_abort_all_fails_queued_and_running(self):
        engine, server = self.make(concurrency=1)
        completed, aborted = [], []
        for i in range(3):
            server.submit(req(i), completed.append, lambda r: aborted.append(r.request_id))
        server.abort_all()
        engine.run()
        assert completed == []
        assert sorted(aborted) == [0, 1, 2]
        assert server.ongoing == 0

    def test_submissions_after_abort_are_rejected(self):
        engine, server = self.make()
        server.abort_all()
        aborted = []
        server.submit(req(9), lambda r: None, lambda r: aborted.append(r.request_id))
        assert aborted == [9]

    def test_slowdown_applies_to_new_requests(self):
        engine, server = self.make(concurrency=1)
        done = {}
        server.set_slowdown(3.0)
        server.submit(req(0), lambda r: done.__setitem__(r.request_id, engine.now), lambda r: None)
        engine.run()
        assert done[0] == pytest.approx(3.0)

    def test_invalid_slowdown_rejected(self):
        _, server = self.make()
        with pytest.raises(ValueError):
            server.set_slowdown(0.9)

    def test_jitter_validation(self):
        engine = SimulationEngine()
        profile = llama2_70b_profile()
        with pytest.raises(ValueError):
            InferenceServer(engine, profile, jitter=1.0)
