"""Unit tests for the QPS-window autoscaler (§4)."""


from repro.serving import Autoscaler, ReplicaPolicyConfig


def config(**kwargs):
    defaults = dict(
        target_qps_per_replica=1.0,
        qps_window=60.0,
        upscale_delay=300.0,
        downscale_delay=600.0,
        min_replicas=1,
        max_replicas=10,
    )
    defaults.update(kwargs)
    return ReplicaPolicyConfig(**defaults)


def feed_rate(scaler, rate, start, end, step=1.0):
    """Feed a constant request rate into the window."""
    t = start
    while t < end:
        count = rate * step
        whole = int(count)
        for i in range(whole):
            scaler.record_request(t + i * step / max(whole, 1))
        t += step


class TestCandidate:
    def test_candidate_is_ceil_rate_over_qtar(self):
        scaler = Autoscaler(config(target_qps_per_replica=2.0))
        for i in range(300):  # 5 req/s over the last 60s
            scaler.record_request(940.0 + i * 0.2)
        assert scaler.candidate_target(1000.0) == 3  # ceil(5/2)

    def test_candidate_clamped_to_bounds(self):
        scaler = Autoscaler(config(max_replicas=4))
        for i in range(600):
            scaler.record_request(999.0)
        assert scaler.candidate_target(1000.0) == 4

    def test_rate_window_expires_old_arrivals(self):
        scaler = Autoscaler(config())
        scaler.record_request(0.0)
        assert scaler.request_rate(1000.0) == 0.0


class TestWarmUpRate:
    """During warm-up (now < qps_window) the divisor is the elapsed
    time — dividing by the full window underestimated R_t and delayed
    the first upscale."""

    def test_rate_normalised_by_elapsed_time(self):
        scaler = Autoscaler(config(qps_window=60.0))
        # 5 req/s for the first 10 simulated seconds.
        for i in range(50):
            scaler.record_request(i * 0.2)
        assert scaler.request_rate(10.0) == 5.0  # not 50/60

    def test_rate_zero_at_time_zero(self):
        scaler = Autoscaler(config())
        scaler.record_request(0.0)
        assert scaler.request_rate(0.0) == 0.0

    def test_full_window_unchanged_after_warmup(self):
        scaler = Autoscaler(config(qps_window=60.0))
        for i in range(300):  # 5 req/s over [940, 1000)
            scaler.record_request(940.0 + i * 0.2)
        assert scaler.request_rate(1000.0) == 5.0

    def test_warmup_trajectory_pinned(self):
        """The candidate tracks the true rate from the first seconds on:
        a steady 4 req/s feed proposes 4 replicas at t=10 as at t=120."""
        scaler = Autoscaler(config(target_qps_per_replica=1.0, qps_window=60.0))
        trajectory = []
        t = 0.0
        for tick in range(12):
            end = (tick + 1) * 10.0
            while t < end:
                scaler.record_request(t)
                t += 0.25
            trajectory.append(scaler.candidate_target(end))
        assert trajectory == [4] * 12


class TestHoldTimes:
    def test_upscale_only_after_sustained_load(self):
        scaler = Autoscaler(config(), initial_target=1)
        # High load at t=0: candidate jumps but target holds.
        feed_rate(scaler, 5.0, 0.0, 60.0)
        assert scaler.evaluate(60.0) == 1
        # Still high 100s later (short of the 300s delay).
        feed_rate(scaler, 5.0, 60.0, 160.0)
        assert scaler.evaluate(160.0) == 1
        # Past the upscale delay: target moves.
        feed_rate(scaler, 5.0, 160.0, 400.0)
        assert scaler.evaluate(400.0) == 5

    def test_downscale_slower_than_upscale(self):
        scaler = Autoscaler(config(), initial_target=5)
        # Low load: candidate = 1, but downscale needs 600 s.
        assert scaler.evaluate(0.0) == 5
        assert scaler.evaluate(400.0) == 5
        assert scaler.evaluate(700.0) == 1

    def test_blip_does_not_move_target(self):
        scaler = Autoscaler(config(), initial_target=1)
        feed_rate(scaler, 5.0, 0.0, 60.0)
        scaler.evaluate(60.0)
        # Load vanishes before the hold expires: candidate back to <= 1.
        assert scaler.evaluate(200.0) == 1
        assert scaler.evaluate(400.0) == 1


class TestFixedTarget:
    def test_fixed_target_ignores_load(self):
        scaler = Autoscaler(config(fixed_target=4))
        feed_rate(scaler, 50.0, 0.0, 60.0)
        assert scaler.evaluate(60.0) == 4
        assert scaler.n_tar == 4

    def test_fixed_target_clamped(self):
        scaler = Autoscaler(config(fixed_target=99, max_replicas=10))
        assert scaler.evaluate(0.0) == 10


class TestSloMode:
    def slo_config(self, **kwargs):
        defaults = dict(
            autoscale_mode="slo",
            ttft_slo=2.0,
            tpot_slo=0.2,
            slo_violation_threshold=0.1,
            slo_window=120.0,
        )
        defaults.update(kwargs)
        return config(**defaults)

    def test_violation_rate_counts_both_signals(self):
        scaler = Autoscaler(self.slo_config())
        scaler.record_ttft(10.0, 1.0)   # ok
        scaler.record_ttft(11.0, 5.0)   # violated
        scaler.record_tpot(12.0, 0.1)   # ok
        scaler.record_tpot(13.0, 0.5)   # violated
        assert scaler.slo_violation_rate(20.0) == 0.5

    def test_violation_window_expires(self):
        scaler = Autoscaler(self.slo_config(slo_window=100.0))
        scaler.record_ttft(0.0, 10.0)
        assert scaler.slo_violation_rate(50.0) == 1.0
        assert scaler.slo_violation_rate(200.0) == 0.0

    def test_candidate_bumped_on_violations(self):
        scaler = Autoscaler(self.slo_config(), initial_target=4)
        # No request-rate pressure, but every sample violates TTFT.
        for i in range(10):
            scaler.record_ttft(float(i), 100.0)
        # violation rate 1.0 -> bump = ceil(1.0 * 4) = 4 above n_tar.
        assert scaler.candidate_target(10.0) == 8

    def test_no_bump_below_threshold(self):
        scaler = Autoscaler(self.slo_config(slo_violation_threshold=0.5),
                            initial_target=4)
        scaler.record_ttft(0.0, 100.0)
        for i in range(1, 10):
            scaler.record_ttft(float(i), 0.1)
        assert scaler.candidate_target(10.0) == 1  # qps candidate only

    def test_qps_mode_ignores_slo_samples(self):
        scaler = Autoscaler(config(ttft_slo=2.0), initial_target=4)
        for i in range(10):
            scaler.record_ttft(float(i), 100.0)
        assert scaler.candidate_target(10.0) == 1

    def test_samples_without_slo_configured_are_dropped(self):
        scaler = Autoscaler(config())
        scaler.record_ttft(0.0, 100.0)
        scaler.record_tpot(0.0, 100.0)
        assert scaler.slo_violation_rate(1.0) == 0.0

    def test_evaluate_moves_target_after_hold(self):
        scaler = Autoscaler(
            self.slo_config(upscale_delay=300.0), initial_target=2
        )
        for t in range(0, 700, 10):
            scaler.record_ttft(float(t), 100.0)
            scaler.evaluate(float(t))
        assert scaler.n_tar > 2


class TestInitialTarget:
    def test_initial_target_respected(self):
        assert Autoscaler(config(), initial_target=3).n_tar == 3

    def test_initial_target_clamped(self):
        assert Autoscaler(config(max_replicas=2), initial_target=5).n_tar == 2
