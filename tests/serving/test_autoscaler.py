"""Unit tests for the QPS-window autoscaler (§4)."""


from repro.serving import Autoscaler, ReplicaPolicyConfig


def config(**kwargs):
    defaults = dict(
        target_qps_per_replica=1.0,
        qps_window=60.0,
        upscale_delay=300.0,
        downscale_delay=600.0,
        min_replicas=1,
        max_replicas=10,
    )
    defaults.update(kwargs)
    return ReplicaPolicyConfig(**defaults)


def feed_rate(scaler, rate, start, end, step=1.0):
    """Feed a constant request rate into the window."""
    t = start
    while t < end:
        count = rate * step
        whole = int(count)
        for i in range(whole):
            scaler.record_request(t + i * step / max(whole, 1))
        t += step


class TestCandidate:
    def test_candidate_is_ceil_rate_over_qtar(self):
        scaler = Autoscaler(config(target_qps_per_replica=2.0))
        for i in range(300):  # 5 req/s over the last 60s
            scaler.record_request(940.0 + i * 0.2)
        assert scaler.candidate_target(1000.0) == 3  # ceil(5/2)

    def test_candidate_clamped_to_bounds(self):
        scaler = Autoscaler(config(max_replicas=4))
        for i in range(600):
            scaler.record_request(999.0)
        assert scaler.candidate_target(1000.0) == 4

    def test_rate_window_expires_old_arrivals(self):
        scaler = Autoscaler(config())
        scaler.record_request(0.0)
        assert scaler.request_rate(1000.0) == 0.0


class TestHoldTimes:
    def test_upscale_only_after_sustained_load(self):
        scaler = Autoscaler(config(), initial_target=1)
        # High load at t=0: candidate jumps but target holds.
        feed_rate(scaler, 5.0, 0.0, 60.0)
        assert scaler.evaluate(60.0) == 1
        # Still high 100s later (short of the 300s delay).
        feed_rate(scaler, 5.0, 60.0, 160.0)
        assert scaler.evaluate(160.0) == 1
        # Past the upscale delay: target moves.
        feed_rate(scaler, 5.0, 160.0, 400.0)
        assert scaler.evaluate(400.0) == 5

    def test_downscale_slower_than_upscale(self):
        scaler = Autoscaler(config(), initial_target=5)
        # Low load: candidate = 1, but downscale needs 600 s.
        assert scaler.evaluate(0.0) == 5
        assert scaler.evaluate(400.0) == 5
        assert scaler.evaluate(700.0) == 1

    def test_blip_does_not_move_target(self):
        scaler = Autoscaler(config(), initial_target=1)
        feed_rate(scaler, 5.0, 0.0, 60.0)
        scaler.evaluate(60.0)
        # Load vanishes before the hold expires: candidate back to <= 1.
        assert scaler.evaluate(200.0) == 1
        assert scaler.evaluate(400.0) == 1


class TestFixedTarget:
    def test_fixed_target_ignores_load(self):
        scaler = Autoscaler(config(fixed_target=4))
        feed_rate(scaler, 50.0, 0.0, 60.0)
        assert scaler.evaluate(60.0) == 4
        assert scaler.n_tar == 4

    def test_fixed_target_clamped(self):
        scaler = Autoscaler(config(fixed_target=99, max_replicas=10))
        assert scaler.evaluate(0.0) == 10


class TestInitialTarget:
    def test_initial_target_respected(self):
        assert Autoscaler(config(), initial_target=3).n_tar == 3

    def test_initial_target_clamped(self):
        assert Autoscaler(config(max_replicas=2), initial_target=5).n_tar == 2
