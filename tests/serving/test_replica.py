"""Unit tests for replica lifecycle, including SpotServe-style
adaptive parallelism."""

import pytest

from repro.cloud import InstanceState, default_catalog
from repro.cloud.instance import Instance
from repro.serving import ModelProfile, Replica, ReplicaState
from repro.sim import SimulationEngine
from repro.workloads import Request

ZONE = "aws:us-west-2:us-west-2a"


def make_replica(engine, workers=1, adaptive=False):
    profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.0,
                           decode_per_token=0.0, max_concurrency=4)
    replica = Replica(
        engine, profile, zone_id=ZONE, spot=True,
        adaptive_parallelism=adaptive, migration_pause=30.0,
    )
    instances = []
    for _ in range(workers):
        instance = Instance(
            zone_id=ZONE,
            instance_type=default_catalog().get("g4dn.12xlarge"),
            spot=True,
            launched_at=0.0,
        )
        replica.attach_worker(instance)
        instances.append(instance)
    return replica, instances


def ready_up(replica, instances, engine):
    for instance in instances:
        instance.transition(InstanceState.INITIALIZING, engine.now)
        instance.transition(InstanceState.READY, engine.now)
        replica.worker_ready(instance)


class TestSingleWorker:
    def test_ready_when_worker_ready(self):
        engine = SimulationEngine()
        replica, instances = make_replica(engine)
        assert not replica.is_ready
        ready_up(replica, instances, engine)
        assert replica.is_ready
        assert replica.state is ReplicaState.READY

    def test_worker_lost_kills_replica(self):
        engine = SimulationEngine()
        replica, instances = make_replica(engine)
        ready_up(replica, instances, engine)
        replica.worker_lost(instances[0])
        assert replica.state is ReplicaState.DEAD

    def test_death_aborts_inflight_requests(self):
        engine = SimulationEngine()
        replica, instances = make_replica(engine)
        ready_up(replica, instances, engine)
        aborted = []
        replica.handle(Request(0, 0.0, 10, 10), lambda r: None,
                       lambda r: aborted.append(r.request_id))
        replica.worker_lost(instances[0])
        assert aborted == [0]

    def test_requests_rejected_when_not_ready(self):
        engine = SimulationEngine()
        replica, _ = make_replica(engine)
        aborted = []
        replica.handle(Request(0, 0.0, 10, 10), lambda r: None,
                       lambda r: aborted.append(r.request_id))
        assert aborted == [0]

    def test_region_id(self):
        engine = SimulationEngine()
        replica, _ = make_replica(engine)
        assert replica.region_id == "aws:us-west-2"

    def test_worker_zone_mismatch_rejected(self):
        engine = SimulationEngine()
        replica, _ = make_replica(engine)
        stray = Instance(
            zone_id="aws:us-east-1:us-east-1a",
            instance_type=default_catalog().get("g4dn.12xlarge"),
            spot=True,
            launched_at=0.0,
        )
        with pytest.raises(ValueError):
            replica.attach_worker(stray)


class TestMultiWorker:
    def test_ready_requires_all_workers(self):
        engine = SimulationEngine()
        replica, instances = make_replica(engine, workers=2)
        instances[0].transition(InstanceState.INITIALIZING, 0.0)
        instances[0].transition(InstanceState.READY, 0.0)
        became = replica.worker_ready(instances[0])
        assert became is False
        assert replica.state is ReplicaState.INITIALIZING
        instances[1].transition(InstanceState.INITIALIZING, 0.0)
        instances[1].transition(InstanceState.READY, 0.0)
        became = replica.worker_ready(instances[1])
        assert became is True
        assert replica.is_ready

    def test_partial_loss_without_adaptive_kills(self):
        engine = SimulationEngine()
        replica, instances = make_replica(engine, workers=2, adaptive=False)
        ready_up(replica, instances, engine)
        replica.worker_lost(instances[0])
        assert replica.state is ReplicaState.DEAD


class TestAdaptiveParallelism:
    """The SpotServe behaviour: re-parallelise over surviving workers."""

    def test_partial_loss_triggers_migration_then_recovers(self):
        engine = SimulationEngine()
        replica, instances = make_replica(engine, workers=2, adaptive=True)
        ready_up(replica, instances, engine)
        instances[0].transition(InstanceState.PREEMPTED, 0.0)
        replica.worker_lost(instances[0])
        assert replica.state is ReplicaState.MIGRATING
        engine.run_until(31.0)
        assert replica.state is ReplicaState.READY

    def test_degraded_throughput_after_loss(self):
        engine = SimulationEngine()
        replica, instances = make_replica(engine, workers=2, adaptive=True)
        ready_up(replica, instances, engine)
        instances[0].transition(InstanceState.PREEMPTED, 0.0)
        replica.worker_lost(instances[0])
        # 2 workers -> 1 survivor: 2x slowdown.
        assert replica.server.slowdown == pytest.approx(2.0)

    def test_requests_survive_migration(self):
        engine = SimulationEngine()
        replica, instances = make_replica(engine, workers=2, adaptive=True)
        ready_up(replica, instances, engine)
        done = []
        instances[0].transition(InstanceState.PREEMPTED, 0.0)
        replica.worker_lost(instances[0])
        replica.handle(Request(0, 0.0, 10, 10), lambda r: done.append(r.request_id),
                       lambda r: None)
        engine.run()
        assert done == [0]

    def test_losing_last_worker_kills_even_adaptive(self):
        engine = SimulationEngine()
        replica, instances = make_replica(engine, workers=1, adaptive=True)
        ready_up(replica, instances, engine)
        replica.worker_lost(instances[0])
        assert replica.state is ReplicaState.DEAD

    def test_loss_before_ready_kills(self):
        engine = SimulationEngine()
        replica, instances = make_replica(engine, workers=2, adaptive=True)
        replica.worker_lost(instances[0])
        assert replica.state is ReplicaState.DEAD

    def test_kill_is_idempotent(self):
        engine = SimulationEngine()
        replica, instances = make_replica(engine)
        replica.kill()
        replica.kill()
        assert replica.state is ReplicaState.DEAD
