"""Tests for time-to-first-token tracking (§3.1 footnote, §6)."""

import numpy as np
import pytest

from repro.cloud import CloudConfig, SimCloud, SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    InferenceServer,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceClient,
    ServiceController,
    ServiceSpec,
)
from repro.sim import SimulationEngine
from repro.workloads import Request, Workload

ZONES = ["aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b"]


class TestServerFirstToken:
    def make(self, concurrency=1):
        engine = SimulationEngine()
        profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.1,
                               decode_per_token=0.5, max_concurrency=concurrency)
        return engine, InferenceServer(engine, profile)

    def test_first_token_before_completion(self):
        engine, server = self.make()
        events = []
        server.submit(
            Request(0, 0.0, input_tokens=10, output_tokens=10),
            on_complete=lambda r: events.append(("done", engine.now)),
            on_abort=lambda r: None,
            on_first_token=lambda r: events.append(("ttft", engine.now)),
        )
        engine.run()
        assert events[0][0] == "ttft"
        # TTFT = overhead 1.0 + prefill 10 * 0.1 = 2.0.
        assert events[0][1] == pytest.approx(2.0)
        assert events[1][0] == "done"
        assert events[1][1] > events[0][1]

    def test_queueing_delays_first_token(self):
        engine, server = self.make(concurrency=1)
        ttfts = {}
        for i in range(2):
            server.submit(
                Request(i, 0.0, 10, 10),
                on_complete=lambda r: None,
                on_abort=lambda r: None,
                on_first_token=lambda r: ttfts.__setitem__(r.request_id, engine.now),
            )
        engine.run()
        assert ttfts[1] > ttfts[0]  # second request queued first

    def test_abort_suppresses_pending_first_token(self):
        engine, server = self.make()
        fired = []
        server.submit(
            Request(0, 0.0, 10, 10),
            on_complete=lambda r: None,
            on_abort=lambda r: None,
            on_first_token=lambda r: fired.append(r.request_id),
        )
        server.abort_all()
        engine.run()
        assert fired == []


class TestClientTtft:
    def build(self):
        engine = SimulationEngine()
        trace = SpotTrace("ttft", ZONES, 60.0, np.full((2, 60), 2))
        cloud = SimCloud(
            engine,
            trace,
            config=CloudConfig(provision_delay_mean=30.0, setup_delay_mean=30.0,
                               delay_jitter=0.0),
        )
        spec = ServiceSpec(
            replica_policy=ReplicaPolicyConfig(fixed_target=1, num_overprovision=0),
            resources=ResourceSpec(
                accelerator="V100",
                any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
            ),
            request_timeout=60.0,
        )
        policy = spothedge(ZONES, num_overprovision=0)
        profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.01,
                               decode_per_token=0.1, max_concurrency=8)
        controller = ServiceController(engine, cloud, spec, policy, profile)
        return engine, controller

    def test_ttft_recorded_and_below_latency(self):
        engine, controller = self.build()
        workload = Workload(
            "w", [Request(i, 200.0 + 5 * i, 20, 40) for i in range(10)]
        )
        client = ServiceClient(controller, workload)
        controller.start()
        client.start()
        engine.run_until(600.0)
        stats = client.stats()
        assert stats.completed == 10
        assert stats.ttft is not None
        assert stats.ttft.count == 10
        # TTFT strictly below end-to-end latency (decode dominates).
        assert stats.ttft.p50 < stats.latency.p50

    def test_ttft_includes_wan_rtt(self):
        engine, controller = self.build()
        workload = Workload("w", [Request(0, 200.0, 20, 40)])
        client = ServiceClient(controller, workload, client_region="aws:eu-central-1")
        controller.start()
        client.start()
        engine.run_until(400.0)
        stats = client.stats()
        # overhead 1.0 + prefill 0.2 + EU<->us-west-2 RTT 0.14.
        assert stats.ttft.p50 == pytest.approx(1.2 + 0.14, abs=0.05)

    def test_ttft_empty_when_nothing_served(self):
        engine, controller = self.build()
        client = ServiceClient(controller, Workload("w", []))
        client.start()
        engine.run_until(10.0)
        ttft = client.stats().ttft
        assert not ttft
        assert ttft.count == 0
