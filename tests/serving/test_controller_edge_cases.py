"""Edge-case tests for the service controller: scale-down draining,
status snapshots, cooldowns, the MArk worldview, and replica bounds."""

import numpy as np

from repro.baselines import AWSSpotPolicy
from repro.cloud import CloudConfig, SimCloud, SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceController,
    ServiceSpec,
)
from repro.sim import SimulationEngine
from repro.workloads import Request

ZONES = [
    "aws:us-west-2:us-west-2a",
    "aws:us-west-2:us-west-2b",
    "aws:us-west-2:us-west-2c",
]


def build(capacity_rows, *, policy=None, fixed_target=2, overprovision=0,
          service_seconds=30.0, max_replicas=64):
    engine = SimulationEngine()
    trace = SpotTrace("edge", ZONES, 60.0, np.asarray(capacity_rows))
    cloud = SimCloud(
        engine,
        trace,
        config=CloudConfig(provision_delay_mean=30.0, setup_delay_mean=30.0,
                           delay_jitter=0.0),
    )
    spec = ServiceSpec(
        replica_policy=ReplicaPolicyConfig(
            fixed_target=fixed_target,
            num_overprovision=overprovision,
            max_replicas=max_replicas,
        ),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=120.0,
    )
    policy = policy or spothedge(ZONES, num_overprovision=overprovision)
    profile = ModelProfile("m", overhead=service_seconds, prefill_per_token=0.0,
                           decode_per_token=0.0, max_concurrency=8)
    controller = ServiceController(engine, cloud, spec, policy, profile)
    return engine, cloud, controller


def full(steps=120, cap=8):
    return [[cap] * steps] * 3


class TestScaleDownDraining:
    def test_busy_surplus_replica_drains_before_termination(self):
        engine, cloud, controller = build(full(), overprovision=0)
        controller.start()
        engine.run_until(120.0)
        ready = controller.ready_replicas()
        assert len(ready) == 2
        # Put a long request on one replica, then force a scale-down by
        # dropping the target.
        victim = ready[0]
        victim.handle(Request(0, engine.now, 10, 10), lambda r: None, lambda r: None)
        controller.autoscaler.config = ReplicaPolicyConfig(
            fixed_target=1, num_overprovision=0
        )
        engine.run_until(140.0)
        # The surplus replica drains (still alive, excluded from routing)
        # rather than aborting the in-flight request.
        draining = [r for r in controller.replicas if r.draining]
        assert len(draining) == 1
        assert draining[0].ongoing_requests == 1
        assert draining[0] not in controller.ready_replicas()
        # Once the request finishes (30 s service), the replica is reaped.
        engine.run_until(250.0)
        assert all(not r.draining for r in controller.replicas)
        assert len(controller.replicas) == 1

    def test_idle_surplus_terminated_immediately(self):
        engine, cloud, controller = build(full(), overprovision=1)
        controller.start()
        engine.run_until(120.0)
        assert len(controller.ready_replicas()) == 3
        controller.autoscaler.config = ReplicaPolicyConfig(
            fixed_target=1, num_overprovision=0
        )
        controller.policy.num_overprovision = 0
        engine.run_until(140.0)
        assert len(controller.replicas) == 1


class TestStatusSnapshot:
    def test_status_rows(self):
        engine, cloud, controller = build(full(), overprovision=1)
        controller.start()
        engine.run_until(120.0)
        rows = controller.status()
        assert len(rows) == 3
        for row in rows:
            assert row["market"] == "spot"
            assert row["state"] == "ready"
            assert row["zone"] in ZONES
            assert row["ongoing_requests"] == 0

    def test_status_marks_draining(self):
        engine, cloud, controller = build(full(), overprovision=0)
        controller.start()
        engine.run_until(120.0)
        replica = controller.ready_replicas()[0]
        replica.handle(Request(0, engine.now, 10, 10), lambda r: None, lambda r: None)
        replica.draining = True
        rows = {r["replica"]: r for r in controller.status()}
        assert "draining" in rows[replica.id]["state"]


class TestZoneCooldown:
    def test_failed_zone_excluded_until_cooldown(self):
        # Zone a has zero capacity: the first launch attempt fails and
        # the zone cools down; the fleet lands in zones b/c.
        rows = [[0] * 120, [8] * 120, [8] * 120]
        engine, cloud, controller = build(rows, fixed_target=2)
        controller.start()
        engine.run_until(300.0)
        obs = controller.observe()
        assert "aws:us-west-2:us-west-2a" not in obs.spot_by_zone
        assert obs.spot_ready == 2

    def test_cooldown_expires(self):
        engine, cloud, controller = build(full(), fixed_target=1)
        controller._zone_cooldown["aws:us-west-2:us-west-2a"] = 100.0
        controller.start()
        engine.run_until(50.0)
        assert "aws:us-west-2:us-west-2a" in controller._cooling_zones()
        engine.run_until(150.0)
        assert controller._cooling_zones() == frozenset()


class TestPolicyWorldview:
    def test_mark_style_policy_sees_only_ready(self):
        """With count_provisioning_spot=False the policy's per-zone view
        hides in-flight launches (the Fig. 12 blindness)."""
        policy = AWSSpotPolicy(ZONES)
        engine, cloud, controller = build(full(), policy=policy, fixed_target=3)
        controller.start()
        engine.run_until(15.0)  # replicas provisioning, none ready
        obs = controller.observe()
        mix = policy.target_mix(obs)
        view = controller._policy_view(obs, mix)
        assert view.spot_by_zone == {}
        assert view.spot_launched == 0

    def test_spothedge_sees_everything(self):
        engine, cloud, controller = build(full(), fixed_target=3)
        controller.start()
        engine.run_until(15.0)
        obs = controller.observe()
        mix = controller.policy.target_mix(obs)
        view = controller._policy_view(obs, mix)
        assert view is obs  # no filtering for launch-counting policies


class TestReplicaBounds:
    def test_max_replicas_caps_autoscaled_target(self):
        engine, cloud, controller = build(
            full(cap=16), fixed_target=50, max_replicas=3
        )
        controller.start()
        engine.run_until(300.0)
        # fixed_target is clamped by max_replicas in the autoscaler.
        assert controller.autoscaler.n_tar == 3
        assert len(controller.ready_replicas()) <= 3

    def test_overrequest_cap_bounds_mark_fleet(self):
        policy = AWSSpotPolicy(ZONES)
        # Zero capacity everywhere: MArk-style policies would launch
        # forever; the controller's valve caps alive replicas.
        rows = [[0] * 120] * 3
        engine, cloud, controller = build(rows, policy=policy, fixed_target=4)
        controller.start()
        engine.run_until(600.0)
        alive = [r for r in controller.replicas]
        assert len(alive) <= 4 * 4  # _MAX_OVERREQUEST_FACTOR * target
