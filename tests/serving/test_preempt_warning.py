"""Tests for best-effort preemption-warning handling (§4, §2.3).

With a warning grace period configured on the cloud, the provider
issues termination notices ahead of each capacity drop.  The controller
reacts by launching the replacement immediately while the doomed
replica keeps serving until the actual reclaim — recovery starts up to
the warning period earlier.  §2.3's limit also holds: warnings shorter
than the cold start cannot fully hide the gap.
"""

import numpy as np

from repro.cloud import CloudConfig, SimCloud, SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceController,
    ServiceSpec,
)
from repro.sim import SimulationEngine
from repro.workloads import Request

ZONES = ["aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b"]


def build(capacity_rows, warning):
    engine = SimulationEngine()
    trace = SpotTrace("warn", ZONES, 60.0, np.asarray(capacity_rows))
    cloud = SimCloud(
        engine,
        trace,
        config=CloudConfig(
            provision_delay_mean=60.0,
            setup_delay_mean=120.0,
            delay_jitter=0.0,
            preempt_warning=warning,
        ),
    )
    spec = ServiceSpec(
        replica_policy=ReplicaPolicyConfig(fixed_target=1, num_overprovision=0),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
    )
    policy = spothedge(ZONES, num_overprovision=0)
    profile = ModelProfile("m", overhead=5.0, prefill_per_token=0.0,
                           decode_per_token=0.0, max_concurrency=4)
    controller = ServiceController(engine, cloud, spec, policy, profile)
    return engine, cloud, controller


# Zone A capacity drops at t=600 (step 10); zone B always available.
# With a 120 s warning, the termination notice arrives at t=480.
ROWS = [[1] * 10 + [0] * 50, [1] * 60]


class TestWarningHandling:
    def test_warned_replica_keeps_serving_until_reclaim(self):
        engine, cloud, controller = build(ROWS, warning=120.0)
        controller.start()
        engine.run_until(470.0)
        assert len(controller.ready_replicas()) == 1
        # Warning fires at t=480; the replica stays routable until the
        # actual reclaim at t=600 (no capacity thrown away).
        engine.run_until(550.0)
        doomed = [r for r in controller.replicas if r.doomed]
        assert len(doomed) == 1
        assert doomed[0] in controller.ready_replicas()
        engine.run_until(610.0)
        assert doomed[0] not in controller.ready_replicas()

    def test_replacement_launches_during_grace(self):
        engine, cloud, controller = build(ROWS, warning=120.0)
        controller.start()
        engine.run_until(500.0)
        # Right after the t=480 warning a replacement is launching in
        # the healthy zone while the doomed replica still serves.
        launching = [
            r
            for r in controller.replicas
            if r.spot and not r.doomed and r.zone_id == ZONES[1]
        ]
        assert launching

    def test_warning_shortens_recovery_gap(self):
        def downtime(warning):
            engine, cloud, controller = build(ROWS, warning=warning)
            controller.start()
            engine.run_until(1200.0)
            series = controller.ready_total_series
            # Time with zero routable replicas between the drop and
            # full recovery.
            return 1.0 - series.fraction_at_least(1, 550.0, 1200.0)

        with_warning = downtime(120.0)
        without_warning = downtime(0.0)
        assert with_warning < without_warning

    def test_warning_cannot_hide_cold_start(self):
        """§2.3: 183 s cold start > 120 s warning -> a gap remains."""
        engine, cloud, controller = build(ROWS, warning=120.0)
        controller.start()
        engine.run_until(1200.0)
        gap = 1.0 - controller.ready_total_series.fraction_at_least(
            1, 550.0, 1200.0
        )
        assert gap > 0.0

    def test_in_flight_request_completes_during_grace(self):
        engine, cloud, controller = build(ROWS, warning=120.0)
        controller.start()
        engine.run_until(550.0)
        replica = controller.ready_replicas()[0]
        done = []
        engine.call_at(560.0, lambda: replica.handle(
            Request(0, 560.0, 10, 10), lambda r: done.append(r.request_id),
            lambda r: None,
        ))
        engine.run_until(640.0)
        # 5 s of compute finished inside the 120 s grace window.
        assert done == [0]
