"""Unit tests for the Fig. 5 search-space expansion analysis."""

import numpy as np
import pytest

from repro.analysis import availability_by_search_space
from repro.cloud import SpotTrace, aws3, gcp1


def checkerboard_trace():
    """Two anti-correlated zones in different regions: each 50% available
    alone, 100% pooled."""
    capacity = np.array([[1, 0] * 50, [0, 1] * 50])
    return SpotTrace("cb", ["aws:r1:r1a", "aws:r2:r2a"], 60.0, capacity)


class TestSearchSpaceCurve:
    def test_pooling_complementary_zones_reaches_full(self):
        curve = availability_by_search_space(checkerboard_trace())
        assert curve.availability[0] == pytest.approx(0.5)
        assert curve.availability[-1] == pytest.approx(1.0)

    def test_zone_counts_increment(self):
        curve = availability_by_search_space(aws3())
        assert curve.zone_counts == list(range(1, 10))

    def test_labels_track_regions(self):
        curve = availability_by_search_space(checkerboard_trace())
        assert curve.labels[0].endswith("1 region")
        assert curve.labels[-1].endswith("2 regions")

    def test_aws3_availability_grows_to_near_one(self):
        """Fig. 5b: 68.2% -> 99.2% for V100 as regions are added."""
        curve = availability_by_search_space(aws3())
        assert curve.availability[-1] >= 0.97
        assert curve.availability[-1] > curve.availability[0]

    def test_gcp1_availability_grows(self):
        """Fig. 5a: 29.9% -> 95.8% for A100."""
        curve = availability_by_search_space(gcp1())
        assert curve.availability[0] < 0.8
        assert curve.availability[-1] >= 0.93

    def test_multi_instance_threshold(self):
        # Requiring 4 instances is harder than requiring 1.
        loose = availability_by_search_space(gcp1(), threshold=1)
        strict = availability_by_search_space(gcp1(), threshold=4)
        assert strict.availability[-1] <= loose.availability[-1]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            availability_by_search_space(gcp1(), threshold=0)

    def test_monotone_in_expectation(self):
        """Adding zones can never reduce pooled availability."""
        for trace in (aws3(), gcp1()):
            curve = availability_by_search_space(trace)
            diffs = np.diff(curve.availability)
            assert (diffs >= -1e-12).all()
