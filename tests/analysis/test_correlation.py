"""Unit tests for the Fig. 3 correlation analysis."""

import numpy as np
import pytest

from repro.analysis import preemption_correlation
from repro.cloud import HOUR, WEEK, SpotTrace, TraceZoneSpec, make_correlated_trace


def synthetic_correlated_trace():
    """Two regions x two zones with strong intra-region shocks."""
    specs = [
        TraceZoneSpec("aws:r1:r1a", 8 * HOUR, 2 * HOUR, 4),
        TraceZoneSpec("aws:r1:r1b", 8 * HOUR, 2 * HOUR, 4),
        TraceZoneSpec("aws:r2:r2a", 8 * HOUR, 2 * HOUR, 4),
        TraceZoneSpec("aws:r2:r2b", 8 * HOUR, 2 * HOUR, 4),
    ]
    return make_correlated_trace(
        "corr",
        specs,
        duration=4 * WEEK,
        region_shock_rate=1 / (6 * HOUR),
        region_shock_mean_duration=HOUR,
        region_shock_affect_prob=0.95,
        seed=13,
    )


class TestCorrelationMatrix:
    def test_matrix_shape_and_diagonal(self):
        matrix = preemption_correlation(synthetic_correlated_trace())
        n = len(matrix.zone_ids)
        assert matrix.correlation.shape == (n, n)
        np.testing.assert_allclose(np.diag(matrix.correlation), 1.0)

    def test_symmetric(self):
        matrix = preemption_correlation(synthetic_correlated_trace())
        np.testing.assert_allclose(matrix.correlation, matrix.correlation.T)

    def test_intra_region_exceeds_inter_region(self):
        """The Fig. 3c structure: correlated within, independent across."""
        matrix = preemption_correlation(synthetic_correlated_trace())
        assert matrix.mean_intra_region() > matrix.mean_inter_region() + 0.1

    def test_intra_region_above_paper_threshold(self):
        """The paper bolds correlations >= 0.3 for same-region pairs."""
        matrix = preemption_correlation(synthetic_correlated_trace())
        assert matrix.mean_intra_region() >= 0.3

    def test_inter_region_near_zero(self):
        matrix = preemption_correlation(synthetic_correlated_trace())
        assert abs(matrix.mean_inter_region()) < 0.15

    def test_pair_lookup(self):
        matrix = preemption_correlation(synthetic_correlated_trace())
        r, p = matrix.pair("aws:r1:r1a", "aws:r1:r1b")
        assert -1.0 <= r <= 1.0
        assert 0.0 <= p <= 1.0

    def test_pair_classification(self):
        matrix = preemption_correlation(synthetic_correlated_trace())
        assert len(matrix.intra_region_pairs) == 2  # (r1a,r1b), (r2a,r2b)
        assert len(matrix.inter_region_pairs) == 4

    def test_constant_zone_has_zero_correlation(self):
        capacity = np.array([[4] * 100, [4, 0] * 50])
        trace = SpotTrace("flat", ["aws:r1:r1a", "aws:r1:r1b"], 60.0, capacity)
        matrix = preemption_correlation(trace, window_steps=1)
        r, p = matrix.pair("aws:r1:r1a", "aws:r1:r1b")
        assert r == 0.0
        assert p == 1.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            preemption_correlation(synthetic_correlated_trace(), window_steps=0)


class TestFollowOnPreemptions:
    """§2.2's follow-on statistics."""

    def test_aws_region_follow_on_in_paper_band(self):
        """Paper: 83-97% of AWS preemptions are followed within 5 min."""
        from repro.analysis import follow_on_preemption_probability
        from repro.cloud import aws2, aws3

        for trace in (aws2(), aws3()):
            probs = follow_on_preemption_probability(
                trace, window=300.0, scope="region", instance_level=True
            )
            values = [v for v in probs.values() if v == v]
            assert values
            assert min(values) >= 0.75, trace.name
            assert max(values) <= 1.0, trace.name

    def test_gcp_zone_follow_on_in_paper_band(self):
        """Paper: 34-95% of same-zone follow-ons within 150 s on GCP."""
        from repro.analysis import follow_on_preemption_probability
        from repro.cloud import gcp1

        probs = follow_on_preemption_probability(
            gcp1(), window=150.0, scope="zone", instance_level=True
        )
        values = [v for v in probs.values() if v == v]
        assert all(0.34 <= v <= 0.95 for v in values)

    def test_episode_level_lower_than_instance_level(self):
        from repro.analysis import follow_on_preemption_probability
        from repro.cloud import aws2

        trace = aws2()
        episode = follow_on_preemption_probability(
            trace, window=300.0, scope="region", instance_level=False
        )
        instance = follow_on_preemption_probability(
            trace, window=300.0, scope="region", instance_level=True
        )
        for zone in trace.zone_ids:
            assert episode[zone] <= instance[zone] + 1e-12

    def test_region_scope_at_least_zone_scope(self):
        """Widening the peer set can only raise the probability."""
        from repro.analysis import follow_on_preemption_probability
        from repro.cloud import aws1

        trace = aws1()
        zone = follow_on_preemption_probability(trace, scope="zone")
        region = follow_on_preemption_probability(trace, scope="region")
        for z in trace.zone_ids:
            assert region[z] >= zone[z] - 1e-12

    def test_no_preemptions_yields_nan(self):
        import math

        import numpy as np

        from repro.analysis import follow_on_preemption_probability
        from repro.cloud import SpotTrace

        flat = SpotTrace("flat", ["aws:r:a"], 60.0, np.full((1, 100), 4))
        probs = follow_on_preemption_probability(flat)
        assert math.isnan(probs["aws:r:a"])

    def test_validation(self):
        import pytest as _pytest

        from repro.analysis import follow_on_preemption_probability
        from repro.cloud import aws1

        with _pytest.raises(ValueError):
            follow_on_preemption_probability(aws1(), window=0.0)
        with _pytest.raises(ValueError):
            follow_on_preemption_probability(aws1(), scope="galaxy")
