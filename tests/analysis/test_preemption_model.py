"""Tests for the §3.1 analytical preemption model."""

import numpy as np
import pytest

from repro.analysis import PreemptionModel, simulate_preemptions

HOUR = 3600.0


def heterogeneous_model():
    # One hot zone, two mild ones.
    return PreemptionModel(
        rates=(1 / (1 * HOUR), 1 / (8 * HOUR), 1 / (10 * HOUR)),
        n_replicas=6,
        horizon=200 * HOUR,
    )


class TestClosedForms:
    def test_static_spread_formula(self):
        model = PreemptionModel(rates=(0.001, 0.003), n_replicas=4, horizon=1000.0)
        assert model.expected_static_spread() == pytest.approx(4 * 1000 * 0.002)

    def test_round_robin_formula(self):
        model = PreemptionModel(rates=(0.001, 0.003), n_replicas=4, horizon=1000.0)
        harmonic = 2 / (1 / 0.001 + 1 / 0.003)
        assert model.expected_round_robin() == pytest.approx(4 * 1000 * harmonic)

    def test_round_robin_never_worse_than_static(self):
        """The paper's AM >= HM argument."""
        model = heterogeneous_model()
        assert model.expected_round_robin() <= model.expected_static_spread()
        assert model.round_robin_advantage() >= 1.0

    def test_equal_rates_make_policies_equal(self):
        model = PreemptionModel(rates=(0.002, 0.002, 0.002), n_replicas=3, horizon=100.0)
        assert model.expected_round_robin() == pytest.approx(
            model.expected_static_spread()
        )
        assert model.round_robin_advantage() == pytest.approx(1.0)

    def test_best_zone_is_lower_bound(self):
        model = heterogeneous_model()
        assert model.expected_best_zone() <= model.expected_round_robin()
        assert model.expected_best_zone() <= model.expected_static_spread()

    def test_ordering_static_rr_best(self):
        """§3.1's full chain: tracking < Round Robin < Static Spread."""
        model = heterogeneous_model()
        assert (
            model.expected_best_zone()
            < model.expected_round_robin()
            < model.expected_static_spread()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PreemptionModel(rates=(), n_replicas=1, horizon=1.0)
        with pytest.raises(ValueError):
            PreemptionModel(rates=(0.0,), n_replicas=1, horizon=1.0)
        with pytest.raises(ValueError):
            PreemptionModel(rates=(0.1,), n_replicas=0, horizon=1.0)
        with pytest.raises(ValueError):
            PreemptionModel(rates=(0.1,), n_replicas=1, horizon=0.0)


class TestMonteCarlo:
    """The closed forms match simulation of the renewal processes."""

    def test_static_spread_matches_simulation(self):
        model = heterogeneous_model()
        rng = np.random.default_rng(1)
        counts = [simulate_preemptions(model, "static", rng=rng) for _ in range(30)]
        assert np.mean(counts) == pytest.approx(
            model.expected_static_spread(), rel=0.15
        )

    def test_round_robin_matches_simulation(self):
        model = heterogeneous_model()
        rng = np.random.default_rng(2)
        counts = [
            simulate_preemptions(model, "round_robin", rng=rng) for _ in range(30)
        ]
        assert np.mean(counts) == pytest.approx(
            model.expected_round_robin(), rel=0.15
        )

    def test_best_zone_matches_simulation(self):
        model = heterogeneous_model()
        rng = np.random.default_rng(3)
        counts = [simulate_preemptions(model, "best", rng=rng) for _ in range(30)]
        assert np.mean(counts) == pytest.approx(model.expected_best_zone(), rel=0.2)

    def test_simulated_ordering(self):
        model = heterogeneous_model()
        rng = np.random.default_rng(4)
        static = np.mean([simulate_preemptions(model, "static", rng=rng) for _ in range(20)])
        rr = np.mean(
            [simulate_preemptions(model, "round_robin", rng=rng) for _ in range(20)]
        )
        best = np.mean([simulate_preemptions(model, "best", rng=rng) for _ in range(20)])
        assert best < rr < static

    def test_unknown_policy_rejected(self):
        model = heterogeneous_model()
        with pytest.raises(ValueError):
            simulate_preemptions(model, "magic", rng=np.random.default_rng(0))
