"""Unit tests for the heterogeneous-accelerator extension (§6)."""

import pytest

from repro.core import AcceleratorTier, HeterogeneousPolicy
from repro.serving.policy import Observation

A100_ZONES = ("aws:us-east-1:us-east-1a", "aws:us-east-1:us-east-1b")
V100_ZONES = ("aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b")


def tiers():
    return [
        AcceleratorTier("A100", A100_ZONES, performance=1.0),
        AcceleratorTier("V100", V100_ZONES, performance=0.5),
    ]


def obs(now=0.0, n_tar=2, spot_ready=0, by_zone=None):
    return Observation(
        now=now,
        n_tar=n_tar,
        spot_launched=0,
        spot_ready=spot_ready,
        od_launched=0,
        od_ready=0,
        spot_by_zone=by_zone or {},
    )


class TestTierSelection:
    def test_prefers_best_tier(self):
        policy = HeterogeneousPolicy(tiers())
        assert policy.select_spot_zone(obs()) in A100_ZONES

    def test_falls_to_lower_tier_when_best_is_down(self):
        policy = HeterogeneousPolicy(tiers(), tier_retry_interval=600.0)
        for zone in A100_ZONES:
            policy.on_spot_launch_failed(zone)
        assert policy.select_spot_zone(obs(now=10.0)) in V100_ZONES

    def test_partial_tier_failure_keeps_best_tier(self):
        policy = HeterogeneousPolicy(tiers())
        policy.on_spot_launch_failed(A100_ZONES[0])
        assert policy.select_spot_zone(obs(now=10.0)) in A100_ZONES

    def test_returns_to_best_tier_after_retry_interval(self):
        policy = HeterogeneousPolicy(tiers(), tier_retry_interval=600.0)
        for zone in A100_ZONES:
            policy.on_spot_launch_failed(zone)
        assert policy.select_spot_zone(obs(now=100.0)) in V100_ZONES
        assert policy.select_spot_zone(obs(now=700.0)) in A100_ZONES

    def test_success_rehabilitates_tier_immediately(self):
        policy = HeterogeneousPolicy(tiers(), tier_retry_interval=600.0)
        for zone in A100_ZONES:
            policy.on_spot_launch_failed(zone)
        policy.on_spot_ready(A100_ZONES[0])
        assert policy.select_spot_zone(obs(now=10.0)) in A100_ZONES

    def test_all_tiers_cooling_still_launches(self):
        policy = HeterogeneousPolicy(tiers(), tier_retry_interval=600.0)
        for zone in A100_ZONES + V100_ZONES:
            policy.on_spot_launch_failed(zone)
        # Both tiers cooling, but exclusion is empty: pick best-first.
        assert policy.select_spot_zone(obs(now=10.0)) is not None

    def test_accelerator_of(self):
        policy = HeterogeneousPolicy(tiers())
        assert policy.accelerator_of(A100_ZONES[0]) == "A100"
        assert policy.accelerator_of(V100_ZONES[1]) == "V100"


class TestMixture:
    def test_dynamic_fallback_still_applies(self):
        policy = HeterogeneousPolicy(tiers(), num_overprovision=2)
        mix = policy.target_mix(obs(n_tar=4, spot_ready=0))
        assert mix.spot_target == 6
        assert mix.od_target == 4

    def test_od_zone_comes_from_best_tier(self):
        policy = HeterogeneousPolicy(tiers())
        assert policy.select_od_zone(obs()) in A100_ZONES


class TestOnDemandTierWalk:
    """Regression: ``select_od_zone`` used to take declaration order
    blindly — it must walk usable tiers best-first and prefer the
    cheapest on-demand zone within the chosen tier."""

    def test_od_skips_cooling_top_tier(self):
        policy = HeterogeneousPolicy(tiers(), tier_retry_interval=600.0)
        for zone in A100_ZONES:
            policy.on_spot_launch_failed(zone)
        assert policy.select_od_zone(obs(now=10.0)) in V100_ZONES

    def test_od_returns_to_top_tier_after_interval(self):
        policy = HeterogeneousPolicy(tiers(), tier_retry_interval=600.0)
        for zone in A100_ZONES:
            policy.on_spot_launch_failed(zone)
        assert policy.select_od_zone(obs(now=100.0)) in V100_ZONES
        assert policy.select_od_zone(obs(now=700.0)) in A100_ZONES

    def test_od_prefers_cheapest_od_zone(self):
        tier = AcceleratorTier(
            "A100",
            A100_ZONES,
            od_zone_costs={A100_ZONES[0]: 3.0, A100_ZONES[1]: 1.0},
        )
        policy = HeterogeneousPolicy([tier])
        assert policy.select_od_zone(obs()) == A100_ZONES[1]

    def test_od_falls_back_to_spot_zone_costs(self):
        tier = AcceleratorTier(
            "A100",
            A100_ZONES,
            zone_costs={A100_ZONES[0]: 2.0, A100_ZONES[1]: 0.5},
        )
        policy = HeterogeneousPolicy([tier])
        assert policy.select_od_zone(obs()) == A100_ZONES[1]

    def test_od_declaration_order_without_costs(self):
        policy = HeterogeneousPolicy(tiers())
        assert policy.select_od_zone(obs()) == A100_ZONES[0]

    def test_od_all_tiers_cooling_walks_best_first(self):
        policy = HeterogeneousPolicy(tiers(), tier_retry_interval=600.0)
        for zone in A100_ZONES + V100_ZONES:
            policy.on_spot_launch_failed(zone)
        assert policy.select_od_zone(obs(now=10.0)) in A100_ZONES

    def test_od_respects_exclusions(self):
        policy = HeterogeneousPolicy(tiers())
        assert policy.select_od_zone(obs(), excluded=set(A100_ZONES)) in V100_ZONES


class TestValidation:
    def test_empty_tiers_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousPolicy([])

    def test_overlapping_zones_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousPolicy(
                [
                    AcceleratorTier("A100", A100_ZONES),
                    AcceleratorTier("V100", A100_ZONES),
                ]
            )

    def test_invalid_tier(self):
        with pytest.raises(ValueError):
            AcceleratorTier("A100", ())
        with pytest.raises(ValueError):
            AcceleratorTier("A100", A100_ZONES, performance=0.0)

    def test_invalid_retry_interval(self):
        with pytest.raises(ValueError):
            HeterogeneousPolicy(tiers(), tier_retry_interval=0.0)
