"""Unit tests for the Omniscient ILP (§3.3, Eq. 1-5)."""

import numpy as np
import pytest

from repro.cloud import SpotTrace
from repro.core import solve_omniscient

Z1, Z2 = "aws:r1:r1a", "aws:r2:r2a"


def trace_with(rows, step=600.0):
    return SpotTrace("ilp", [Z1, Z2], step, np.asarray(rows))


class TestBasicSolutions:
    def test_all_spot_when_capacity_abundant(self):
        trace = trace_with([[4] * 12, [4] * 12])
        result = solve_omniscient(trace, 2, k=3.0, cold_start=0.0, avail_target=1.0)
        assert result.od_launched.sum() == 0
        assert result.availability == 1.0
        # Cost = 2 spot replicas for 12 steps, in replica-steps.
        assert result.cost == pytest.approx(2 * 12)

    def test_availability_floor_exploited_to_save(self):
        """With a 90% floor the optimum drops capacity in the slack steps."""
        trace = trace_with([[4] * 12, [4] * 12])
        result = solve_omniscient(trace, 2, k=3.0, cold_start=0.0, avail_target=0.9)
        # ceil(0.9 * 12) = 11 satisfied steps suffice.
        assert result.cost == pytest.approx(2 * 11)
        assert result.availability >= 11 / 12

    def test_on_demand_fills_spot_gaps(self):
        # Spot vanishes entirely for half the trace.
        rows = [[4] * 6 + [0] * 6, [0] * 12]
        trace = trace_with(rows)
        result = solve_omniscient(trace, 2, k=3.0, cold_start=0.0, avail_target=1.0)
        assert result.availability == 1.0
        assert result.od_launched[6:].min() >= 2

    def test_availability_floor_relaxation_saves_cost(self):
        rows = [[4] * 6 + [0] * 6, [0] * 12]
        trace = trace_with(rows)
        strict = solve_omniscient(trace, 2, k=3.0, cold_start=0.0, avail_target=1.0)
        loose = solve_omniscient(trace, 2, k=3.0, cold_start=0.0, avail_target=0.5)
        assert loose.cost < strict.cost

    def test_capacity_constraint_respected(self):
        rows = [[1] * 12, [1] * 12]
        trace = trace_with(rows)
        result = solve_omniscient(trace, 2, k=3.0, cold_start=0.0, avail_target=1.0)
        assert result.spot_launched.max() <= 1

    def test_cold_start_requires_continuous_launch(self):
        """Eq. 4: ready at t needs launches over (t-d, t]."""
        rows = [[4] * 12, [0] * 12]
        trace = trace_with(rows, step=600.0)
        result = solve_omniscient(
            trace, 2, k=3.0, cold_start=1200.0, avail_target=0.8
        )
        # Nothing can be ready in the first two steps (cold start = 2 steps).
        assert result.spot_ready[:2].sum() == 0
        assert result.od_ready[:2].sum() == 0

    def test_relative_cost_below_one_with_spot(self):
        rows = [[4] * 12, [4] * 12]
        trace = trace_with(rows)
        result = solve_omniscient(trace, 2, k=3.0, cold_start=0.0, avail_target=0.9)
        assert result.cost_relative_to_on_demand(2) < 0.5

    def test_per_step_n_tar(self):
        rows = [[4] * 12, [4] * 12]
        trace = trace_with(rows)
        n_tar = [1] * 6 + [3] * 6
        result = solve_omniscient(trace, n_tar, k=3.0, cold_start=0.0, avail_target=1.0)
        assert (result.ready_total >= np.asarray(n_tar)).all()


class TestResampling:
    def test_resample_is_conservative_min_pool(self):
        # One zero step inside the window zeroes the coarse step.
        rows = [[2, 2, 0, 2, 2, 2], [0] * 6]
        trace = trace_with(rows, step=600.0)
        result = solve_omniscient(
            trace, 1, k=3.0, cold_start=0.0, avail_target=0.0, resample_step=1800.0
        )
        assert result.spot_launched.shape[1] == 2
        assert result.spot_launched[0, 0] == 0  # min(2,2,0) = 0

    def test_finer_resample_rejected(self):
        trace = trace_with([[1] * 6, [1] * 6], step=600.0)
        with pytest.raises(ValueError):
            solve_omniscient(trace, 1, resample_step=60.0)


class TestValidation:
    def test_bad_k(self):
        trace = trace_with([[1] * 6, [1] * 6])
        with pytest.raises(ValueError):
            solve_omniscient(trace, 1, k=0.0)

    def test_bad_avail_target(self):
        trace = trace_with([[1] * 6, [1] * 6])
        with pytest.raises(ValueError):
            solve_omniscient(trace, 1, avail_target=1.5)

    def test_infeasible_without_od_cap_is_satisfiable_via_od(self):
        # Zero spot capacity everywhere: the ILP must still meet the
        # availability floor using on-demand replicas alone.
        trace = trace_with([[0] * 12, [0] * 12])
        result = solve_omniscient(trace, 2, k=3.0, cold_start=0.0, avail_target=1.0)
        assert result.availability == 1.0
        assert result.od_launched.min() >= 2
        assert result.cost_relative_to_on_demand(2) == pytest.approx(1.0)
