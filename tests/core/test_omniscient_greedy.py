"""Tests for the greedy clairvoyant solver (scalable Omniscient)."""

import numpy as np
import pytest

from repro.cloud import SpotTrace, gcp1
from repro.core import solve_omniscient, solve_omniscient_greedy, spothedge
from repro.experiments import ReplayConfig, TraceReplayer

Z1, Z2 = "aws:r1:r1a", "aws:r2:r2a"


def trace_with(rows, step=600.0):
    return SpotTrace("greedy", [Z1, Z2], step, np.asarray(rows))


class TestGreedyBasics:
    def test_all_spot_when_abundant(self):
        trace = trace_with([[4] * 12, [4] * 12])
        result = solve_omniscient_greedy(trace, 2, k=3.0, cold_start=0.0)
        assert result.od_launched.sum() == 0
        assert result.availability == 1.0
        assert result.cost == pytest.approx(2 * 12)

    def test_od_covers_blackouts(self):
        rows = [[4] * 6 + [0] * 6, [0] * 12]
        trace = trace_with(rows)
        result = solve_omniscient_greedy(trace, 2, k=3.0, cold_start=0.0)
        assert result.availability == 1.0
        assert result.od_ready[6:].min() >= 2

    def test_cold_start_blocks_early_readiness(self):
        trace = trace_with([[4] * 12, [0] * 12])
        result = solve_omniscient_greedy(trace, 2, k=3.0, cold_start=1200.0)
        assert result.spot_ready[:2].sum() == 0
        assert result.od_ready[:2].sum() == 0

    def test_prefers_long_runway_zone(self):
        # Zone 1 flaps; zone 2 is stable: the greedy should sit in zone 2.
        rows = [[1, 0] * 6, [1] * 12]
        trace = trace_with(rows)
        result = solve_omniscient_greedy(trace, 1, k=3.0, cold_start=0.0)
        z2_steps = result.spot_launched[1].sum()
        z1_steps = result.spot_launched[0].sum()
        assert z2_steps > z1_steps

    def test_capacity_respected(self):
        rows = [[1] * 12, [1] * 12]
        trace = trace_with(rows)
        result = solve_omniscient_greedy(trace, 4, k=3.0, cold_start=0.0)
        assert result.spot_launched.max() <= 1

    def test_validation(self):
        trace = trace_with([[1] * 6, [1] * 6])
        with pytest.raises(ValueError):
            solve_omniscient_greedy(trace, 0)
        with pytest.raises(ValueError):
            solve_omniscient_greedy(trace, 1, k=0.0)


class TestBoundsSandwich:
    """ILP <= greedy <= any online policy, at comparable availability."""

    def test_greedy_upper_bounds_ilp(self):
        trace = gcp1().window(0, 12 * 3600.0)
        greedy = solve_omniscient_greedy(trace, 2, k=4.0, resample_step=600.0)
        ilp = solve_omniscient(
            trace,
            2,
            k=4.0,
            avail_target=max(greedy.availability - 0.01, 0.0),
            resample_step=600.0,
        )
        assert ilp.cost <= greedy.cost + 1e-9

    def test_greedy_beats_spothedge(self):
        trace = gcp1()
        greedy = solve_omniscient_greedy(trace, 4, k=4.0, resample_step=600.0)
        online = TraceReplayer(trace, ReplayConfig(n_tar=4, k=4.0)).run(
            spothedge(trace.zone_ids)
        )
        assert greedy.cost_relative_to_on_demand(4) < online.relative_cost
        assert greedy.availability >= online.availability - 0.02

    def test_scales_to_two_month_trace(self):
        """The ILP cannot touch 8k steps; the greedy solves in well
        under a second."""
        import time

        from repro.cloud import aws3

        trace = aws3()
        start = time.monotonic()
        result = solve_omniscient_greedy(trace, 4, k=4.0, resample_step=600.0)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0
        assert result.availability > 0.99
        assert result.cost_relative_to_on_demand(4) < 0.6
