"""Unit tests for the placement policies (§3.1, Alg. 1)."""

import pytest

from repro.core import (
    DynamicSpotPlacer,
    EvenSpreadPlacer,
    RoundRobinPlacer,
    make_placer,
)

ZONES = ["z1", "z2", "z3", "z4"]


class TestDynamicPlacer:
    def test_initially_all_zones_active(self):
        placer = DynamicSpotPlacer(ZONES)
        assert placer.active_zones == ZONES
        assert placer.preempting_zones == []

    def test_preemption_moves_zone_to_zp(self):
        placer = DynamicSpotPlacer(ZONES)
        placer.handle_preemption("z2")
        assert "z2" not in placer.active_zones
        assert placer.preempting_zones == ["z2"]

    def test_preempting_zone_avoided(self):
        placer = DynamicSpotPlacer(ZONES)
        placer.handle_preemption("z1")
        # z1 is the first by order but must not be chosen.
        assert placer.select_zone({}) != "z1"

    def test_successful_launch_rehabilitates_zone(self):
        placer = DynamicSpotPlacer(ZONES)
        placer.handle_preemption("z1")
        placer.handle_active("z1")
        assert "z1" in placer.active_zones
        assert placer.preempting_zones == []

    def test_rebalance_when_za_below_two(self):
        """Alg. 1 line 7: when |Z_A| < 2, Z_P flushes back to Z_A."""
        placer = DynamicSpotPlacer(ZONES)
        for zone in ["z1", "z2", "z3"]:
            placer.handle_preemption(zone)
        # Third preemption leaves Z_A = {z4} -> rebalance.
        assert set(placer.active_zones) == set(ZONES)
        assert placer.preempting_zones == []

    def test_launch_failure_counts_like_preemption(self):
        placer = DynamicSpotPlacer(ZONES)
        placer.handle_launch_failure("z3")
        assert "z3" in placer.preempting_zones

    def test_launch_failure_ignored_when_configured(self):
        placer = DynamicSpotPlacer(ZONES, treat_launch_failure_as_preemption=False)
        placer.handle_launch_failure("z3")
        assert placer.preempting_zones == []

    def test_prefers_unused_zone(self):
        """SELECT-NEXT-ZONE: Z_A \\ C first."""
        placer = DynamicSpotPlacer(ZONES)
        assert placer.select_zone({"z1": 1, "z2": 1}) in ("z3", "z4")

    def test_all_zones_used_falls_back_to_min_cost(self):
        costs = {"z1": 3.0, "z2": 1.0, "z3": 2.0, "z4": 4.0}
        placer = DynamicSpotPlacer(ZONES, costs)
        placements = {z: 1 for z in ZONES}
        assert placer.select_zone(placements) == "z2"

    def test_min_cost_among_unused(self):
        costs = {"z1": 1.0, "z2": 2.0, "z3": 0.5, "z4": 4.0}
        placer = DynamicSpotPlacer(ZONES, costs)
        assert placer.select_zone({"z3": 1}) == "z1"

    def test_excluded_zones_skipped(self):
        placer = DynamicSpotPlacer(ZONES)
        zone = placer.select_zone({}, excluded=frozenset(["z1", "z2"]))
        assert zone in ("z3", "z4")

    def test_all_excluded_returns_none(self):
        placer = DynamicSpotPlacer(ZONES)
        assert placer.select_zone({}, excluded=frozenset(ZONES)) is None

    def test_duplicate_zones_rejected(self):
        with pytest.raises(ValueError):
            DynamicSpotPlacer(["z1", "z1"])

    def test_empty_zones_rejected(self):
        with pytest.raises(ValueError):
            DynamicSpotPlacer([])

    def test_missing_cost_rejected(self):
        with pytest.raises(ValueError):
            DynamicSpotPlacer(ZONES, {"z1": 1.0})


class TestEvenSpread:
    def test_quota_assignment(self):
        placer = EvenSpreadPlacer(ZONES)
        placer.set_target(6)
        assert placer.quotas() == {"z1": 2, "z2": 2, "z3": 1, "z4": 1}

    def test_fills_quota_zones_in_order(self):
        placer = EvenSpreadPlacer(ZONES)
        placer.set_target(4)
        placements = {}
        for _ in range(4):
            zone = placer.select_zone(placements)
            placements[zone] = placements.get(zone, 0) + 1
        assert placements == {z: 1 for z in ZONES}

    def test_never_exceeds_quota(self):
        placer = EvenSpreadPlacer(ZONES)
        placer.set_target(2)
        assert placer.select_zone({"z1": 1, "z2": 1}) is None

    def test_static_no_failover_beyond_quota_zones(self):
        """The paper's point: a down quota zone's slots stay unfilled."""
        placer = EvenSpreadPlacer(ZONES)
        placer.set_target(2)  # quota zones z1, z2 only
        # z1 excluded (down); only z2 remains; z3/z4 never used.
        assert placer.select_zone({}, excluded=frozenset(["z1"])) == "z2"
        assert placer.select_zone({"z2": 1}, excluded=frozenset(["z1"])) is None

    def test_ignores_preemption_history(self):
        placer = EvenSpreadPlacer(ZONES)
        placer.set_target(4)
        placer.handle_preemption("z1")
        assert placer.select_zone({}) == "z1"  # no memory

    def test_negative_target_rejected(self):
        placer = EvenSpreadPlacer(ZONES)
        with pytest.raises(ValueError):
            placer.set_target(-1)


class TestRoundRobin:
    def test_cycles_in_order(self):
        placer = RoundRobinPlacer(ZONES)
        picks = [placer.select_zone({}) for _ in range(8)]
        assert picks == ZONES + ZONES

    def test_skips_excluded(self):
        placer = RoundRobinPlacer(ZONES)
        assert placer.select_zone({}, excluded=frozenset(["z1"])) == "z2"

    def test_all_excluded_returns_none(self):
        placer = RoundRobinPlacer(ZONES)
        assert placer.select_zone({}, excluded=frozenset(ZONES)) is None

    def test_no_preemption_memory(self):
        """Round Robin's §3.1 weakness: it keeps returning to
        highly-preempting zones."""
        placer = RoundRobinPlacer(ZONES)
        placer.handle_preemption("z1")
        picks = [placer.select_zone({}) for _ in range(4)]
        assert "z1" in picks


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_placer("dynamic", ZONES), DynamicSpotPlacer)
        assert isinstance(make_placer("even_spread", ZONES), EvenSpreadPlacer)
        assert isinstance(make_placer("round_robin", ZONES), RoundRobinPlacer)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_placer("static", ZONES)
