"""Unit tests for the SpotHedge mixture policy (§3.2)."""

import pytest

from repro.core import (
    MixturePolicy,
    OnDemandOnlyPolicy,
    even_spread_policy,
    round_robin_policy,
    spothedge,
)
from repro.core.placement import DynamicSpotPlacer
from repro.serving.policy import Observation

ZONES = ["z1", "z2", "z3"]


def obs(n_tar=4, spot_launched=0, spot_ready=0, od_launched=0, od_ready=0, by_zone=None):
    return Observation(
        now=0.0,
        n_tar=n_tar,
        spot_launched=spot_launched,
        spot_ready=spot_ready,
        od_launched=od_launched,
        od_ready=od_ready,
        spot_by_zone=by_zone or {},
    )


class TestDynamicFallbackFormula:
    """O(t) = min(N_Tar, N_Tar + N_Extra - S_r)."""

    def test_no_spot_ready_full_fallback(self):
        policy = spothedge(ZONES, num_overprovision=2)
        mix = policy.target_mix(obs(n_tar=4, spot_ready=0))
        assert mix.spot_target == 6
        assert mix.od_target == 4  # capped at N_Tar

    def test_all_spot_ready_no_fallback(self):
        policy = spothedge(ZONES, num_overprovision=2)
        mix = policy.target_mix(obs(n_tar=4, spot_ready=6))
        assert mix.od_target == 0

    def test_partial_spot_partial_fallback(self):
        policy = spothedge(ZONES, num_overprovision=2)
        mix = policy.target_mix(obs(n_tar=4, spot_ready=4))
        assert mix.od_target == 2  # 4 + 2 - 4

    def test_fallback_capped_at_n_tar(self):
        policy = spothedge(ZONES, num_overprovision=3)
        mix = policy.target_mix(obs(n_tar=2, spot_ready=0))
        assert mix.od_target == 2

    def test_overprovision_zero(self):
        policy = spothedge(ZONES, num_overprovision=0)
        mix = policy.target_mix(obs(n_tar=4, spot_ready=4))
        assert mix.spot_target == 4
        assert mix.od_target == 0

    def test_base_ondemand_floor(self):
        policy = spothedge(ZONES, num_overprovision=2, base_ondemand_replicas=1)
        mix = policy.target_mix(obs(n_tar=4, spot_ready=6))
        assert mix.od_target == 1

    def test_counts_provisioning_spot(self):
        """SpotHedge tracks its in-flight launches (unlike MArk/AWSSpot)."""
        policy = spothedge(ZONES)
        assert policy.target_mix(obs()).count_provisioning_spot is True


class TestPlacementWiring:
    def test_feedback_reaches_placer(self):
        policy = spothedge(ZONES)
        policy.on_spot_preempted("z1")
        assert "z1" in policy.placer.preempting_zones
        policy.on_spot_ready("z1")
        assert "z1" in policy.placer.active_zones

    def test_launch_failure_reaches_placer(self):
        policy = spothedge(ZONES)
        policy.on_spot_launch_failed("z2")
        assert "z2" in policy.placer.preempting_zones

    def test_select_spot_zone_delegates(self):
        policy = spothedge(ZONES)
        assert policy.select_spot_zone(obs()) in ZONES

    def test_od_zone_prefers_cheapest(self):
        policy = MixturePolicy(
            DynamicSpotPlacer(ZONES),
            dynamic_ondemand_fallback=True,
            od_zone_costs={"z1": 5.0, "z2": 1.0, "z3": 3.0},
        )
        assert policy.select_od_zone(obs()) == "z2"

    def test_od_zone_respects_exclusion(self):
        policy = spothedge(ZONES)
        assert policy.select_od_zone(obs(), frozenset(ZONES)) is None


class TestNamedPolicies:
    def test_names(self):
        assert spothedge(ZONES).name == "SpotHedge"
        assert even_spread_policy(ZONES).name == "EvenSpread"
        assert round_robin_policy(ZONES).name == "RoundRobin"

    def test_baseline_policies_have_no_fallback(self):
        for factory in (even_spread_policy, round_robin_policy):
            policy = factory(ZONES)
            mix = policy.target_mix(obs(n_tar=4, spot_ready=0))
            assert mix.od_target == 0
            assert mix.spot_target == 4

    def test_ondemand_only(self):
        policy = OnDemandOnlyPolicy(ZONES)
        mix = policy.target_mix(obs(n_tar=3))
        assert mix.spot_target == 0
        assert mix.od_target == 3
        assert policy.select_spot_zone(obs()) is None
        assert policy.select_od_zone(obs()) == "z1"

    def test_validation(self):
        with pytest.raises(ValueError):
            MixturePolicy(DynamicSpotPlacer(ZONES), num_overprovision=-1)
        with pytest.raises(ValueError):
            OnDemandOnlyPolicy([])
