"""Tests for the capacity-weighted fleet policy (zone × type pools)."""

import pytest

from repro.core import DynamicSpotPlacer, FleetMixturePolicy, hetero_spothedge
from repro.core.spothedge import MixturePolicy
from repro.serving.policy import Observation

POOLS = ["z1@small", "z2@big"]
COSTS = {"z1@small": 4.9, "z2@big": 1.2}  # per effective unit: big wins
WEIGHTS = {"z1@small": 1.0, "z2@big": 2.5}


def obs(*, n_tar=4, launched=0, ready=0, od_launched=0, od_ready=0, by_zone=None, now=0.0):
    return Observation(
        now=now,
        n_tar=n_tar,
        spot_launched=launched,
        spot_ready=ready,
        od_launched=od_launched,
        od_ready=od_ready,
        spot_by_zone=by_zone or {},
    )


def fleet_policy(**kwargs):
    kwargs.setdefault("pool_weights", WEIGHTS)
    kwargs.setdefault("dynamic_ondemand_fallback", True)
    return FleetMixturePolicy(DynamicSpotPlacer(POOLS, COSTS), **kwargs)


class TestUniformDelegation:
    """All-1.0 weights must reproduce the parent's integer arithmetic."""

    def test_matches_mixture_policy_decisions(self):
        weighted = FleetMixturePolicy(
            DynamicSpotPlacer(POOLS, COSTS),
            pool_weights={},  # every pool defaults to weight 1.0
            num_overprovision=2,
            dynamic_ondemand_fallback=True,
        )
        plain = MixturePolicy(
            DynamicSpotPlacer(POOLS, COSTS),
            num_overprovision=2,
            dynamic_ondemand_fallback=True,
        )
        for o in (
            obs(),
            obs(launched=3, ready=1, by_zone={"z2@big": 2, "z1@small": 1}),
            obs(launched=6, ready=6, by_zone={"z2@big": 3, "z1@small": 3}),
        ):
            assert weighted.target_mix(o) == plain.target_mix(o)

    def test_uniform_flag_only_for_all_ones(self):
        assert fleet_policy(pool_weights={})._uniform
        assert not fleet_policy()._uniform


class TestWeightedGrowth:
    def test_grows_until_capacity_goal_covered(self):
        policy = fleet_policy()
        # Goal 4 units from empty: plan walks the placer's MIN-COST
        # order — big pool (2.5), then the unused small pool (3.5),
        # then big again (6.0 >= 4): three launches.
        mix = policy.target_mix(obs(n_tar=4))
        assert mix.spot_target == 3

    def test_no_growth_when_capacity_covers_goal(self):
        policy = fleet_policy(num_overprovision=0)
        o = obs(n_tar=4, launched=2, ready=1, by_zone={"z2@big": 2})
        # 5.0 units launched >= 4: no new spot while settling.
        assert policy.target_mix(o).spot_target == 2


class TestConservativeScaleDown:
    def test_releases_only_when_any_victim_keeps_goal(self):
        policy = fleet_policy(num_overprovision=0)
        o = obs(n_tar=4, launched=4, ready=4, by_zone={"z2@big": 4})
        # 10 units for a 4-unit goal: the replay kills *its* choice of
        # victim, so release while surplus covers the heaviest (2.5):
        # 10 -> 7.5 -> 5.0, then surplus 1.0 < 2.5 stops.
        assert policy.target_mix(o).spot_target == 2

    def test_never_releases_inflight_capacity(self):
        policy = fleet_policy(num_overprovision=0)
        o = obs(n_tar=4, launched=4, ready=3, by_zone={"z2@big": 4})
        # Same surplus, but one launch still cold: releasing now would
        # kill the newest (cold) instance, so hold the target.
        assert policy.target_mix(o).spot_target == 4


class TestWeightedFallback:
    def test_cold_replicas_charged_at_heaviest_weight(self):
        policy = fleet_policy(num_overprovision=0)
        o = obs(
            n_tar=4,
            launched=2,
            ready=1,
            by_zone={"z1@small": 1, "z2@big": 1},
        )
        # Capacity 3.5 launched, one cold: assume the big one (2.5) is
        # the cold one, so ready >= 1.0 and fallback = ceil(4 - 1) = 3.
        assert policy.target_mix(o).od_target == 3

    def test_settled_fleet_fallback_is_exact(self):
        policy = fleet_policy(num_overprovision=0)
        o = obs(n_tar=4, launched=2, ready=2, by_zone={"z2@big": 2})
        # 5.0 units ready >= goal 4: no on-demand needed.
        assert policy.target_mix(o).od_target == 0


class TestValidation:
    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            fleet_policy(pool_weights={"z1@small": 0.0})

    def test_pool_weight_defaults_to_one(self):
        assert fleet_policy().pool_weight("unknown") == 1.0


class TestFactory:
    def test_hetero_spothedge_wiring(self):
        policy = hetero_spothedge(
            POOLS, pool_costs=COSTS, pool_weights=WEIGHTS, name="fleet-test"
        )
        assert isinstance(policy, FleetMixturePolicy)
        assert isinstance(policy.placer, DynamicSpotPlacer)
        assert policy.dynamic_ondemand_fallback
        assert policy.name == "fleet-test"
        assert policy.num_overprovision == 2

    def test_not_stationary(self):
        # The weighted planning loop probes select_zone, which the
        # placer protocol allows to be stateful — the fastpath must not
        # fast-forward this policy.
        assert FleetMixturePolicy.stationary_decisions is False
