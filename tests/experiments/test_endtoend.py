"""Integration tests for the §5.1 end-to-end comparison harness."""

import pytest

from repro.cloud import HOUR
from repro.experiments import (
    SINGLE_REGION,
    SKYSERVE_REGIONS,
    e2e_trace,
    run_comparison,
    spot_zone_costs,
    standard_policies,
)
from repro.workloads import arena_workload


class TestE2ETrace:
    def test_covers_skyserve_regions(self):
        trace = e2e_trace("available", seed=1)
        regions = set(trace.regions)
        assert regions == set(SKYSERVE_REGIONS)

    def test_available_scenario_obtainability(self):
        """Spot Available: us-west-2 obtainability 91-100%."""
        trace = e2e_trace("available", duration=12 * HOUR, seed=1)
        west = [z for z in trace.zone_ids if z.rsplit(":", 1)[0] == SINGLE_REGION]
        assert trace.pooled_availability(west) >= 0.85

    def test_volatile_scenario_obtainability(self):
        """Spot Volatile: us-west-2 obtainability ~45-46%."""
        trace = e2e_trace("volatile", duration=12 * HOUR, seed=1)
        west = [z for z in trace.zone_ids if z.rsplit(":", 1)[0] == SINGLE_REGION]
        assert 0.25 <= trace.pooled_availability(west) <= 0.70

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            e2e_trace("nuclear")


class TestZoneCosts:
    def test_costs_for_known_cloud(self):
        costs = spot_zone_costs(
            ["aws:us-west-2:us-west-2a", "gcp:us-central1:us-central1-a"], "A100"
        )
        assert costs["gcp:us-central1:us-central1-a"] > 0

    def test_zone_without_accelerator_dropped(self):
        costs = spot_zone_costs(["azure:eastus:eastus-1"], "A10G")
        assert costs == {}


class TestStandardPolicies:
    def test_four_systems(self):
        trace = e2e_trace("available", seed=2)
        policies = standard_policies(trace)
        assert set(policies) == {"SkyServe", "ASG", "AWSSpot", "MArk"}

    def test_single_region_baselines_restricted(self):
        trace = e2e_trace("available", seed=2)
        policies = standard_policies(trace)
        asg_zones = policies["ASG"].placer.zones
        assert all(z.rsplit(":", 1)[0] == SINGLE_REGION for z in asg_zones)

    def test_skyserve_spans_all_regions(self):
        trace = e2e_trace("available", seed=2)
        policies = standard_policies(trace)
        regions = {z.rsplit(":", 1)[0] for z in policies["SkyServe"].placer.zones}
        assert regions == set(SKYSERVE_REGIONS)


class TestRunComparison:
    @pytest.fixture(scope="class")
    def volatile_results(self):
        workload = arena_workload(
            2 * HOUR, base_rate=1.2, burst_multiplier=3.0, seed=3
        )
        return run_comparison("volatile", workload, 2 * HOUR, seed=3)

    def test_all_systems_report(self, volatile_results):
        assert set(volatile_results) == {"SkyServe", "ASG", "AWSSpot", "MArk"}
        for result in volatile_results.values():
            assert result.report.total_requests > 0

    def test_skyserve_lowest_failure_rate_under_volatility(self, volatile_results):
        """The paper's headline: SkyServe 0.34-0.62% vs up to 94%."""
        sky = volatile_results["SkyServe"].report.failure_rate
        others = [
            volatile_results[name].report.failure_rate
            for name in ("AWSSpot", "MArk")
        ]
        assert sky < min(others)

    def test_pure_spot_systems_fail_hard_under_volatility(self, volatile_results):
        for name in ("AWSSpot", "MArk"):
            assert volatile_results[name].report.failure_rate > 0.15

    def test_skyserve_higher_availability(self, volatile_results):
        sky = volatile_results["SkyServe"].report.availability
        for name in ("ASG", "AWSSpot", "MArk"):
            assert sky >= volatile_results[name].report.availability

    def test_timelines_recorded(self, volatile_results):
        for result in volatile_results.values():
            assert len(result.ready_spot) > 0
            assert len(result.provisioning_spot) > 0
