"""Tests for the parameter-sweep utility."""

import pytest

from repro.experiments import grid_sweep


class TestGridSweep:
    def test_full_cartesian_product_in_order(self):
        calls = []

        def run(a, b):
            calls.append((a, b))
            return a * 10 + b

        points = grid_sweep(run, {"a": [1, 2], "b": [3, 4]})
        assert calls == [(1, 3), (1, 4), (2, 3), (2, 4)]
        assert [p.result for p in points] == [13, 14, 23, 24]
        assert all(p.ok for p in points)

    def test_labels_are_stable(self):
        points = grid_sweep(lambda x: x, {"x": [1]})
        assert points[0].label() == "x=1"

    def test_errors_isolated_by_default(self):
        def run(x):
            if x == 2:
                raise RuntimeError("boom")
            return x

        points = grid_sweep(run, {"x": [1, 2, 3]})
        assert [p.ok for p in points] == [True, False, True]
        assert "boom" in points[1].error
        assert points[1].result is None

    def test_raise_errors_fails_fast(self):
        def run(x):
            raise ValueError("nope")

        with pytest.raises(ValueError):
            grid_sweep(run, {"x": [1]}, raise_errors=True)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep(lambda: None, {})
        with pytest.raises(ValueError):
            grid_sweep(lambda x: x, {"x": []})

    def test_sweep_over_replay(self):
        """An actual Fig. 14c-style sweep over N_Extra."""
        from repro.cloud import SpotTrace
        from repro.core import spothedge
        from repro.experiments import ReplayConfig, TraceReplayer
        import numpy as np

        zones = ["aws:r:a", "aws:r:b"]
        trace = SpotTrace("s", zones, 60.0, np.full((2, 120), 4))

        def run(n_extra):
            replayer = TraceReplayer(trace, ReplayConfig(n_tar=2))
            return replayer.run(spothedge(zones, num_overprovision=n_extra))

        points = grid_sweep(run, {"n_extra": [0, 1, 2]})
        assert all(p.ok for p in points)
        costs = [p.result.relative_cost for p in points]
        assert costs == sorted(costs)  # more buffer costs more
