"""Tests for the parameter-sweep utility."""

import numpy as np
import pytest

from repro.cloud import SpotTrace
from repro.core import spothedge
from repro.experiments import (
    ReplayConfig,
    TraceReplayer,
    grid_sweep,
    replay_result_to_dict,
)
from repro.sim.rng import derive_seed
from repro.telemetry import EventBus, RingBufferSink

ZONES = ["aws:r1:a", "aws:r1:b"]


def _make_trace() -> SpotTrace:
    rng = np.random.default_rng(7)
    return SpotTrace("sweep", ZONES, 60.0, rng.integers(0, 4, size=(2, 90)))


def _replay_point(n_tar, cold_start, seed=0):
    """Module-level so the parallel path can pickle it.  Returns a plain
    dict so SweepPoint results compare with ``==`` across processes."""
    trace = _make_trace()
    replayer = TraceReplayer(
        trace, ReplayConfig(n_tar=n_tar, cold_start=cold_start), seed=seed
    )
    result = replayer.run(spothedge(ZONES))
    return replay_result_to_dict(result, include_series=True)


def _replay_or_boom(n_tar, cold_start, seed=0):
    if n_tar == 3:
        raise RuntimeError(f"boom at n_tar={n_tar}")
    return _replay_point(n_tar, cold_start, seed=seed)


class TestGridSweep:
    def test_full_cartesian_product_in_order(self):
        calls = []

        def run(a, b):
            calls.append((a, b))
            return a * 10 + b

        points = grid_sweep(run, {"a": [1, 2], "b": [3, 4]})
        assert calls == [(1, 3), (1, 4), (2, 3), (2, 4)]
        assert [p.result for p in points] == [13, 14, 23, 24]
        assert all(p.ok for p in points)

    def test_labels_are_stable(self):
        points = grid_sweep(lambda x: x, {"x": [1]})
        assert points[0].label() == "x=1"

    def test_errors_isolated_by_default(self):
        def run(x):
            if x == 2:
                raise RuntimeError("boom")
            return x

        points = grid_sweep(run, {"x": [1, 2, 3]})
        assert [p.ok for p in points] == [True, False, True]
        assert "boom" in points[1].error
        assert points[1].result is None

    def test_raise_errors_fails_fast(self):
        def run(x):
            raise ValueError("nope")

        with pytest.raises(ValueError):
            grid_sweep(run, {"x": [1]}, raise_errors=True)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep(lambda: None, {})
        with pytest.raises(ValueError):
            grid_sweep(lambda x: x, {"x": []})

    def test_sweep_over_replay(self):
        """An actual Fig. 14c-style sweep over N_Extra."""
        from repro.cloud import SpotTrace
        from repro.core import spothedge
        from repro.experiments import ReplayConfig, TraceReplayer
        import numpy as np

        zones = ["aws:r:a", "aws:r:b"]
        trace = SpotTrace("s", zones, 60.0, np.full((2, 120), 4))

        def run(n_extra):
            replayer = TraceReplayer(trace, ReplayConfig(n_tar=2))
            return replayer.run(spothedge(zones, num_overprovision=n_extra))

        points = grid_sweep(run, {"n_extra": [0, 1, 2]})
        assert all(p.ok for p in points)
        costs = [p.result.relative_cost for p in points]
        assert costs == sorted(costs)  # more buffer costs more


class TestParallelSweep:
    """workers=N must be indistinguishable from workers=1 (ISSUE PR 2)."""

    GRID = {"n_tar": [2, 3, 4], "cold_start": [0.0, 120.0]}

    def test_parallel_identical_to_serial_on_replay_grid(self):
        serial = grid_sweep(_replay_point, self.GRID, workers=1, root_seed=11)
        parallel = grid_sweep(_replay_point, self.GRID, workers=4, root_seed=11)
        assert [p.params for p in serial] == [p.params for p in parallel]
        assert [p.result for p in serial] == [p.result for p in parallel]
        assert [p.error for p in serial] == [p.error for p in parallel]

    def test_parallel_identical_including_raising_point(self):
        serial = grid_sweep(_replay_or_boom, self.GRID, workers=1)
        parallel = grid_sweep(_replay_or_boom, self.GRID, workers=3)
        assert [p.ok for p in serial] == [p.ok for p in parallel]
        assert [p.error for p in serial] == [p.error for p in parallel]
        assert [p.result for p in serial] == [p.result for p in parallel]
        # The two n_tar=3 points failed, everything else succeeded.
        assert [p.ok for p in serial] == [True, True, False, False, True, True]
        assert "boom at n_tar=3" in serial[2].error

    def test_parallel_raise_errors_surfaces_earliest_grid_failure(self):
        with pytest.raises(RuntimeError, match="boom at n_tar=3"):
            grid_sweep(_replay_or_boom, self.GRID, workers=3, raise_errors=True)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep(lambda x: x, {"x": [1]}, workers=0)
        with pytest.raises(ValueError):
            grid_sweep(lambda x: x, {"x": [1]}, workers=-2)


class TestSeedDerivation:
    def test_root_seed_injects_derived_per_point_seed(self):
        points = grid_sweep(
            lambda a, seed: seed, {"a": [1, 2]}, root_seed=42
        )
        for point in points:
            label = f"a={point.params['a']}"
            expected = derive_seed(42, label)
            assert point.params["seed"] == expected
            assert point.result == expected

    def test_custom_seed_param_name(self):
        points = grid_sweep(
            lambda a, rng_seed: rng_seed,
            {"a": [5]},
            root_seed=1,
            seed_param="rng_seed",
        )
        assert points[0].params["rng_seed"] == derive_seed(1, "a=5")

    def test_seed_param_conflicting_with_axis_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            grid_sweep(
                lambda seed: seed, {"seed": [1, 2]}, root_seed=3
            )

    def test_no_root_seed_leaves_params_untouched(self):
        points = grid_sweep(lambda a: a, {"a": [1]})
        assert set(points[0].params) == {"a"}


class TestSweepTelemetry:
    def test_progress_event_per_point_in_order(self):
        sink = RingBufferSink()
        grid_sweep(
            lambda x: x,
            {"x": [1, 2, 3]},
            telemetry=EventBus([sink]),
        )
        events = sink.events
        assert [e.kind for e in events] == ["sweep.point"] * 3
        assert [e.index for e in events] == [0, 1, 2]
        assert [e.total for e in events] == [3, 3, 3]
        assert [e.label for e in events] == ["x=1", "x=2", "x=3"]
        assert all(e.ok for e in events)

    def test_progress_marks_failed_points(self):
        def run(x):
            if x == 2:
                raise ValueError("nope")
            return x

        sink = RingBufferSink()
        grid_sweep(run, {"x": [1, 2]}, telemetry=EventBus([sink]))
        assert [e.ok for e in sink.events] == [True, False]

    def test_parallel_sweep_emits_progress_too(self):
        sink = RingBufferSink()
        grid_sweep(
            _replay_point,
            {"n_tar": [2, 3], "cold_start": [0.0]},
            workers=2,
            telemetry=EventBus([sink]),
        )
        assert [e.index for e in sink.events] == [0, 1]
