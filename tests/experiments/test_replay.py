"""Unit tests for the §5.2 trace-replay harness."""

import math

import numpy as np
import pytest

from repro.cloud import HOUR, SpotTrace
from repro.core import OnDemandOnlyPolicy, even_spread_policy, round_robin_policy, spothedge
from repro.experiments import ReplayConfig, ReplayResult, TraceReplayer, erlang_c_wait, estimate_latency
from repro.workloads import poisson_workload

Z1, Z2, Z3 = "aws:r1:r1a", "aws:r1:r1b", "aws:r2:r2a"


def trace_with(rows, step=60.0, name="replay-test"):
    return SpotTrace(name, [Z1, Z2, Z3], step, np.asarray(rows))


def full(steps=100, cap=4):
    return [[cap] * steps] * 3


class TestReplayer:
    def test_spothedge_all_spot_when_available(self):
        replayer = TraceReplayer(trace_with(full()), ReplayConfig(n_tar=2, cold_start=60.0))
        result = replayer.run(spothedge([Z1, Z2, Z3], num_overprovision=1))
        assert result.availability > 0.9
        # Once spot is up, no on-demand cost accrues beyond the warmup.
        assert result.od_cost < 0.2 * result.spot_cost

    def test_ondemand_only_reference_cost_is_one(self):
        replayer = TraceReplayer(trace_with(full()), ReplayConfig(n_tar=2, cold_start=0.0))
        result = replayer.run(OnDemandOnlyPolicy([Z1]))
        assert result.relative_cost == pytest.approx(1.0)
        assert result.availability == 1.0

    def test_blackout_forces_fallback(self):
        rows = [[4] * 50 + [0] * 50] * 3
        replayer = TraceReplayer(trace_with(rows), ReplayConfig(n_tar=2, cold_start=60.0))
        result = replayer.run(spothedge([Z1, Z2, Z3]))
        # Available through the blackout thanks to Dynamic Fallback.
        assert result.availability > 0.9
        assert result.od_cost > 0

    def test_pure_spot_policy_dies_in_blackout(self):
        rows = [[4] * 50 + [0] * 50] * 3
        replayer = TraceReplayer(trace_with(rows), ReplayConfig(n_tar=2, cold_start=60.0))
        result = replayer.run(round_robin_policy([Z1, Z2, Z3]))
        assert result.availability < 0.6

    def test_preemptions_counted(self):
        rows = [[4] * 50 + [0] * 50] * 3
        replayer = TraceReplayer(trace_with(rows), ReplayConfig(n_tar=2))
        result = replayer.run(even_spread_policy([Z1, Z2, Z3]))
        assert result.preemptions >= 2

    def test_cold_start_delays_readiness(self):
        replayer = TraceReplayer(
            trace_with(full()), ReplayConfig(n_tar=2, cold_start=300.0)
        )
        result = replayer.run(spothedge([Z1, Z2, Z3]))
        # The first 5 steps (300 s) cannot have ready replicas.
        assert result.ready_series[:5].max() == 0

    def test_deterministic(self):
        rows = [[2] * 30 + [1] * 70] * 3
        results = []
        for _ in range(2):
            replayer = TraceReplayer(trace_with(rows), ReplayConfig(n_tar=2), seed=5)
            results.append(replayer.run(spothedge([Z1, Z2, Z3])))
        np.testing.assert_array_equal(results[0].ready_series, results[1].ready_series)
        assert results[0].relative_cost == results[1].relative_cost

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReplayConfig(n_tar=0)
        with pytest.raises(ValueError):
            ReplayConfig(k=0.0)
        with pytest.raises(ValueError):
            ReplayConfig(cold_start=-1.0)


class TestErlangC:
    def test_no_load_no_wait(self):
        assert erlang_c_wait(0.0, 8.0, 4) == 0.0

    def test_no_servers_infinite(self):
        assert math.isinf(erlang_c_wait(1.0, 8.0, 0))

    def test_unstable_infinite(self):
        assert math.isinf(erlang_c_wait(2.0, 8.0, 4))  # rho = 4

    def test_wait_grows_with_load(self):
        light = erlang_c_wait(0.1, 8.0, 4)
        heavy = erlang_c_wait(0.45, 8.0, 4)
        assert heavy > light

    def test_more_servers_less_wait(self):
        few = erlang_c_wait(0.4, 8.0, 4)
        many = erlang_c_wait(0.4, 8.0, 16)
        assert many < few

    def test_single_server_matches_mm1(self):
        # M/M/1: W_q = rho / (mu - lambda).
        lam, service = 0.05, 10.0
        rho = lam * service
        expected = rho / (1 / service - lam)
        assert erlang_c_wait(lam, service, 1) == pytest.approx(expected, rel=1e-6)


class TestLatencyEstimate:
    def make_result(self, ready, step=60.0):
        return ReplayResult(
            policy="p",
            trace="t",
            n_tar=2,
            availability=1.0,
            relative_cost=0.5,
            spot_cost=1.0,
            od_cost=0.0,
            preemptions=0,
            launch_failures=0,
            ready_series=np.asarray(ready),
            step=step,
        )

    def test_healthy_service_latency_near_service_time(self):
        result = self.make_result([4] * 60)
        workload = poisson_workload(HOUR, rate=0.1, seed=1)
        latencies = estimate_latency(result, workload, service_time=8.0, timeout=100.0)
        assert np.median(latencies) == pytest.approx(8.0, rel=0.2)

    def test_downtime_hits_timeout(self):
        result = self.make_result([0] * 60)
        workload = poisson_workload(HOUR, rate=0.1, seed=2)
        latencies = estimate_latency(result, workload, service_time=8.0, timeout=100.0)
        assert (latencies == 100.0).all()

    def test_short_outage_adds_wait(self):
        ready = [4] * 20 + [0] * 2 + [4] * 38
        result = self.make_result(ready)
        workload = poisson_workload(HOUR, rate=0.2, seed=3)
        latencies = estimate_latency(result, workload, service_time=8.0, timeout=300.0)
        assert latencies.max() > 60.0  # someone waited out the outage
        assert np.median(latencies) < 20.0

    def test_fewer_replicas_higher_latency(self):
        workload = poisson_workload(HOUR, rate=1.0, seed=4)
        lat_many = estimate_latency(
            self.make_result([8] * 60), workload, service_time=8.0
        )
        lat_few = estimate_latency(
            self.make_result([2] * 60), workload, service_time=8.0
        )
        assert lat_few.mean() >= lat_many.mean()

    def test_validation(self):
        result = self.make_result([1])
        workload = poisson_workload(100.0, rate=0.1, seed=5)
        with pytest.raises(ValueError):
            estimate_latency(result, workload, service_time=0.0)


class TestCapacityWeights:
    """Effective-capacity tracking for heterogeneous (zone × type) pools."""

    def test_weights_require_discrete_engine(self):
        config = ReplayConfig(n_tar=2, zone_capacity_weights={Z1: 2.0})
        for engine in ("hybrid", "vectorized"):
            replayer = TraceReplayer(trace_with(full()), config, engine=engine)
            with pytest.raises(ValueError, match="zone_capacity_weights"):
                replayer.run(spothedge([Z1, Z2, Z3]))

    def test_eff_fields_none_without_weights(self):
        replayer = TraceReplayer(trace_with(full()), ReplayConfig(n_tar=2))
        result = replayer.run(spothedge([Z1, Z2, Z3]))
        assert result.eff_ready_series is None
        assert result.eff_availability is None

    def test_eff_series_scales_spot_by_zone_weight(self):
        # Pure-spot policy, zero cold start, every zone weighted 2.0:
        # effective capacity is exactly twice the ready count.
        config = ReplayConfig(
            n_tar=2,
            cold_start=0.0,
            zone_capacity_weights={Z1: 2.0, Z2: 2.0, Z3: 2.0},
        )
        replayer = TraceReplayer(trace_with(full()), config)
        result = replayer.run(even_spread_policy([Z1, Z2, Z3]))
        assert result.eff_ready_series is not None
        assert np.array_equal(
            result.eff_ready_series, 2.0 * result.ready_series.astype(float)
        )
        assert result.eff_availability == 1.0

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            ReplayConfig(n_tar=2, zone_capacity_weights={Z1: 0.0})
