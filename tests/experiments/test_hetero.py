"""Tests for the homogeneous-vs-heterogeneous frontier ablation."""

import os
import subprocess
import sys
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cloud import aws1
from repro.core import DynamicSpotPlacer, FleetMixturePolicy, spothedge
from repro.experiments import (
    FLEETS,
    spot_zone_costs,
    ReplayConfig,
    TraceReplayer,
    frontier_to_json,
    pareto_fleets,
    replay_result_to_dict,
    run_fleet,
    run_frontier,
)
from repro.experiments.sweep import SweepPoint

WINDOW = 6 * 3600.0


class TestHomogeneousEquivalence:
    """Acceptance: a single-type (all-weight-1.0) fleet reproduces the
    unweighted homogeneous stack bit-for-bit."""

    def _trace(self):
        return aws1().window(0, 12 * 3600, name="equiv")

    def test_uniform_fleet_matches_spothedge_replay(self):
        trace = self._trace()
        costs = spot_zone_costs(trace.zone_ids, "A10G")
        config = ReplayConfig(n_tar=4)
        plain = TraceReplayer(trace, config, seed=3, engine="discrete").run(
            spothedge(trace.zone_ids, zone_costs=costs)
        )
        fleet = TraceReplayer(trace, config, seed=3, engine="discrete").run(
            FleetMixturePolicy(
                DynamicSpotPlacer(trace.zone_ids, costs),
                pool_weights={},  # all 1.0
                num_overprovision=2,
                dynamic_ondemand_fallback=True,
                name="SpotHedge",
            )
        )
        assert replay_result_to_dict(plain, include_series=True) == \
            replay_result_to_dict(fleet, include_series=True)

    def test_unit_weights_leave_series_identical(self):
        # Turning on weight tracking with all-1.0 weights must not
        # change a single decision: eff series == ready series exactly.
        trace = self._trace()
        costs = spot_zone_costs(trace.zone_ids, "A10G")
        base_cfg = ReplayConfig(n_tar=4)
        weighted_cfg = ReplayConfig(
            n_tar=4,
            zone_capacity_weights={z: 1.0 for z in trace.zone_ids},
        )
        base = TraceReplayer(trace, base_cfg, seed=3, engine="discrete").run(
            spothedge(trace.zone_ids, zone_costs=costs)
        )
        weighted = TraceReplayer(trace, weighted_cfg, seed=3, engine="discrete").run(
            spothedge(trace.zone_ids, zone_costs=costs)
        )
        assert np.array_equal(base.ready_series, weighted.ready_series)
        assert np.array_equal(weighted.eff_ready_series, weighted.ready_series.astype(float))
        assert weighted.eff_availability == base.availability


class TestRunFleet:
    def test_unknown_fleet_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet"):
            run_fleet("tpu", use_cache=False)

    def test_mixed_fleet_tracks_effective_capacity(self):
        result = run_fleet("mixed", duration=WINDOW, use_cache=False)
        assert result.eff_availability is not None
        assert 0.0 <= result.eff_availability <= 1.0
        assert result.relative_cost > 0

    def test_cache_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = run_fleet("A100", duration=WINDOW)
        again = run_fleet("A100", duration=WINDOW)
        assert replay_result_to_dict(first, include_series=True) == \
            replay_result_to_dict(again, include_series=True)
        assert any(tmp_path.iterdir())


class TestFrontier:
    def test_sweeps_fleets_in_declared_order(self):
        points = run_frontier(["A10G", "mixed"], duration=WINDOW, use_cache=False)
        assert [p.params["fleet"] for p in points] == ["A10G", "mixed"]
        assert all(p.ok for p in points)

    def test_unknown_fleet_rejected(self):
        with pytest.raises(ValueError):
            run_frontier(["warp-core"], use_cache=False)

    def test_pareto_drops_dominated_fleets(self):
        def point(name, eff, cost):
            return SweepPoint(
                params={"fleet": name},
                result=SimpleNamespace(eff_availability=eff, relative_cost=cost),
            )

        points = [
            point("cheap", 0.95, 0.3),
            point("dominated", 0.94, 0.5),  # worse on both axes
            point("premium", 0.99, 0.8),
        ]
        assert pareto_fleets(points) == ["cheap", "premium"]

    def test_json_is_byte_stable_across_hash_seeds(self, tmp_path):
        script = (
            "from repro.experiments import run_frontier, frontier_to_json\n"
            "import sys\n"
            "pts = run_frontier(['A10G', 'mixed'], n_tar=4, seed=0, "
            f"duration={WINDOW}, use_cache=False)\n"
            "sys.stdout.write(frontier_to_json(pts, n_tar=4, seed=0))\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        outputs = []
        for hash_seed in ("0", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src_dir, env.get("PYTHONPATH", "")) if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert '"experiment": "hetero-frontier"' in outputs[0]

    def test_json_reports_errors_per_fleet(self):
        bad = SweepPoint(params={"fleet": "A10G"}, error="boom")
        text = frontier_to_json([bad])
        assert '"error": "boom"' in text

    def test_fleet_specs_are_aws_shapes(self):
        # The frontier runs on an AWS base trace; every declared type
        # must expand there or the fleet silently shrinks.
        from repro.cloud import hetero_catalog

        catalog = hetero_catalog()
        for name, types in FLEETS.items():
            for itype in types:
                assert catalog.get(itype).cloud == "aws", (name, itype)
