"""Tests for experiment result serialisation."""

import json

import pytest

from repro.cloud import HOUR, aws1
from repro.core import spothedge
from repro.experiments import (
    ReplayConfig,
    ResultStore,
    TraceReplayer,
    replay_result_to_dict,
    service_report_to_dict,
)
from repro.serving import (
    DomainFilter,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
    SkyService,
)
from repro.workloads import poisson_workload


@pytest.fixture(scope="module")
def sample_report():
    trace = aws1()
    spec = ServiceSpec(
        replica_policy=ReplicaPolicyConfig(fixed_target=2),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=60.0,
    )
    service = SkyService(spec, spothedge(trace.zone_ids), trace, seed=2)
    return service.run(poisson_workload(HOUR, rate=0.1, seed=2), HOUR)


@pytest.fixture(scope="module")
def sample_replay():
    trace = aws1()
    return TraceReplayer(trace, ReplayConfig(n_tar=2)).run(spothedge(trace.zone_ids))


class TestFlattening:
    def test_service_report_dict_is_json_serialisable(self, sample_report):
        data = service_report_to_dict(sample_report)
        text = json.dumps(data)
        restored = json.loads(text)
        assert restored["system"] == "SpotHedge"
        assert restored["latency"]["p50"] > 0
        assert restored["total_cost"] == pytest.approx(sample_report.total_cost)

    def test_ttft_included(self, sample_report):
        data = service_report_to_dict(sample_report)
        assert data["ttft"] is None or data["ttft"]["p50"] > 0

    def test_replay_result_dict(self, sample_replay):
        data = replay_result_to_dict(sample_replay)
        assert data["policy"] == "SpotHedge"
        assert "ready_series" not in data
        json.dumps(data)  # must serialise

    def test_replay_series_opt_in(self, sample_replay):
        data = replay_result_to_dict(sample_replay, include_series=True)
        assert len(data["ready_series"]) == len(sample_replay.ready_series)


class TestResultStore:
    def test_round_trip(self, tmp_path, sample_report, sample_replay):
        store = ResultStore(metadata={"seed": 2, "paper": "SkyServe"})
        store.add("fig9", "SkyServe", sample_report)
        store.add("fig14a", "SpotHedge/AWS1", sample_replay)
        store.add("notes", "scenario", {"name": "available"})
        path = tmp_path / "results.json"
        store.save(path)

        restored = ResultStore.load(path)
        assert restored.metadata["paper"] == "SkyServe"
        assert set(restored.experiments()) == {"fig9", "fig14a", "notes"}
        assert restored.get("fig9", "SkyServe")["system"] == "SpotHedge"
        assert restored.get("notes", "scenario") == {"name": "available"}

    def test_duplicate_label_rejected(self, sample_report):
        store = ResultStore()
        store.add("fig9", "SkyServe", sample_report)
        with pytest.raises(ValueError):
            store.add("fig9", "SkyServe", sample_report)

    def test_same_label_different_experiments_ok(self, sample_report):
        store = ResultStore()
        store.add("fig9a", "SkyServe", sample_report)
        store.add("fig9b", "SkyServe", sample_report)
        assert len(store.experiments()) == 2
