"""Tests for experiment result serialisation."""

import json

import pytest

from repro.cloud import HOUR, aws1
from repro.core import spothedge
from repro.experiments import (
    ReplayConfig,
    ResultStore,
    TraceReplayer,
    replay_result_to_dict,
    service_report_to_dict,
)
from repro.serving import (
    DomainFilter,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
    SkyService,
)
from repro.workloads import poisson_workload


@pytest.fixture(scope="module")
def sample_report():
    trace = aws1()
    spec = ServiceSpec(
        replica_policy=ReplicaPolicyConfig(fixed_target=2),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=60.0,
    )
    service = SkyService(spec, spothedge(trace.zone_ids), trace, seed=2)
    return service.run(poisson_workload(HOUR, rate=0.1, seed=2), HOUR)


@pytest.fixture(scope="module")
def sample_replay():
    trace = aws1()
    return TraceReplayer(trace, ReplayConfig(n_tar=2)).run(spothedge(trace.zone_ids))


class TestFlattening:
    def test_service_report_dict_is_json_serialisable(self, sample_report):
        data = service_report_to_dict(sample_report)
        text = json.dumps(data)
        restored = json.loads(text)
        assert restored["system"] == "SpotHedge"
        assert restored["latency"]["p50"] > 0
        assert restored["total_cost"] == pytest.approx(sample_report.total_cost)

    def test_ttft_included(self, sample_report):
        data = service_report_to_dict(sample_report)
        assert data["ttft"] is None or data["ttft"]["p50"] > 0

    def test_replay_result_dict(self, sample_replay):
        data = replay_result_to_dict(sample_replay)
        assert data["policy"] == "SpotHedge"
        assert "ready_series" not in data
        json.dumps(data)  # must serialise

    def test_replay_series_opt_in(self, sample_replay):
        data = replay_result_to_dict(sample_replay, include_series=True)
        assert len(data["ready_series"]) == len(sample_replay.ready_series)


class TestResultStore:
    def test_round_trip(self, tmp_path, sample_report, sample_replay):
        store = ResultStore(metadata={"seed": 2, "paper": "SkyServe"})
        store.add("fig9", "SkyServe", sample_report)
        store.add("fig14a", "SpotHedge/AWS1", sample_replay)
        store.add("notes", "scenario", {"name": "available"})
        path = tmp_path / "results.json"
        store.save(path)

        restored = ResultStore.load(path)
        assert restored.metadata["paper"] == "SkyServe"
        assert set(restored.experiments()) == {"fig9", "fig14a", "notes"}
        assert restored.get("fig9", "SkyServe")["system"] == "SpotHedge"
        assert restored.get("notes", "scenario") == {"name": "available"}

    def test_duplicate_label_rejected(self, sample_report):
        store = ResultStore()
        store.add("fig9", "SkyServe", sample_report)
        with pytest.raises(ValueError):
            store.add("fig9", "SkyServe", sample_report)

    def test_same_label_different_experiments_ok(self, sample_report):
        store = ResultStore()
        store.add("fig9a", "SkyServe", sample_report)
        store.add("fig9b", "SkyServe", sample_report)
        assert len(store.experiments()) == 2


class TestReplayResultFromDict:
    def test_round_trip_inverse(self, sample_replay):
        from repro.experiments import replay_result_from_dict

        data = replay_result_to_dict(sample_replay, include_series=True)
        restored = replay_result_from_dict(json.loads(json.dumps(data)))
        assert restored.policy == sample_replay.policy
        assert restored.availability == sample_replay.availability
        assert restored.relative_cost == sample_replay.relative_cost
        assert restored.preemptions == sample_replay.preemptions
        assert restored.step == sample_replay.step
        import numpy as np

        np.testing.assert_array_equal(
            restored.ready_series, sample_replay.ready_series
        )

    def test_missing_series_rejected(self, sample_replay):
        from repro.experiments import replay_result_from_dict

        data = replay_result_to_dict(sample_replay)  # series omitted
        with pytest.raises(ValueError):
            replay_result_from_dict(data)


class TestReplayCache:
    @pytest.fixture
    def cache(self, tmp_path):
        from repro.experiments import ReplayCache

        return ReplayCache(tmp_path / "cache")

    def test_round_trip(self, cache, sample_replay):
        from repro.experiments import ReplayCache

        trace = aws1()
        key = ReplayCache.key(trace, "SpotHedge", None, ReplayConfig(n_tar=2), 0)
        assert cache.get(key) is None
        cache.put(key, sample_replay)
        assert len(cache) == 1
        hit = cache.get(key)
        assert hit is not None
        assert hit.availability == sample_replay.availability
        import numpy as np

        np.testing.assert_array_equal(hit.ready_series, sample_replay.ready_series)

    def test_env_var_sets_default_root(self, tmp_path, monkeypatch):
        from repro.experiments import ReplayCache

        monkeypatch.setenv(ReplayCache.ENV_VAR, str(tmp_path / "envcache"))
        cache = ReplayCache()
        assert cache.root == tmp_path / "envcache"

    def test_key_sensitive_to_every_input(self):
        import numpy as np

        from repro.cloud import SpotTrace
        from repro.experiments import ReplayCache

        zones = ["aws:r:a", "aws:r:b"]
        trace = SpotTrace("t", zones, 60.0, np.full((2, 30), 3))
        other_trace = SpotTrace("t", zones, 60.0, np.full((2, 30), 2))
        base = ReplayCache.key(trace, "SpotHedge", None, ReplayConfig(n_tar=2), 0)
        variants = [
            ReplayCache.key(other_trace, "SpotHedge", None, ReplayConfig(n_tar=2), 0),
            ReplayCache.key(trace, "RoundRobin", None, ReplayConfig(n_tar=2), 0),
            ReplayCache.key(trace, "SpotHedge", {"n_extra": 1},
                            ReplayConfig(n_tar=2), 0),
            ReplayCache.key(trace, "SpotHedge", None, ReplayConfig(n_tar=3), 0),
            ReplayCache.key(trace, "SpotHedge", None,
                            ReplayConfig(n_tar=2, cold_start=0.0), 0),
            ReplayCache.key(trace, "SpotHedge", None, ReplayConfig(n_tar=2), 1),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_key_is_stable(self):
        import numpy as np

        from repro.cloud import SpotTrace
        from repro.experiments import ReplayCache

        zones = ["aws:r:a"]
        a = SpotTrace("t", zones, 60.0, np.full((1, 10), 3))
        b = SpotTrace("t", zones, 60.0, np.full((1, 10), 3))
        assert (
            ReplayCache.key(a, "SpotHedge", None, ReplayConfig(n_tar=2), 5)
            == ReplayCache.key(b, "SpotHedge", None, ReplayConfig(n_tar=2), 5)
        )

    def test_corrupt_entry_is_a_miss(self, cache, sample_replay):
        from repro.experiments import ReplayCache

        key = ReplayCache.key(aws1(), "SpotHedge", None, ReplayConfig(n_tar=2), 0)
        cache.put(key, sample_replay)
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_clear_removes_all_entries(self, cache, sample_replay):
        from repro.experiments import ReplayCache

        for seed in range(3):
            key = ReplayCache.key(
                aws1(), "SpotHedge", None, ReplayConfig(n_tar=2), seed
            )
            cache.put(key, sample_replay)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_empty_cache_clear_and_len(self, tmp_path):
        from repro.experiments import ReplayCache

        cache = ReplayCache(tmp_path / "never-created")
        assert len(cache) == 0
        assert cache.clear() == 0


class TestEffectiveCapacityFields:
    """Round-tripping the heterogeneous (capacity-weighted) fields."""

    def _weighted_replay(self):
        import numpy as np

        from repro.experiments import replay_result_from_dict

        trace = aws1()
        config = ReplayConfig(
            n_tar=2,
            zone_capacity_weights={z: 2.0 for z in trace.zone_ids},
        )
        result = TraceReplayer(trace, config).run(spothedge(trace.zone_ids))
        assert result.eff_availability is not None
        return np, replay_result_from_dict, result

    def test_eff_fields_round_trip(self):
        np, from_dict, result = self._weighted_replay()
        data = replay_result_to_dict(result, include_series=True)
        assert data["eff_availability"] == result.eff_availability
        restored = from_dict(json.loads(json.dumps(data)))
        assert restored.eff_availability == result.eff_availability
        np.testing.assert_array_equal(
            restored.eff_ready_series, result.eff_ready_series
        )

    def test_eff_fields_omitted_when_untracked(self, sample_replay):
        data = replay_result_to_dict(sample_replay, include_series=True)
        assert "eff_availability" not in data
        assert "eff_ready_series" not in data

    def test_cache_key_sensitive_to_capacity_weights(self):
        from repro.experiments import ReplayCache

        trace = aws1()
        base = ReplayCache.key(trace, "SpotHedge", None, ReplayConfig(n_tar=2), 0)
        weighted = ReplayCache.key(
            trace,
            "SpotHedge",
            None,
            ReplayConfig(n_tar=2, zone_capacity_weights={trace.zone_ids[0]: 2.0}),
            0,
        )
        assert base != weighted

    def test_cache_key_ignores_weight_dict_order(self):
        from repro.experiments import ReplayCache

        trace = aws1()
        z = list(trace.zone_ids[:2])
        forward = ReplayConfig(n_tar=2, zone_capacity_weights={z[0]: 2.0, z[1]: 3.0})
        reverse = ReplayConfig(n_tar=2, zone_capacity_weights={z[1]: 3.0, z[0]: 2.0})
        assert ReplayCache.key(trace, "SpotHedge", None, forward, 0) == \
            ReplayCache.key(trace, "SpotHedge", None, reverse, 0)
