"""Unit tests for the vectorized/hybrid replay engines.

The contract under test: every engine produces *byte-identical*
:class:`ReplayResult` fields and telemetry event content, consuming the
same RNG stream — the discrete loop stays the oracle.
"""

import numpy as np
import pytest

from repro.baselines import ASGPolicy, AWSSpotPolicy, MArkPolicy, SingleZonePolicy
from repro.chaos import BUILTIN_SCENARIOS, builtin_scenario, compile_scenario
from repro.cloud import SpotTrace
from repro.cloud.traces import aws1, aws2, aws3, cpu_trace, gcp1
from repro.core import (
    OnDemandOnlyPolicy,
    even_spread_policy,
    round_robin_policy,
    spothedge,
)
from repro.core.spothedge import MixturePolicy
from repro.experiments import ENGINES, ReplayConfig, TraceReplayer
from repro.experiments.fastpath import bucket_step, supports_fluid
from repro.telemetry.audit import PolicyAuditLog
from repro.telemetry.events import EventBus
from repro.telemetry.sinks import RingBufferSink

Z1, Z2, Z3 = "aws:r1:r1a", "aws:r1:r1b", "aws:r2:r2a"
ZONES = [Z1, Z2, Z3]

POLICY_FACTORIES = {
    "SpotHedge": spothedge,
    "RoundRobin": round_robin_policy,
    "EvenSpread": even_spread_policy,
    "OnDemand": OnDemandOnlyPolicy,
}


def trace_with(rows, step=60.0, name="fastpath-test"):
    return SpotTrace(name, ZONES, step, np.asarray(rows))


def assert_identical(ref, got):
    """Byte-identical ReplayResult comparison — no approx anywhere."""
    assert got.policy == ref.policy
    assert got.trace == ref.trace
    assert got.n_tar == ref.n_tar
    assert got.availability == ref.availability
    assert got.relative_cost == ref.relative_cost
    assert got.spot_cost == ref.spot_cost
    assert got.od_cost == ref.od_cost
    assert got.preemptions == ref.preemptions
    assert got.launch_failures == ref.launch_failures
    assert got.step == ref.step
    assert got.ready_series.dtype == ref.ready_series.dtype
    np.testing.assert_array_equal(got.ready_series, ref.ready_series)
    np.testing.assert_array_equal(got.od_series, ref.od_series)


def replay(trace, factory, engine, *, seed=3, config=None, **kwargs):
    config = config or ReplayConfig(n_tar=4, k=4.0)
    replayer = TraceReplayer(trace, config, seed=seed, engine=engine, **kwargs)
    return replayer.run(factory(trace.zone_ids))


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown replay engine"):
            TraceReplayer(aws1(), engine="fluid")

    def test_engines_constant(self):
        assert ENGINES == ("discrete", "vectorized", "hybrid")

    def test_vectorized_requires_stationary_policy(self):
        trace = aws1()
        replayer = TraceReplayer(trace, engine="vectorized")
        with pytest.raises(ValueError, match="stationary_decisions"):
            replayer.run(MArkPolicy(trace.zone_ids))

    def test_vectorized_rejects_audited_policy(self):
        trace = aws1()
        policy = spothedge(trace.zone_ids)
        policy.attach_audit(PolicyAuditLog())
        assert not supports_fluid(policy)
        with pytest.raises(ValueError, match="audit"):
            TraceReplayer(trace, engine="vectorized").run(policy)

    def test_hybrid_accepts_non_stationary_policy(self):
        trace = aws1()
        ref = replay(trace, MArkPolicy, "discrete")
        got = replay(trace, MArkPolicy, "hybrid")
        assert_identical(ref, got)

    def test_stationarity_declarations(self):
        assert MixturePolicy.stationary_decisions
        assert OnDemandOnlyPolicy.stationary_decisions
        assert ASGPolicy.stationary_decisions
        assert AWSSpotPolicy.stationary_decisions
        assert SingleZonePolicy.stationary_decisions
        assert not MArkPolicy.stationary_decisions


class TestBundledTraceEquivalence:
    @pytest.mark.parametrize("trace_factory", [aws1, aws2, aws3, gcp1, cpu_trace])
    @pytest.mark.parametrize("policy", sorted(POLICY_FACTORIES))
    @pytest.mark.parametrize("engine", ["vectorized", "hybrid"])
    def test_byte_identical_on_bundled_traces(self, trace_factory, policy, engine):
        trace = trace_factory()
        factory = POLICY_FACTORIES[policy]
        ref = replay(trace, factory, "discrete")
        got = replay(trace, factory, engine)
        assert_identical(ref, got)

    @pytest.mark.parametrize("engine", ["vectorized", "hybrid"])
    def test_identical_rng_stream_consumption(self, engine):
        # After a replay, the *next* draw from the stream must agree —
        # i.e. both engines consumed exactly the same draws.
        trace = aws3()
        ref_replayer = TraceReplayer(trace, ReplayConfig(n_tar=4), seed=9)
        ref_replayer.run(spothedge(trace.zone_ids))
        fast_replayer = TraceReplayer(trace, ReplayConfig(n_tar=4), seed=9, engine=engine)
        fast_replayer.run(spothedge(trace.zone_ids))
        assert ref_replayer._rng.random() == fast_replayer._rng.random()
        assert ref_replayer._next_id == fast_replayer._next_id

    @pytest.mark.parametrize("engine", ["vectorized", "hybrid"])
    def test_baseline_policies_match(self, engine):
        trace = aws1()  # single-region: ASG rejects multi-region zones
        for factory in (
            lambda z: ASGPolicy(z),
            lambda z: AWSSpotPolicy(z),
            lambda z: SingleZonePolicy(z[0]),
        ):
            ref = replay(trace, factory, "discrete")
            got = replay(trace, factory, engine)
            assert_identical(ref, got)

    @pytest.mark.parametrize("engine", ["vectorized", "hybrid"])
    def test_spot_zones_subset(self, engine):
        trace = aws1()
        subset = list(trace.zone_ids[:2])
        config = ReplayConfig(n_tar=3)
        ref = TraceReplayer(trace, config, seed=1).run(
            spothedge(subset), spot_zones=subset
        )
        got = TraceReplayer(trace, config, seed=1, engine=engine).run(
            spothedge(subset), spot_zones=subset
        )
        assert_identical(ref, got)

    @pytest.mark.parametrize("engine", ["vectorized", "hybrid"])
    def test_zone_price_multipliers_match(self, engine):
        trace = aws2()
        config = ReplayConfig(
            n_tar=4, zone_price_multipliers={trace.zone_ids[0]: 0.7, trace.zone_ids[1]: 1.3}
        )
        ref = replay(trace, spothedge, "discrete", config=config)
        got = replay(trace, spothedge, engine, config=config)
        assert_identical(ref, got)


class TestChaosEquivalence:
    @pytest.mark.parametrize("scenario", sorted(BUILTIN_SCENARIOS))
    @pytest.mark.parametrize("engine", ["vectorized", "hybrid"])
    def test_builtin_scenarios_byte_identical(self, scenario, engine):
        trace = aws1()
        compiled = compile_scenario(builtin_scenario(scenario), trace)
        kwargs = dict(
            cold_start_factors=compiled.cold_start_factors,
            zone_price_factors=compiled.price_factors,
        )
        ref = replay(compiled.trace, spothedge, "discrete", **kwargs)
        got = replay(compiled.trace, spothedge, engine, **kwargs)
        assert_identical(ref, got)


class TestTelemetryEquivalence:
    @pytest.mark.parametrize("engine", ["vectorized", "hybrid"])
    @pytest.mark.parametrize("policy", ["SpotHedge", "RoundRobin"])
    def test_event_streams_identical(self, engine, policy):
        trace = aws1()
        factory = POLICY_FACTORIES[policy]
        streams = []
        for eng in ("discrete", engine):
            sink = RingBufferSink()
            replayer = TraceReplayer(
                trace, ReplayConfig(n_tar=4), seed=3, engine=eng,
                telemetry=EventBus([sink]),
            )
            replayer.run(factory(trace.zone_ids))
            streams.append(sink.events)
        assert streams[0] == streams[1]

    @pytest.mark.parametrize("engine", ["vectorized", "hybrid"])
    def test_chaos_event_streams_identical(self, engine):
        trace = aws1()
        compiled = compile_scenario(builtin_scenario("cold-start-storm"), trace)
        streams = []
        for eng in ("discrete", engine):
            sink = RingBufferSink()
            replayer = TraceReplayer(
                compiled.trace, ReplayConfig(n_tar=4), seed=3, engine=eng,
                telemetry=EventBus([sink]),
                cold_start_factors=compiled.cold_start_factors,
                zone_price_factors=compiled.price_factors,
            )
            replayer.run(spothedge(compiled.trace.zone_ids))
            streams.append(sink.events)
        assert streams[0] == streams[1]


class _CountingSpotHedge(MixturePolicy):
    """SpotHedge that records the step index of every target_mix call."""

    def __init__(self, zones, step):
        from repro.core.placement import DynamicSpotPlacer

        super().__init__(
            DynamicSpotPlacer(zones), dynamic_ondemand_fallback=True, name="SpotHedge"
        )
        self._obs_step = step
        self.consulted_steps = []

    def target_mix(self, obs):
        self.consulted_steps.append(int(obs.now // self._obs_step))
        return super().target_mix(obs)


class TestHybridWindowing:
    def make_quiet_trace(self, crossing_step=120, n_steps=300):
        # Plenty of capacity everywhere, except zone 1 collapses to 0
        # at ``crossing_step`` for 10 steps — the one churn window.
        rows = np.full((3, n_steps), 6, dtype=np.int64)
        rows[1, crossing_step : crossing_step + 10] = 0
        return trace_with(rows.tolist())

    def test_windows_skip_quiescent_steps(self):
        trace = self.make_quiet_trace()
        policy = _CountingSpotHedge(ZONES, trace.step)
        TraceReplayer(trace, ReplayConfig(n_tar=4), engine="hybrid").run(policy)
        # The hybrid engine consulted the policy on far fewer steps...
        assert len(policy.consulted_steps) < trace.n_steps / 4
        # ...including exactly the forced boundary: the capacity
        # crossing.  Capacity *restoration* is not a churn point — the
        # fleet re-settled in other zones during the outage — so after
        # the outage churn dies out, no further steps are consulted.
        assert 120 in policy.consulted_steps
        assert max(policy.consulted_steps) < 130

    def test_discrete_consults_every_step(self):
        trace = self.make_quiet_trace()
        policy = _CountingSpotHedge(ZONES, trace.step)
        TraceReplayer(trace, ReplayConfig(n_tar=4)).run(policy)
        assert len(policy.consulted_steps) == trace.n_steps

    def test_window_boundary_at_chaos_injection_edge(self):
        # A cold-start spike alone changes nothing unless a launch
        # happens — force one by a capacity dip inside the spike, and
        # check the boundary steps were processed discretely.
        trace = self.make_quiet_trace(crossing_step=150)
        compiled = compile_scenario(builtin_scenario("cold-start-storm"), trace)
        policy = _CountingSpotHedge(ZONES, trace.step)
        got = TraceReplayer(
            compiled.trace,
            ReplayConfig(n_tar=4),
            engine="hybrid",
            cold_start_factors=compiled.cold_start_factors,
            zone_price_factors=compiled.price_factors,
        ).run(policy)
        assert 150 in policy.consulted_steps
        ref = TraceReplayer(
            compiled.trace,
            ReplayConfig(n_tar=4),
            cold_start_factors=compiled.cold_start_factors,
            zone_price_factors=compiled.price_factors,
        ).run(_CountingSpotHedge(ZONES, trace.step))
        assert_identical(ref, got)

    def test_windowing_respects_pending_readiness(self):
        # Cold start of 5 steps: after the initial launches the engine
        # must wake exactly when replicas become ready (readiness
        # changes availability), not at the end of the trace.
        trace = self.make_quiet_trace(crossing_step=50, n_steps=200)
        config = ReplayConfig(n_tar=4, cold_start=300.0)
        ref = replay(trace, spothedge, "discrete", config=config)
        got = replay(trace, spothedge, "hybrid", config=config)
        assert_identical(ref, got)

    def test_mid_shortage_equivalence(self):
        # Sustained shortage: total capacity below target — the launch
        # loop fails every step, so hybrid degrades to per-step churn
        # but must stay byte-identical.
        rows = [[1] * 80, [0] * 80, [0] * 80]
        trace = trace_with(rows)
        config = ReplayConfig(n_tar=4)
        ref = replay(trace, round_robin_policy, "discrete", config=config)
        got = replay(trace, round_robin_policy, "hybrid", config=config)
        assert_identical(ref, got)
        assert got.launch_failures > 0


class TestBucketStep:
    @pytest.mark.parametrize("step", [60.0, 1.0, 0.1, 7.3])
    def test_matches_promotion_comparison(self, step):
        # bucket_step must return the first k with ready_at <= k*step.
        for k_launch in range(0, 50, 7):
            for d in (0.05, 0.1, 1.0, 59.9, 60.0, 180.0, 183.7):
                ready_at = k_launch * step + d
                s = bucket_step(ready_at, step)
                assert s * step >= ready_at
                assert (s - 1) * step < ready_at

    def test_exact_multiple(self):
        assert bucket_step(180.0, 60.0) == 3
        assert bucket_step(180.0000001, 60.0) == 4


class TestStatefulReuse:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_second_run_identical(self, engine):
        trace = aws1()
        replayer = TraceReplayer(trace, ReplayConfig(n_tar=4), seed=5, engine=engine)
        first = replayer.run(spothedge(trace.zone_ids))
        second = replayer.run(spothedge(trace.zone_ids))
        assert_identical(first, second)
