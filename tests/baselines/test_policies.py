"""Unit tests for the baseline system policies (§5.1)."""

import pytest

from repro.baselines import (
    ASGPolicy,
    AWSSpotPolicy,
    MArkPolicy,
    SingleZonePolicy,
    spotserve_spec,
)
from repro.serving.policy import Observation

ZONES = [
    "aws:us-west-2:us-west-2a",
    "aws:us-west-2:us-west-2b",
    "aws:us-west-2:us-west-2c",
]
MULTI_REGION = ["aws:us-west-2:us-west-2a", "aws:us-east-1:us-east-1a"]


def obs(now=0.0, n_tar=4, spot_ready=0, by_zone=None):
    return Observation(
        now=now,
        n_tar=n_tar,
        spot_launched=0,
        spot_ready=spot_ready,
        od_launched=0,
        od_ready=0,
        spot_by_zone=by_zone or {},
    )


class TestASG:
    def test_static_10pct_mixture_with_min_one(self):
        """ASG keeps 10% on-demand (>= 1) regardless of spot health."""
        policy = ASGPolicy(ZONES)
        mix = policy.target_mix(obs(n_tar=4))
        assert mix.od_target == 1
        assert mix.spot_target == 3

    def test_large_fleet_scales_od_fraction(self):
        policy = ASGPolicy(ZONES)
        mix = policy.target_mix(obs(n_tar=30))
        assert mix.od_target == 3
        assert mix.spot_target == 27

    def test_mixture_static_under_preemption(self):
        """§2.4: the pool sizes never react to spot volatility."""
        policy = ASGPolicy(ZONES)
        before = policy.target_mix(obs(n_tar=4, spot_ready=3))
        for _ in range(10):
            policy.on_spot_preempted(ZONES[0])
        after = policy.target_mix(obs(n_tar=4, spot_ready=0))
        assert (before.spot_target, before.od_target) == (
            after.spot_target,
            after.od_target,
        )

    def test_counts_provisioning(self):
        assert ASGPolicy(ZONES).target_mix(obs()).count_provisioning_spot is True

    def test_single_region_enforced(self):
        with pytest.raises(ValueError):
            ASGPolicy(MULTI_REGION)

    def test_od_fraction_validation(self):
        with pytest.raises(ValueError):
            ASGPolicy(ZONES, od_fraction=1.5)

    def test_od_never_exceeds_total(self):
        policy = ASGPolicy(ZONES, od_fraction=0.1, min_od_replicas=5)
        mix = policy.target_mix(obs(n_tar=2))
        assert mix.od_target == 2
        assert mix.spot_target == 0


class TestAWSSpot:
    def test_pure_spot(self):
        mix = AWSSpotPolicy(ZONES).target_mix(obs(n_tar=4))
        assert mix.od_target == 0
        assert mix.spot_target == 4

    def test_does_not_count_provisioning(self):
        """The Fig. 12 over-request mechanism."""
        mix = AWSSpotPolicy(ZONES).target_mix(obs())
        assert mix.count_provisioning_spot is False

    def test_single_region_enforced(self):
        with pytest.raises(ValueError):
            AWSSpotPolicy(MULTI_REGION)

    def test_even_spread_placement(self):
        policy = AWSSpotPolicy(ZONES)
        policy.target_mix(obs(n_tar=3))
        placements = {}
        for _ in range(3):
            zone = policy.select_spot_zone(obs(n_tar=3, by_zone=placements))
            placements[zone] = placements.get(zone, 0) + 1
        assert placements == {z: 1 for z in ZONES}

    def test_relaunches_into_preempting_zones(self):
        """§5.1: the static spread has no preemption memory."""
        policy = AWSSpotPolicy(ZONES)
        policy.target_mix(obs(n_tar=3))
        policy.on_spot_preempted(ZONES[0])
        assert policy.select_spot_zone(obs(n_tar=3)) == ZONES[0]


class TestMArk:
    def test_spot_only_without_fallback(self):
        mix = MArkPolicy(ZONES).target_mix(obs(n_tar=4))
        assert mix.od_target == 0

    def test_over_requests_like_cpu_system(self):
        assert MArkPolicy(ZONES).target_mix(obs()).count_provisioning_spot is False

    def test_predicts_rising_trend(self):
        """Proactive autoscaling: a rising N_Tar trend is extrapolated."""
        policy = MArkPolicy(ZONES, prediction_horizon=600.0)
        for step, n in enumerate([1, 2, 3, 4]):
            mix = policy.target_mix(obs(now=step * 300.0, n_tar=n))
        assert mix.spot_target > 4

    def test_flat_load_not_inflated(self):
        policy = MArkPolicy(ZONES)
        for step in range(5):
            mix = policy.target_mix(obs(now=step * 300.0, n_tar=4))
        assert mix.spot_target == 4

    def test_never_below_reactive_target(self):
        """Falling trend must not starve the current load."""
        policy = MArkPolicy(ZONES, prediction_horizon=600.0)
        for step, n in enumerate([8, 6, 4, 2]):
            mix = policy.target_mix(obs(now=step * 300.0, n_tar=n))
        assert mix.spot_target >= 2

    def test_single_region_enforced(self):
        with pytest.raises(ValueError):
            MArkPolicy(MULTI_REGION)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            MArkPolicy(ZONES, history_window=0.0)


class TestSpotServe:
    def test_single_zone_pinned(self):
        policy = SingleZonePolicy(ZONES[0])
        assert policy.select_spot_zone(obs()) == ZONES[0]
        assert policy.select_spot_zone(obs(), frozenset([ZONES[0]])) is None

    def test_no_fallback(self):
        mix = SingleZonePolicy(ZONES[0]).target_mix(obs(n_tar=4))
        assert mix.od_target == 0
        assert mix.spot_target == 4

    def test_spec_matches_paper_setup(self):
        """OPT-6.7B on T4s with a 20 s timeout (§5.1)."""
        spec = spotserve_spec(fixed_target=4)
        assert spec.request_timeout == 20.0
        assert spec.resources.accelerator == "T4"
        assert spec.replica_policy.fixed_target == 4
