"""Smoke tests for shipped examples and configs.

The fast examples run end-to-end (interface drift in the public API
breaks them first); the shipped service-spec configs must always parse
and deploy.
"""

import json
import runpy
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestConfigs:
    @pytest.mark.parametrize(
        "name", ["llama2-70b-service.json", "opt-6.7b-spotserve.json"]
    )
    def test_config_parses_and_round_trips(self, name):
        from repro.serving import ServiceSpec

        data = json.loads((REPO / "configs" / name).read_text())
        spec = ServiceSpec.from_dict(data)
        assert ServiceSpec.from_dict(spec.to_dict()) == spec

    def test_llama_config_matches_listing1_knobs(self):
        from repro.serving import ServiceSpec

        data = json.loads((REPO / "configs" / "llama2-70b-service.json").read_text())
        spec = ServiceSpec.from_dict(data)
        assert spec.replica_policy.num_overprovision == 2
        assert spec.replica_policy.dynamic_ondemand_fallback is True
        assert spec.replica_policy.spot_placer == "dynamic"
        assert spec.readiness_probe_path == "/v1/chat/completions"

    def test_llama_config_deploys(self):
        from repro.core import spothedge
        from repro.cloud import HOUR
        from repro.experiments import e2e_trace
        from repro.serving import ServiceSpec, SkyService
        from repro.workloads import poisson_workload

        data = json.loads((REPO / "configs" / "llama2-70b-service.json").read_text())
        spec = ServiceSpec.from_dict(data)
        trace = e2e_trace("available", duration=HOUR, seed=1)
        service = SkyService(spec, spothedge(list(trace.zone_ids)), trace, seed=1)
        report = service.run(poisson_workload(HOUR, rate=0.1, seed=1), HOUR)
        assert report.total_requests > 0
        assert report.failure_rate < 0.5


class TestExampleScripts:
    """Run the fast examples as scripts (catches API drift)."""

    def _run(self, name, capsys):
        path = REPO / "examples" / name
        argv = sys.argv
        sys.argv = [str(path)]
        try:
            runpy.run_path(str(path), run_name="__main__")
        finally:
            sys.argv = argv
        return capsys.readouterr().out

    def test_quickstart(self, capsys):
        out = self._run("quickstart.py", capsys)
        assert "availability:" in out
        assert "SpotHedge" in out

    def test_heterogeneous_gpus(self, capsys):
        out = self._run("heterogeneous_gpus.py", capsys)
        assert "Heterogeneous tiers" in out

    def test_custom_policy(self, capsys):
        out = self._run("custom_policy.py", capsys)
        assert "FavouriteZone" in out
        assert "SpotHedge" in out

    def test_trace_replay_policies(self, capsys):
        out = self._run("trace_replay_policies.py", capsys)
        assert "Omniscient" in out
        assert "EvenSpread" in out
