"""Deployment/tenant spec validation, round-trips, and file loading."""

import json
from pathlib import Path

import pytest

from repro.control import DeploymentSpec, TenantSpec, load_deployment
from repro.serving import ServiceSpec

REPO_ROOT = Path(__file__).resolve().parents[2]


def tenant(name, **kwargs):
    return TenantSpec(service=ServiceSpec(name=name), **kwargs)


class TestTenantSpec:
    def test_defaults(self):
        t = tenant("a")
        assert t.name == "a"
        assert t.priority == 0
        assert t.qps_share == 1.0
        assert t.policy == "SpotHedge"

    def test_round_trip(self):
        t = tenant(
            "a", priority=3, qps_share=2.5, workload="maf", rate=0.7,
            policy="EvenSpread", profile="opt-6.7b",
        )
        assert TenantSpec.from_dict(t.to_dict()) == t

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(qps_share=0.0), "qps_share"),
            (dict(qps_share=-1.0), "qps_share"),
            (dict(rate=0.0), "rate"),
            (dict(workload="sinusoid"), "unknown workload"),
            (dict(policy="MagicHedge"), "unknown policy"),
            (dict(profile="gpt-5"), "unknown profile"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            tenant("a", **kwargs)


class TestDeploymentSpec:
    def test_round_trip(self):
        dep = DeploymentSpec(
            name="d",
            tenants=(tenant("a"), tenant("b", priority=1)),
            admission="strict_priority",
            scenario="capacity-blackout",
            hours=1.5,
        )
        assert DeploymentSpec.from_dict(dep.to_dict()) == dep
        assert dep.tenant_names == ("a", "b")
        assert dep.tenant("b").priority == 1

    def test_requires_tenants(self):
        with pytest.raises(ValueError, match="no tenants"):
            DeploymentSpec(name="d", tenants=())

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant names"):
            DeploymentSpec(name="d", tenants=(tenant("a"), tenant("a")))

    def test_unknown_admission_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown admission mode"):
            DeploymentSpec(name="d", tenants=(tenant("a"),), admission="fifo")

    def test_unknown_tenant_lookup(self):
        dep = DeploymentSpec(name="d", tenants=(tenant("a"),))
        with pytest.raises(KeyError, match="no tenant 'z'"):
            dep.tenant("z")

    def test_tenant_list_coerced_to_tuple(self):
        dep = DeploymentSpec(name="d", tenants=[tenant("a")])
        assert isinstance(dep.tenants, tuple)


class TestLoadDeployment:
    def test_load_json(self, tmp_path):
        dep = DeploymentSpec(name="d", tenants=(tenant("a"),))
        path = tmp_path / "dep.json"
        path.write_text(json.dumps(dep.to_dict()))
        assert load_deployment(path) == dep

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_deployment(tmp_path / "nope.json")

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "dep.toml"
        path.write_text("x = 1")
        with pytest.raises(ValueError, match="unsupported deployment spec"):
            load_deployment(path)

    def test_non_mapping_rejected(self, tmp_path):
        path = tmp_path / "dep.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="not a mapping"):
            load_deployment(path)

    def test_bundled_example_loads(self):
        dep = load_deployment(
            REPO_ROOT / "configs" / "deployments" / "three-tenants.json"
        )
        assert dep.name == "three-tenants"
        assert dep.tenant_names == ("chatbot-gold", "summarizer", "batch-eval")
        assert dep.scenario == "capacity-blackout"
        priorities = [t.priority for t in dep.tenants]
        assert len(set(priorities)) == 3, "example must exercise priorities"

    def test_bundled_yaml_twin_matches_json(self):
        yaml = pytest.importorskip("yaml")
        del yaml
        base = REPO_ROOT / "configs" / "deployments"
        assert load_deployment(base / "three-tenants.yaml") == load_deployment(
            base / "three-tenants.json"
        )
