"""N=1 equivalence: a single-tenant fleet IS the single-service sim.

The control plane's determinism contract (plane.py docstring): a
deployment with one tenant in ``fair_share`` mode uses the exact RNG
stream names of a :class:`SkyService` run, and the broker's fair-share
admission with no peers degenerates to "admit whenever there is room" —
so every number in the report reproduces the broker-less single-service
result bit for bit.  This is what makes all single-service results in
the repo trustworthy baselines for multi-tenant experiments.
"""

import pytest

from repro.cloud import HOUR, aws1
from repro.control import ControlPlane, DeploymentSpec, TenantSpec
from repro.control.plane import make_tenant_policy, make_tenant_workload
from repro.serving import ReplicaPolicyConfig, ServiceSpec, SkyService

SEED = 7
DURATION = HOUR


def single_tenant():
    return TenantSpec(
        service=ServiceSpec(
            name="solo",
            replica_policy=ReplicaPolicyConfig(
                fixed_target=4, num_overprovision=2
            ),
        ),
        workload="poisson",
        rate=0.3,
    )


@pytest.fixture(scope="module")
def reports():
    trace = aws1()
    tenant = single_tenant()

    deployment = DeploymentSpec(
        name="solo-fleet", tenants=(tenant,), admission="fair_share"
    )
    fleet = ControlPlane(deployment, trace, seed=SEED).run(DURATION)

    service = SkyService(
        tenant.service,
        make_tenant_policy(tenant, list(trace.zone_ids)),
        trace,
        seed=SEED,
    )
    workload = make_tenant_workload(tenant, DURATION, SEED)
    solo = service.run(workload, DURATION)
    return fleet.tenant("solo"), solo


class TestSingleTenantEquivalence:
    def test_request_counts_identical(self, reports):
        fleet, solo = reports
        assert fleet.total_requests == solo.total_requests
        assert fleet.completed == solo.completed
        assert fleet.failed == solo.failed

    def test_latency_identical(self, reports):
        fleet, solo = reports
        assert solo.latency is not None
        assert fleet.latency_p50 == solo.latency.p50
        assert fleet.latency_p90 == solo.latency.p90
        assert fleet.latency_p99 == solo.latency.p99

    def test_availability_and_disruptions_identical(self, reports):
        fleet, solo = reports
        assert fleet.availability == solo.availability
        assert fleet.preemptions == solo.preemptions
        assert fleet.launch_failures == solo.launch_failures

    def test_costs_identical(self, reports):
        fleet, solo = reports
        assert fleet.spot_cost == solo.spot_cost
        assert fleet.od_cost == solo.od_cost

    def test_broker_stayed_out_of_the_way(self, reports):
        fleet, _ = reports
        # Fair share with one tenant must never quota-reject or evict.
        assert fleet.rejected == 0
        assert fleet.evictions_won == 0
        assert fleet.evictions_suffered == 0
