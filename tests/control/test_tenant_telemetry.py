"""Tenant event kinds flow into metrics, run reports, and summaries."""

from repro.telemetry.events import (
    TenantAdmission,
    TenantCostSnapshot,
    TenantEviction,
    event_from_dict,
)
from repro.telemetry.metrics import MetricsSink
from repro.telemetry.render import format_summary
from repro.telemetry.report import build_report, render_dashboard


def sample_events():
    return [
        TenantAdmission(time=1.0, tenant="a", zone="z1", decision="admitted"),
        TenantAdmission(time=2.0, tenant="a", zone="z1", decision="rejected",
                        mode="fair_share"),
        TenantAdmission(time=3.0, tenant="b", zone="z2", decision="admitted"),
        TenantEviction(time=4.0, tenant="b", victim="a", zone="z1",
                       instance_id=9),
        TenantCostSnapshot(time=5.0, tenant="a", spot=1.5, on_demand=0.5,
                           total=2.0),
        TenantCostSnapshot(time=5.0, tenant="b", spot=3.0, on_demand=0.0,
                           total=3.0),
    ]


class TestTenantEvents:
    def test_round_trip_through_dict(self):
        for event in sample_events():
            assert event_from_dict(event.to_dict()) == event

    def test_metrics_sink_aggregates_by_tenant(self):
        sink = MetricsSink()
        for event in sample_events():
            sink.accept(event)
        admissions = sink.registry.get("tenant_admissions_total").children()
        assert admissions[("a", "admitted")].value == 1
        assert admissions[("a", "rejected")].value == 1
        assert admissions[("b", "admitted")].value == 1
        evictions = sink.registry.get("tenant_evictions_total").children()
        assert evictions[("b", "won")].value == 1
        assert evictions[("a", "suffered")].value == 1
        cost = sink.registry.get("tenant_cost_dollars").children()
        assert cost[("a", "total")].last == 2.0
        assert cost[("b", "spot")].last == 3.0


class TestTenantReportSections:
    def test_run_report_tenants_section(self):
        report = build_report(sample_events(), label="fleet")
        tenants = report.to_dict()["tenants"]
        assert tenants["a"]["admissions"] == {"admitted": 1, "rejected": 1}
        assert tenants["a"]["evictions"] == {"suffered": 1}
        assert tenants["b"]["evictions"] == {"won": 1}
        assert tenants["a"]["cost"]["total"] == 2.0

    def test_single_service_reports_have_no_tenants(self):
        assert build_report([]).to_dict()["tenants"] == {}

    def test_dashboard_renders_tenant_table(self):
        text = render_dashboard(build_report(sample_events()))
        assert "tenant" in text
        assert "a" in text and "b" in text

    def test_event_log_summary_renders_tenant_table(self):
        text = format_summary(sample_events())
        assert "tenants:" in text
        assert "$2.00" in text
        assert "$3.00" in text
