"""CapacityBroker admission: quotas, fair share, priority eviction."""

import numpy as np
import pytest

from repro.cloud import CloudConfig, SimCloud, SpotTrace
from repro.cloud.instance import InstanceCallbacks, InstanceState
from repro.control import CapacityBroker, TenantSpec
from repro.serving import ServiceSpec
from repro.sim import SimulationEngine
from repro.sim.rng import RngRegistry

STEP = 300.0
ZONES = ["aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b"]
ZONE = ZONES[0]
ITYPE = "g5.48xlarge"


def tenant(name, prio=0, share=1.0):
    return TenantSpec(
        service=ServiceSpec(name=name),
        priority=prio,
        qps_share=share,
        workload="poisson",
        rate=0.1,
    )


def make_broker(tenants, capacity=4, mode="fair_share", seed=0):
    trace = SpotTrace(
        "broker-test",
        ZONES,
        STEP,
        np.full((len(ZONES), 48), capacity, dtype=np.int64),
    )
    rng = RngRegistry(seed)
    engine = SimulationEngine()
    cloud = SimCloud(engine, trace, rng=rng, config=CloudConfig())
    broker = CapacityBroker(cloud, tenants, mode=mode, rng=rng)
    return engine, cloud, broker


class TestQuotas:
    def test_even_split(self):
        _, _, broker = make_broker([tenant("a"), tenant("b")], capacity=4)
        assert broker.quotas(ZONE) == {"a": 2, "b": 2}

    def test_weighted_split(self):
        _, _, broker = make_broker(
            [tenant("a", share=1.0), tenant("b", share=3.0)], capacity=4
        )
        assert broker.quotas(ZONE) == {"a": 1, "b": 3}

    def test_remainder_follows_arbitration_order(self):
        _, _, broker = make_broker([tenant("a"), tenant("b")], capacity=5)
        quotas = broker.quotas(ZONE)
        assert sum(quotas.values()) == 5
        assert sorted(quotas.values()) == [2, 3]
        winner = min(quotas, key=lambda n: broker.arbitration_rank[n])
        assert quotas[winner] == 3

    def test_arbitration_is_seed_deterministic(self):
        ranks = [
            make_broker([tenant("a"), tenant("b"), tenant("c")], seed=7)[
                2
            ].arbitration_rank
            for _ in range(2)
        ]
        assert ranks[0] == ranks[1]


class TestFairShare:
    def test_under_quota_requests_admitted(self):
        engine, cloud, broker = make_broker([tenant("a"), tenant("b")], capacity=4)
        view = broker.view("a")
        for _ in range(2):
            view.request_instance(ZONE, ITYPE, spot=True)
        assert broker.admitted["a"] == 2
        assert broker.rejected["a"] == 0
        assert broker.spot_holdings("a", ZONE) == 2

    def test_over_quota_rejected_while_peer_quota_reserved(self):
        engine, cloud, broker = make_broker([tenant("a"), tenant("b")], capacity=4)
        view = broker.view("a")
        failed = []
        for _ in range(2):
            view.request_instance(ZONE, ITYPE, spot=True)
        third = view.request_instance(
            ZONE, ITYPE, spot=True,
            callbacks=InstanceCallbacks(on_failed=failed.append),
        )
        assert broker.rejected["a"] == 1
        assert broker.spot_holdings("a", ZONE) == 2
        # The denial surfaces exactly like InsufficientCapacity: the
        # instance dies after failure_detect_delay, not instantly.
        assert not failed
        engine.run_until(cloud.config.failure_detect_delay + 1.0)
        assert failed == [third]
        assert third.state is InstanceState.FAILED

    def test_single_tenant_never_quota_rejected(self):
        engine, cloud, broker = make_broker([tenant("a")], capacity=2)
        view = broker.view("a")
        for _ in range(3):
            view.request_instance(ZONE, ITYPE, spot=True)
        # Third request hits the cloud's own no-room path (passthrough),
        # never the broker's quota rejection — the N=1 equivalence.
        assert broker.rejected["a"] == 0
        assert broker.spot_holdings("a", ZONE) == 2

    def test_terminate_releases_holdings(self):
        engine, cloud, broker = make_broker([tenant("a"), tenant("b")], capacity=4)
        view = broker.view("a")
        instance = view.request_instance(ZONE, ITYPE, spot=True)
        assert broker.spot_holdings("a", ZONE) == 1
        view.terminate(instance)
        assert broker.spot_holdings("a", ZONE) == 0

    def test_on_demand_not_metered_but_billed(self):
        engine, cloud, broker = make_broker([tenant("a"), tenant("b")], capacity=0)
        view = broker.view("a")
        view.request_instance(ZONE, ITYPE, spot=False)
        assert broker.rejected["a"] == 0
        engine.run_until(3600.0)
        bill = broker.billing.tenant_breakdown("a", engine.now)
        assert bill.on_demand > 0
        assert broker.billing.tenant_breakdown("b", engine.now).total == 0.0


class TestStrictPriority:
    def test_high_priority_evicts_lowest(self):
        engine, cloud, broker = make_broker(
            [tenant("lo", prio=0), tenant("hi", prio=1)],
            capacity=2,
            mode="strict_priority",
        )
        preempted = []
        lo = broker.view("lo")
        victims = [
            lo.request_instance(
                ZONE, ITYPE, spot=True,
                callbacks=InstanceCallbacks(on_preempted=preempted.append),
            )
            for _ in range(2)
        ]
        # Let the victims reach READY: evicting a ready VM is a real
        # preemption, evicting a provisioning one is a launch failure.
        engine.run_until(600.0)
        assert all(i.state is InstanceState.READY for i in victims)
        assert cloud.spot_room(ZONE) == 0
        hi = broker.view("hi")
        hi.request_instance(ZONE, ITYPE, spot=True)
        assert broker.evictions_won["hi"] == 1
        assert broker.evictions_suffered["lo"] == 1
        assert len(preempted) == 1
        assert preempted[0].state is InstanceState.PREEMPTED
        assert broker.spot_holdings("lo", ZONE) == 1
        assert broker.spot_holdings("hi", ZONE) == 1

    def test_low_priority_cannot_evict_upward(self):
        engine, cloud, broker = make_broker(
            [tenant("lo", prio=0), tenant("hi", prio=1)],
            capacity=1,
            mode="strict_priority",
        )
        broker.view("hi").request_instance(ZONE, ITYPE, spot=True)
        broker.view("lo").request_instance(ZONE, ITYPE, spot=True)
        assert broker.evictions_won["lo"] == 0
        assert broker.evictions_suffered["hi"] == 0
        assert broker.spot_holdings("hi", ZONE) == 1

    def test_equal_priority_never_evicts(self):
        engine, cloud, broker = make_broker(
            [tenant("a", prio=1), tenant("b", prio=1)],
            capacity=1,
            mode="strict_priority",
        )
        broker.view("a").request_instance(ZONE, ITYPE, spot=True)
        broker.view("b").request_instance(ZONE, ITYPE, spot=True)
        assert broker.evictions_won == {"a": 0, "b": 0}

    def test_victim_is_oldest_instance_of_lowest_priority(self):
        engine, cloud, broker = make_broker(
            [tenant("lo", prio=0), tenant("mid", prio=1), tenant("hi", prio=2)],
            capacity=2,
            mode="strict_priority",
        )
        first = broker.view("lo").request_instance(ZONE, ITYPE, spot=True)
        broker.view("mid").request_instance(ZONE, ITYPE, spot=True)
        engine.run_until(600.0)
        assert first.state is InstanceState.READY
        broker.view("hi").request_instance(ZONE, ITYPE, spot=True)
        assert broker.evictions_suffered["lo"] == 1
        assert broker.evictions_suffered["mid"] == 0
        assert first.state is InstanceState.PREEMPTED


class TestSharedBilling:
    def test_tenant_bills_sum_to_fleet_bill(self):
        engine, cloud, broker = make_broker([tenant("a"), tenant("b")], capacity=4)
        broker.view("a").request_instance(ZONE, ITYPE, spot=True)
        broker.view("b").request_instance(ZONE, ITYPE, spot=True)
        broker.view("b").request_instance(ZONE, ITYPE, spot=False)
        engine.run_until(3600.0)
        now = engine.now
        fleet = broker.billing.breakdown(now)
        parts = [
            broker.billing.tenant_breakdown(name, now) for name in ("a", "b")
        ]
        assert fleet.spot == pytest.approx(sum(p.spot for p in parts))
        assert fleet.on_demand == pytest.approx(sum(p.on_demand for p in parts))
        assert fleet.total > 0

    def test_unknown_tenant_rejected(self):
        _, _, broker = make_broker([tenant("a")])
        with pytest.raises(KeyError):
            broker.view("nope")
        with pytest.raises(KeyError):
            broker.billing.charge_to("nope")


class TestBrokerValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown admission mode"):
            make_broker([tenant("a")], mode="lottery")

    def test_no_tenants(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            make_broker([])
