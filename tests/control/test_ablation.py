"""The 1-vs-N contention ablation: structure and determinism."""

import json

import numpy as np
import pytest

from repro.cloud import SpotTrace
from repro.control import DeploymentSpec, TenantSpec, run_contention_ablation
from repro.serving import ReplicaPolicyConfig, ServiceSpec

STEP = 300.0
ZONES = ["aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b"]


def tight_trace(capacity=3, n_steps=12):
    """A deliberately capacity-starved trace so tenants contend."""
    return SpotTrace(
        "tight", ZONES, STEP, np.full((2, n_steps), capacity, dtype=np.int64)
    )


def deployment():
    def tenant(name, prio, share):
        return TenantSpec(
            service=ServiceSpec(
                name=name, replica_policy=ReplicaPolicyConfig(fixed_target=3)
            ),
            priority=prio,
            qps_share=share,
            workload="poisson",
            rate=0.2,
        )

    return DeploymentSpec(
        name="contend",
        tenants=(tenant("gold", 1, 2.0), tenant("bronze", 0, 1.0)),
        hours=1.0,
    )


@pytest.fixture(scope="module")
def result():
    return run_contention_ablation(deployment(), tight_trace(), seed=3)


class TestAblationStructure:
    def test_covers_all_tenants_and_modes(self, result):
        assert set(result.solo) == {"gold", "bronze"}
        assert result.fair_share.admission == "fair_share"
        assert result.strict_priority.admission == "strict_priority"
        rows = result.rows()
        assert [r["tenant"] for r in rows] == ["gold", "bronze"]
        for row in rows:
            assert set(row["availability"]) == {
                "solo", "fair_share", "strict_priority"
            }
            for value in row["availability"].values():
                assert 0.0 <= value <= 1.0

    def test_contention_is_measurable(self, result):
        """On a starved trace, sharing must cost somebody something:
        the broker rejects or evicts, and at least one tenant's
        availability drops below its solo baseline."""
        fleets = (result.fair_share, result.strict_priority)
        pressure = sum(
            r.rejected + r.evictions_won for f in fleets for r in f.tenants
        )
        assert pressure > 0
        degraded = [
            row["tenant"]
            for row in result.rows()
            if min(
                row["availability"]["fair_share"],
                row["availability"]["strict_priority"],
            )
            < row["availability"]["solo"]
        ]
        assert degraded, "no tenant lost availability under contention"

    def test_solo_runs_are_single_tenant(self, result):
        for name, fleet in result.solo.items():
            assert [r.tenant for r in fleet.tenants] == [name]
            assert fleet.tenant(name).rejected == 0

    def test_json_artifact_canonical(self, result):
        text = result.to_json()
        data = json.loads(text)
        assert data["schema"] == "repro.control.ablation/v1"
        assert data["seed"] == 3
        assert text == json.dumps(data, sort_keys=True, indent=2) + "\n"


class TestAblationDeterminism:
    def test_repeat_is_byte_identical(self, result):
        again = run_contention_ablation(deployment(), tight_trace(), seed=3)
        assert again.to_json() == result.to_json()
