"""ControlPlane fleet runs and the canonical FleetReport artifact."""

import json

import pytest

from repro.cloud import HOUR, aws1
from repro.control import ControlPlane, DeploymentSpec, FleetReport, TenantSpec
from repro.serving import ReplicaPolicyConfig, ServiceSpec


def tenant(name, target=2, **kwargs):
    kwargs.setdefault("workload", "poisson")
    kwargs.setdefault("rate", 0.2)
    return TenantSpec(
        service=ServiceSpec(
            name=name,
            replica_policy=ReplicaPolicyConfig(fixed_target=target),
        ),
        **kwargs,
    )


def two_tenant_deployment(**kwargs):
    kwargs.setdefault("hours", 0.5)
    return DeploymentSpec(
        name="pair",
        tenants=(
            tenant("a", priority=1, qps_share=2.0),
            tenant("b", policy="EvenSpread", profile="opt-6.7b"),
        ),
        **kwargs,
    )


class TestControlPlane:
    def test_fleet_run_produces_complete_report(self):
        plane = ControlPlane(two_tenant_deployment(), aws1(), seed=5)
        fleet = plane.run()
        assert fleet.deployment == "pair"
        assert fleet.admission == "fair_share"
        assert fleet.seed == 5
        assert fleet.duration == pytest.approx(0.5 * HOUR)
        assert {r.tenant for r in fleet.tenants} == {"a", "b"}
        for report in fleet.tenants:
            assert report.total_requests > 0
            assert report.completed + report.failed <= report.total_requests
            assert 0.0 <= report.availability <= 1.0
            assert report.total_cost > 0
        assert fleet.tenant("b").policy == "EvenSpread"
        with pytest.raises(KeyError):
            fleet.tenant("z")

    def test_tenant_costs_sum_to_fleet_cost(self):
        plane = ControlPlane(two_tenant_deployment(), aws1(), seed=5)
        fleet = plane.run()
        assert fleet.fleet_spot_cost == pytest.approx(
            sum(r.spot_cost for r in fleet.tenants)
        )
        assert fleet.fleet_od_cost == pytest.approx(
            sum(r.od_cost for r in fleet.tenants)
        )
        assert fleet.fleet_total_cost > 0

    def test_report_json_is_canonical(self):
        plane = ControlPlane(two_tenant_deployment(), aws1(), seed=5)
        text = plane.run().to_json()
        data = json.loads(text)
        assert data["schema"] == "repro.control/v1"
        assert set(data["tenants"]) == {"a", "b"}
        # Canonical form: sorted keys, 2-space indent, trailing newline.
        assert text == json.dumps(data, sort_keys=True, indent=2) + "\n"

    def test_status_covers_every_tenant(self):
        plane = ControlPlane(two_tenant_deployment(), aws1(), seed=5)
        plane.run(600.0)
        status = plane.status()
        assert set(status) == {"a", "b"}

    def test_report_before_run_raises(self):
        plane = ControlPlane(two_tenant_deployment(), aws1(), seed=5)
        with pytest.raises(RuntimeError, match="run\\(\\)"):
            plane.report()

    def test_scenario_arms_against_shared_cloud(self):
        dep = two_tenant_deployment(scenario="capacity-blackout", hours=0.5)
        plane = ControlPlane(dep, aws1(), seed=5)
        fleet = plane.run()
        assert fleet.scenario == "capacity-blackout"
        assert plane.injector is not None

    def test_unknown_profile_or_policy_guarded_by_spec(self):
        with pytest.raises(ValueError):
            tenant("a", policy="Mystery")
        with pytest.raises(ValueError):
            tenant("a", profile="mystery-model")


class TestFleetReportShape:
    def test_fleet_section_aggregates(self):
        plane = ControlPlane(two_tenant_deployment(), aws1(), seed=5)
        fleet = plane.run()
        data = fleet.to_dict()
        assert data["fleet"]["preemptions"] == sum(
            r.preemptions for r in fleet.tenants
        )
        assert data["fleet"]["cost"]["total"] == pytest.approx(
            data["fleet"]["cost"]["spot"] + data["fleet"]["cost"]["on_demand"],
            abs=1e-5,
        )

    def test_round_trip_fields(self):
        report = FleetReport(
            deployment="d",
            admission="fair_share",
            trace="t",
            scenario=None,
            seed=0,
            duration=60.0,
            tenants=(),
            fleet_spot_cost=1.0,
            fleet_od_cost=2.0,
        )
        assert report.fleet_total_cost == 3.0
        assert json.loads(report.to_json())["duration"] == 60.0
