"""Byte-identical multi-tenant reports: repeats and PYTHONHASHSEED."""

import subprocess
import sys
from pathlib import Path

from repro.cloud import aws1
from repro.control import ControlPlane, DeploymentSpec, TenantSpec
from repro.serving import ReplicaPolicyConfig, ServiceSpec

REPO_ROOT = Path(__file__).resolve().parents[2]

_SNIPPET = """
from repro.cloud import aws1
from repro.control import ControlPlane, DeploymentSpec, TenantSpec
from repro.serving import ReplicaPolicyConfig, ServiceSpec

def tenant(name, **kwargs):
    return TenantSpec(
        service=ServiceSpec(
            name=name, replica_policy=ReplicaPolicyConfig(fixed_target=2)
        ),
        workload="poisson", rate=0.2, **kwargs,
    )

deployment = DeploymentSpec(
    name="hash-check",
    tenants=(tenant("a", qps_share=2.0, priority=1), tenant("b")),
    admission="strict_priority",
    hours=0.25,
)
fleet = ControlPlane(deployment, aws1(), seed=13).run()
import sys
sys.stdout.write(fleet.to_json())
"""


def small_deployment(admission="fair_share"):
    def tenant(name, **kwargs):
        return TenantSpec(
            service=ServiceSpec(
                name=name, replica_policy=ReplicaPolicyConfig(fixed_target=2)
            ),
            workload="poisson",
            rate=0.2,
            **kwargs,
        )

    return DeploymentSpec(
        name="repeat-check",
        tenants=(tenant("a", qps_share=2.0), tenant("b")),
        admission=admission,
        hours=0.25,
    )


def run_json(deployment, seed=13):
    return ControlPlane(deployment, aws1(), seed=seed).run().to_json()


class TestRepeatedInvocations:
    def test_fair_share_reports_byte_identical(self):
        dep = small_deployment()
        assert run_json(dep) == run_json(dep)

    def test_strict_priority_reports_byte_identical(self):
        dep = small_deployment(admission="strict_priority")
        assert run_json(dep) == run_json(dep)

    def test_seed_changes_the_run(self):
        dep = small_deployment()
        assert run_json(dep, seed=13) != run_json(dep, seed=14)


class TestHashSeedIndependence:
    def test_report_bytes_survive_hash_randomisation(self):
        """The fleet artifact must not depend on dict/set iteration
        order: two interpreters with different PYTHONHASHSEED values
        produce the same bytes."""
        outputs = []
        for hash_seed in ("0", "4242"):
            result = subprocess.run(
                [sys.executable, "-c", _SNIPPET],
                capture_output=True,
                text=True,
                cwd=REPO_ROOT,
                env={
                    "PYTHONPATH": str(REPO_ROOT / "src"),
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": "/usr/bin:/bin",
                },
            )
            assert result.returncode == 0, result.stderr
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        assert '"schema": "repro.control/v1"' in outputs[0]
