"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.cloud import aws1


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.trace == "aws1"
        assert args.workload == "arena"
        assert args.target == 4

    def test_compare_scenario_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare"])
        args = build_parser().parse_args(["compare", "volatile"])
        assert args.scenario == "volatile"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy"])


class TestReplayCommand:
    def test_replay_prints_all_policies(self, capsys):
        assert main(["replay", "--trace", "aws1", "--target", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("SpotHedge", "RoundRobin", "EvenSpread", "OnDemand"):
            assert name in out
        assert "availability" in out

    def test_json_export(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        assert main(["replay", "--trace", "aws1", "--target", "2",
                     "--json", str(out)]) == 0
        data = json.loads(out.read_text())
        assert set(data["experiments"]["replay"]) == {
            "SpotHedge", "RoundRobin", "EvenSpread", "OnDemand",
        }
        assert data["metadata"]["n_tar"] == 2

    def test_deterministic_output(self, capsys):
        main(["replay", "--trace", "aws1", "--target", "2"])
        first = capsys.readouterr().out
        main(["replay", "--trace", "aws1", "--target", "2"])
        second = capsys.readouterr().out
        assert first == second


class TestTraceCommand:
    def test_summary(self, capsys):
        assert main(["trace", "aws1"]) == 0
        out = capsys.readouterr().out
        assert "AWS 1" in out
        assert "us-west-2a" in out

    def test_export_json_round_trips(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        assert main(["trace", "aws1", "--out", str(out_path)]) == 0
        from repro.cloud import SpotTrace

        restored = SpotTrace.load(out_path)
        assert restored.zone_ids == aws1().zone_ids

    def test_export_csv(self, tmp_path):
        out_path = tmp_path / "t.csv"
        assert main(["trace", "gcp1", "--out", str(out_path)]) == 0
        assert out_path.read_text().startswith("zone,time,capacity")

    def test_unknown_trace_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "azure9"])

    def test_loading_exported_trace_file(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        main(["trace", "aws1", "--out", str(out_path)])
        assert main(["trace", str(out_path)]) == 0
        assert "AWS 1" in capsys.readouterr().out


class TestAnalyzeCommand:
    def test_analyze_prints_correlation_and_curve(self, capsys):
        assert main(["analyze", "--trace", "gcp1"]) == 0
        out = capsys.readouterr().out
        assert "intra-region" in out
        assert "search space" in out


class TestServeCommand:
    def test_serve_short_run(self, capsys):
        assert main([
            "serve", "--trace", "aws1", "--hours", "0.5",
            "--workload", "poisson", "--rate", "0.1", "--target", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "availability:" in out
        assert "final replica status:" in out

    def test_serve_with_spec_file(self, tmp_path, capsys):
        spec = {
            "name": "from-file",
            "replica_policy": {"fixed_target": 2, "num_overprovision": 1},
            "resources": {"accelerator": "V100"},
            "request_timeout": 60.0,
        }
        spec_path = tmp_path / "svc.json"
        spec_path.write_text(json.dumps(spec))
        assert main([
            "serve", "--trace", "aws1", "--spec", str(spec_path),
            "--hours", "0.5", "--workload", "poisson", "--rate", "0.1",
        ]) == 0
        assert "from-file" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_short_run(self, capsys):
        assert main([
            "compare", "volatile", "--hours", "0.5", "--rate", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        for name in ("SkyServe", "ASG", "AWSSpot", "MArk"):
            assert name in out
        assert "cost vs OD" in out

    def test_compare_json_export(self, tmp_path, capsys):
        out_path = tmp_path / "cmp.json"
        assert main([
            "compare", "available", "--hours", "0.5", "--rate", "0.3",
            "--json", str(out_path),
        ]) == 0
        data = json.loads(out_path.read_text())
        assert set(data["experiments"]["compare"]) == {
            "SkyServe", "ASG", "AWSSpot", "MArk",
        }
        assert data["metadata"]["scenario"] == "available"
