"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.cloud import aws1


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.trace == "aws1"
        assert args.workload == "arena"
        assert args.target == 4

    def test_compare_scenario_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare"])
        args = build_parser().parse_args(["compare", "volatile"])
        assert args.scenario == "volatile"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy"])


class TestReplayCommand:
    def test_replay_prints_all_policies(self, capsys):
        assert main(["replay", "--trace", "aws1", "--target", "2"]) == 0
        out = capsys.readouterr().out
        for name in ("SpotHedge", "RoundRobin", "EvenSpread", "OnDemand"):
            assert name in out
        assert "availability" in out

    def test_json_export(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        assert main(["replay", "--trace", "aws1", "--target", "2",
                     "--json", str(out)]) == 0
        data = json.loads(out.read_text())
        assert set(data["experiments"]["replay"]) == {
            "SpotHedge", "RoundRobin", "EvenSpread", "OnDemand",
        }
        assert data["metadata"]["n_tar"] == 2

    def test_deterministic_output(self, capsys):
        main(["replay", "--trace", "aws1", "--target", "2"])
        first = capsys.readouterr().out
        main(["replay", "--trace", "aws1", "--target", "2"])
        second = capsys.readouterr().out
        assert first == second


class TestTraceCommand:
    def test_summary(self, capsys):
        assert main(["trace", "aws1"]) == 0
        out = capsys.readouterr().out
        assert "AWS 1" in out
        assert "us-west-2a" in out

    def test_export_json_round_trips(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        assert main(["trace", "aws1", "--out", str(out_path)]) == 0
        from repro.cloud import SpotTrace

        restored = SpotTrace.load(out_path)
        assert restored.zone_ids == aws1().zone_ids

    def test_export_csv(self, tmp_path):
        out_path = tmp_path / "t.csv"
        assert main(["trace", "gcp1", "--out", str(out_path)]) == 0
        assert out_path.read_text().startswith("zone,time,capacity")

    def test_unknown_trace_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "azure9"])

    def test_loading_exported_trace_file(self, tmp_path, capsys):
        out_path = tmp_path / "t.json"
        main(["trace", "aws1", "--out", str(out_path)])
        assert main(["trace", str(out_path)]) == 0
        assert "AWS 1" in capsys.readouterr().out


class TestAnalyzeCommand:
    def test_analyze_prints_correlation_and_curve(self, capsys):
        assert main(["analyze", "--trace", "gcp1"]) == 0
        out = capsys.readouterr().out
        assert "intra-region" in out
        assert "search space" in out


class TestServeCommand:
    def test_serve_short_run(self, capsys):
        assert main([
            "serve", "--trace", "aws1", "--hours", "0.5",
            "--workload", "poisson", "--rate", "0.1", "--target", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "availability:" in out
        assert "final replica status:" in out

    def test_serve_with_spec_file(self, tmp_path, capsys):
        spec = {
            "name": "from-file",
            "replica_policy": {"fixed_target": 2, "num_overprovision": 1},
            "resources": {"accelerator": "V100"},
            "request_timeout": 60.0,
        }
        spec_path = tmp_path / "svc.json"
        spec_path.write_text(json.dumps(spec))
        assert main([
            "serve", "--trace", "aws1", "--spec", str(spec_path),
            "--hours", "0.5", "--workload", "poisson", "--rate", "0.1",
        ]) == 0
        assert "from-file" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_short_run(self, capsys):
        assert main([
            "compare", "volatile", "--hours", "0.5", "--rate", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        for name in ("SkyServe", "ASG", "AWSSpot", "MArk"):
            assert name in out
        assert "cost vs OD" in out

    def test_compare_json_export(self, tmp_path, capsys):
        out_path = tmp_path / "cmp.json"
        assert main([
            "compare", "available", "--hours", "0.5", "--rate", "0.3",
            "--json", str(out_path),
        ]) == 0
        data = json.loads(out_path.read_text())
        assert set(data["experiments"]["compare"]) == {
            "SkyServe", "ASG", "AWSSpot", "MArk",
        }
        assert data["metadata"]["scenario"] == "available"


class TestEventsCommand:
    def _serve_with_events(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        assert main([
            "serve", "--trace", "aws1", "--hours", "0.3", "--rate", "0.2",
            "--events", str(log),
        ]) == 0
        capsys.readouterr()  # discard the serve report
        return log

    def test_serve_then_summarize(self, tmp_path, capsys):
        log = self._serve_with_events(tmp_path, capsys)
        assert log.exists()
        assert main(["events", str(log)]) == 0
        out = capsys.readouterr().out
        assert "events by kind:" in out
        assert "replica timeline:" in out
        assert "request spans:" in out

    def test_timeline_and_kind_filter(self, tmp_path, capsys):
        log = self._serve_with_events(tmp_path, capsys)
        assert main(["events", str(log), "--timeline",
                     "--kind", "replica.launch"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert lines
        assert all("replica.launch" in line for line in lines)

    def test_missing_log_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["events", str(tmp_path / "nope.jsonl")])

    def test_metrics_out_writes_prometheus_text(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        assert main([
            "serve", "--trace", "aws1", "--hours", "0.3", "--rate", "0.2",
            "--metrics-out", str(metrics),
        ]) == 0
        text = metrics.read_text()
        assert "# TYPE repro_events_total counter" in text
        assert "repro_events_total{" in text

    def test_log_level_flag_accepted(self, capsys):
        assert main([
            "--log-level", "ERROR",
            "serve", "--trace", "aws1", "--hours", "0.2", "--rate", "0.2",
        ]) == 0


class TestReportCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["report", "--replay"])
        assert args.replay
        assert args.trace == "gcp1"
        assert args.policy == "SpotHedge"
        assert args.top_k == 8

    def test_requires_log_or_replay(self):
        with pytest.raises(SystemExit, match="--replay"):
            main(["report"])

    def test_missing_log_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="no such event log"):
            main(["report", str(tmp_path / "nope.jsonl")])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit, match="unknown policy"):
            main(["report", "--replay", "--policy", "Nope"])

    def test_replay_dashboard(self, capsys):
        assert main(["report", "--replay", "--trace", "aws1",
                     "--target", "2"]) == 0
        out = capsys.readouterr().out
        assert "SpotHedge@AWS 1 seed=0" in out
        assert "fleet" in out
        assert "cost" in out

    def test_replay_json_byte_identical_across_invocations(
        self, tmp_path, capsys
    ):
        argv = ["report", "--replay", "--trace", "aws1", "--target", "2",
                "--no-dashboard"]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(argv + ["--json", str(a)]) == 0
        assert main(argv + ["--json", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        data = json.loads(a.read_text())
        assert data["schema"] == "repro.report/v1"
        assert data["label"] == "SpotHedge@AWS 1 seed=0"

    def test_report_from_serve_event_log(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        assert main([
            "serve", "--trace", "aws1", "--hours", "0.3", "--rate", "0.2",
            "--events", str(log),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(log)]) == 0
        out = capsys.readouterr().out
        assert log.name in out
        assert "latency" in out


class TestSweepCommand:
    def _env(self, monkeypatch, tmp_path):
        from repro.experiments import ReplayCache

        monkeypatch.setenv(ReplayCache.ENV_VAR, str(tmp_path / "cache"))

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.trace == "gcp1"
        assert args.workers == 1
        assert args.policies == "SpotHedge"
        assert not args.no_cache

    def test_workers_default_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "4")
        args = build_parser().parse_args(["sweep"])
        assert args.workers == 4

    def test_sweep_populates_and_reuses_cache(self, tmp_path, monkeypatch, capsys):
        self._env(monkeypatch, tmp_path)
        argv = ["sweep", "--trace", "aws1", "--n-tar", "2,3",
                "--cold-start", "0,120"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "4 points" in first
        assert "4 new, 0 reused" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 new, 4 reused" in second

    def test_no_cache_skips_cache(self, tmp_path, monkeypatch, capsys):
        self._env(monkeypatch, tmp_path)
        assert main(["sweep", "--trace", "aws1", "--n-tar", "2",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "cache" not in out
        assert not (tmp_path / "cache").exists()

    def test_clear_cache(self, tmp_path, monkeypatch, capsys):
        self._env(monkeypatch, tmp_path)
        main(["sweep", "--trace", "aws1", "--n-tar", "2,3"])
        capsys.readouterr()
        assert main(["sweep", "--clear-cache"]) == 0
        assert "cleared 2 cached" in capsys.readouterr().out

    def test_parallel_sweep_matches_serial_output(
        self, tmp_path, monkeypatch, capsys
    ):
        self._env(monkeypatch, tmp_path)
        argv = ["sweep", "--trace", "aws1", "--n-tar", "2,3", "--no-cache"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        # Identical except for the reported worker count.
        assert serial.replace("workers=1", "") == parallel.replace("workers=2", "")

    def test_progress_written_to_stderr(self, tmp_path, monkeypatch, capsys):
        self._env(monkeypatch, tmp_path)
        assert main(["sweep", "--trace", "aws1", "--n-tar", "2,3",
                     "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[1/2]" in err
        assert "[2/2]" in err
        assert "ok" in err

    def test_json_export(self, tmp_path, monkeypatch, capsys):
        self._env(monkeypatch, tmp_path)
        out_path = tmp_path / "sweep.json"
        assert main(["sweep", "--trace", "aws1", "--n-tar", "2,3",
                     "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        labels = set(data["experiments"]["sweep"])
        assert labels == {
            "policy=SpotHedge,n_tar=2,cold_start=180.0,k=3.0",
            "policy=SpotHedge,n_tar=3,cold_start=180.0,k=3.0",
        }
        assert data["metadata"]["trace"] == "AWS 1"

    def test_unknown_policy_rejected(self, tmp_path, monkeypatch):
        self._env(monkeypatch, tmp_path)
        with pytest.raises(SystemExit):
            main(["sweep", "--policies", "Nope"])

    def test_bad_axis_value_rejected(self, tmp_path, monkeypatch):
        self._env(monkeypatch, tmp_path)
        with pytest.raises(SystemExit):
            main(["sweep", "--n-tar", "two"])
