"""Unit tests for requests and workload containers."""

import numpy as np
import pytest

from repro.workloads import Request, Workload


def make_workload(arrivals):
    return Workload(
        "w",
        [Request(i, t, input_tokens=10, output_tokens=20) for i, t in enumerate(arrivals)],
    )


class TestRequest:
    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Request(0, -1.0, 10, 10)

    def test_zero_tokens_rejected(self):
        with pytest.raises(ValueError):
            Request(0, 0.0, 0, 10)
        with pytest.raises(ValueError):
            Request(0, 0.0, 10, 0)


class TestWorkload:
    def test_out_of_order_rejected(self):
        with pytest.raises(ValueError):
            make_workload([2.0, 1.0])

    def test_len_and_iter(self):
        workload = make_workload([0.0, 1.0, 2.0])
        assert len(workload) == 3
        assert [r.arrival_time for r in workload] == [0.0, 1.0, 2.0]

    def test_duration(self):
        assert make_workload([0.0, 5.0]).duration == 5.0
        assert make_workload([]).duration == 0.0

    def test_interarrival_times(self):
        workload = make_workload([0.0, 1.0, 3.0])
        np.testing.assert_allclose(workload.interarrival_times(), [1.0, 2.0])

    def test_interarrival_empty_for_single_request(self):
        assert make_workload([1.0]).interarrival_times().size == 0

    def test_mean_rate(self):
        workload = make_workload([0.0, 1.0, 2.0, 3.0, 4.0])
        assert workload.mean_rate() == pytest.approx(5 / 4)

    def test_rate_series_bins(self):
        workload = make_workload([0.0, 30.0, 70.0])
        times, rates = workload.rate_series(bin_seconds=60.0)
        np.testing.assert_allclose(times, [0.0, 60.0])
        np.testing.assert_allclose(rates, [2 / 60, 1 / 60])

    def test_rate_series_invalid_bin(self):
        with pytest.raises(ValueError):
            make_workload([0.0]).rate_series(0.0)

    def test_burstiness_of_regular_arrivals_is_zero(self):
        workload = make_workload([float(i) for i in range(100)])
        assert workload.burstiness() == pytest.approx(0.0)

    def test_slice_retimes(self):
        workload = make_workload([0.0, 10.0, 20.0, 30.0])
        window = workload.slice(10.0, 30.0)
        assert [r.arrival_time for r in window] == [0.0, 10.0]

    def test_slice_empty_window_rejected(self):
        with pytest.raises(ValueError):
            make_workload([0.0]).slice(5.0, 5.0)
