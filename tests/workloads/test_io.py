"""Tests for workload trace round-trips."""

import pytest

from repro.cloud import HOUR
from repro.workloads import (
    Request,
    Workload,
    arena_workload,
    load_requests_csv,
    save_requests_csv,
)


class TestRequestCsv:
    def test_round_trip(self, tmp_path):
        original = arena_workload(HOUR, base_rate=0.5, seed=3)
        path = tmp_path / "arena.csv"
        save_requests_csv(original, path)
        restored = load_requests_csv(path)
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a.arrival_time == pytest.approx(b.arrival_time)
            assert a.input_tokens == b.input_tokens
            assert a.output_tokens == b.output_tokens

    def test_unsorted_rows_are_ordered(self, tmp_path):
        path = tmp_path / "messy.csv"
        path.write_text(
            "arrival_time,input_tokens,output_tokens\n"
            "20.0,10,20\n"
            "5.0,30,40\n"
            "10.0,50,60\n"
        )
        workload = load_requests_csv(path)
        assert [r.arrival_time for r in workload] == [5.0, 10.0, 20.0]
        assert [r.request_id for r in workload] == [0, 1, 2]

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "prod-trace.csv"
        save_requests_csv(Workload("x", [Request(0, 1.0, 2, 3)]), path)
        assert load_requests_csv(path).name == "prod-trace"

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,tokens\n1,2\n")
        with pytest.raises(ValueError):
            load_requests_csv(path)

    def test_loaded_workload_is_servable(self, tmp_path):
        """A loaded trace drives the full serving path."""
        import numpy as np

        from repro.cloud import SpotTrace
        from repro.core import spothedge
        from repro.serving import (
            DomainFilter,
            ReplicaPolicyConfig,
            ResourceSpec,
            ServiceSpec,
            SkyService,
            opt_6_7b_profile,
        )

        path = tmp_path / "w.csv"
        save_requests_csv(
            Workload("w", [Request(i, 300.0 + i * 5, 20, 40) for i in range(20)]),
            path,
        )
        workload = load_requests_csv(path)
        zones = ["aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b"]
        trace = SpotTrace("flat", zones, 60.0, np.full((2, 60), 2))
        spec = ServiceSpec(
            replica_policy=ReplicaPolicyConfig(fixed_target=1, num_overprovision=0),
            resources=ResourceSpec(
                accelerator="T4",
                any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
            ),
            request_timeout=30.0,
        )
        service = SkyService(
            spec, spothedge(zones, num_overprovision=0), trace,
            profile=opt_6_7b_profile(), seed=1,
        )
        report = service.run(workload, HOUR)
        assert report.completed == 20
