"""Unit tests for the Poisson, Arena, and MAF workload generators."""

import numpy as np
import pytest

from repro.cloud.traces import DAY, HOUR
from repro.workloads import (
    arena_workload,
    maf_workload,
    poisson_workload,
    rate_modulated_arrivals,
)


class TestPoisson:
    def test_rate_close_to_lambda(self):
        # The paper's replay workload uses λ = 0.15 req/s.
        workload = poisson_workload(12 * HOUR, rate=0.15, seed=0)
        assert workload.mean_rate() == pytest.approx(0.15, rel=0.1)

    def test_deterministic_per_seed(self):
        a = poisson_workload(HOUR, seed=1)
        b = poisson_workload(HOUR, seed=1)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]

    def test_seeds_differ(self):
        a = poisson_workload(HOUR, seed=1)
        b = poisson_workload(HOUR, seed=2)
        assert [r.arrival_time for r in a] != [r.arrival_time for r in b]

    def test_burstiness_near_one(self):
        # Poisson interarrivals have CV = 1.
        workload = poisson_workload(24 * HOUR, rate=0.2, seed=3)
        assert workload.burstiness() == pytest.approx(1.0, abs=0.15)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_workload(HOUR, rate=0.0)

    def test_tokens_positive_and_bounded(self):
        workload = poisson_workload(2 * HOUR, seed=4)
        for request in workload:
            assert 1 <= request.input_tokens <= 4096
            assert 1 <= request.output_tokens <= 4096


class TestArena:
    def test_burstier_than_poisson(self):
        """Fig. 11: Arena has bursty traffic — interarrival CV well
        above Poisson's 1.0."""
        arena = arena_workload(24 * HOUR, seed=5)
        poisson = poisson_workload(24 * HOUR, rate=arena.mean_rate(), seed=5)
        assert arena.burstiness() > poisson.burstiness() + 0.3

    def test_bursts_create_rate_spikes(self):
        workload = arena_workload(24 * HOUR, seed=6, burst_multiplier=8.0)
        _, rates = workload.rate_series(bin_seconds=300.0)
        assert rates.max() > 3.0 * max(np.median(rates), 1e-9)

    def test_deterministic(self):
        a = arena_workload(6 * HOUR, seed=7)
        b = arena_workload(6 * HOUR, seed=7)
        assert len(a) == len(b)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]

    def test_output_lengths_vary_widely(self):
        """Arena prompts need very different amounts of processing."""
        workload = arena_workload(12 * HOUR, seed=8)
        outputs = np.array([r.output_tokens for r in workload])
        assert np.percentile(outputs, 90) > 3 * np.percentile(outputs, 10)


class TestMAF:
    def test_diurnal_pattern(self):
        """MAF shows a strong day/night swing in per-hour rates."""
        workload = maf_workload(2 * DAY, seed=9, spike_rate_per_day=0.0)
        _, rates = workload.rate_series(bin_seconds=3600.0)
        assert rates.max() > 1.8 * max(rates.min(), 1e-9)

    def test_spikes_present(self):
        with_spikes = maf_workload(2 * DAY, seed=10, spike_multiplier=15.0)
        _, rates = with_spikes.rate_series(bin_seconds=120.0)
        assert rates.max() > 4 * max(np.median(rates), 1e-9)

    def test_deterministic(self):
        a = maf_workload(6 * HOUR, seed=11)
        b = maf_workload(6 * HOUR, seed=11)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]


class TestThinning:
    def test_constant_rate_matches_poisson(self):
        rng = np.random.default_rng(0)
        arrivals = rate_modulated_arrivals(lambda t: 0.5, 10_000.0, rng, max_rate=0.5)
        assert len(arrivals) == pytest.approx(5000, rel=0.1)

    def test_rate_above_bound_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            rate_modulated_arrivals(lambda t: 2.0, 1000.0, rng, max_rate=1.0)

    def test_invalid_max_rate(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            rate_modulated_arrivals(lambda t: 0.1, 100.0, rng, max_rate=0.0)

    def test_arrivals_sorted_and_in_range(self):
        rng = np.random.default_rng(1)
        arrivals = rate_modulated_arrivals(
            lambda t: 0.2 if t < 500 else 0.05, 1000.0, rng, max_rate=0.2
        )
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 1000.0 for t in arrivals)
