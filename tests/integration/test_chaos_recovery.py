"""Chaos end-to-end: a warning burst followed by a launch-failure
window, and the fleet's re-convergence once capacity returns.

The scenario blacks out zone A for good at t=1800 (with a 120 s
preemption warning configured, so every instance there gets a warning
burst at t=1680) while zone B only comes online at t=3600 — in between
every launch attempt fails.  Afterwards SpotHedge must converge back to
N_Tar + N_Extra ready spot replicas without leaking any Replica
bookkeeping from the failure storm.
"""

import numpy as np
import pytest

from repro.chaos import CapacityBlackout, ScenarioSpec
from repro.cloud import CloudConfig, SpotTrace
from repro.core import spothedge
from repro.serving import (
    ModelProfile,
    ReplicaPolicyConfig,
    ReplicaState,
    ResourceSpec,
    ServiceSpec,
    SkyService,
)
from repro.telemetry import EventBus, RingBufferSink
from repro.workloads import poisson_workload

ZONE_A = "aws:us-west-2:us-west-2a"
ZONE_B = "aws:us-west-2:us-west-2b"
HOUR = 3600.0
DURATION = 6 * HOUR
N_TAR = 4
N_EXTRA = 2


def base_trace():
    steps = int(DURATION / 60.0)
    return SpotTrace("calm", [ZONE_A, ZONE_B], 60.0, np.full((2, steps), 6))


def chaos_scenario():
    return ScenarioSpec(
        "zone-handover",
        (
            # Zone A dies for good half an hour in ...
            CapacityBlackout(start=1800.0, end=DURATION, zones=(ZONE_A,)),
            # ... and zone B only exists from t=3600 on.
            CapacityBlackout(start=0.0, end=3600.0, zones=(ZONE_B,)),
        ),
    )


@pytest.fixture(scope="module")
def run():
    sink = RingBufferSink(capacity=200_000)
    spec = ServiceSpec(
        name="chaos-recovery",
        replica_policy=ReplicaPolicyConfig(
            fixed_target=N_TAR, num_overprovision=N_EXTRA
        ),
        resources=ResourceSpec(accelerator="V100"),
        request_timeout=60.0,
    )
    profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.0,
                           decode_per_token=0.0, max_concurrency=8)
    service = SkyService(
        spec,
        spothedge([ZONE_A, ZONE_B], num_overprovision=N_EXTRA),
        base_trace(),
        profile=profile,
        cloud_config=CloudConfig(preempt_warning=120.0),
        seed=17,
        telemetry=EventBus([sink]),
        scenario=chaos_scenario(),
    )
    report = service.run(
        poisson_workload(DURATION, rate=0.05, seed=17), DURATION
    )
    return service, report, sink


class TestWarningBurst:
    def test_every_zone_a_instance_warned_before_the_kill(self, run):
        _, _, sink = run
        warnings = [e for e in sink.events if e.kind == "replica.preempt_warning"]
        assert warnings, "no preemption warnings observed"
        assert {e.zone for e in warnings} == {ZONE_A}
        # The warning burst fires one grace period before the blackout.
        assert {e.time for e in warnings} == {1800.0 - 120.0}

    def test_launch_failures_during_the_dead_window(self, run):
        service, _, sink = run
        failures = [e for e in sink.events if e.kind == "replica.launch_failed"]
        assert failures
        assert service.controller.launch_failure_count.value > 0
        # Failures only happen while at least one zone is dark: early
        # probes into not-yet-alive zone B, then the fully dead window.
        assert any(1800.0 <= e.time <= 3600.0 for e in failures)
        assert all(e.time <= 3600.0 + 300.0 for e in failures)


class TestReconvergence:
    def test_fleet_back_at_target_plus_extra(self, run):
        service, _, _ = run
        ready = service.controller.ready_replicas()
        assert len(ready) == N_TAR + N_EXTRA
        assert all(r.zone_id == ZONE_B for r in ready)
        assert all(r.spot for r in ready)

    def test_availability_recovers_after_zone_b_arrives(self, run):
        service, _, _ = run
        series = service.controller.ready_total_series
        # Fully available before the storm and after re-convergence.
        assert series.fraction_at_least(N_TAR, 1000.0, 1800.0) == 1.0
        assert series.fraction_at_least(N_TAR, 5 * HOUR, DURATION) == 1.0
        # The dead window really was an outage worth recovering from.
        assert series.fraction_at_least(N_TAR, 1800.0, 3600.0) < 1.0

    def test_preemptions_recorded(self, run):
        service, report, _ = run
        assert service.controller.preemption_count.value >= 1
        assert report.preemptions >= 1


class TestNoLeaks:
    def test_no_dead_replicas_retained(self, run):
        service, _, _ = run
        controller = service.controller
        assert all(
            r.state is not ReplicaState.DEAD for r in controller.replicas
        )
        # The failure storm must not leave an unbounded replica list.
        assert len(controller.replicas) <= N_TAR + N_EXTRA + 2

    def test_instance_index_maps_only_live_replicas(self, run):
        service, _, _ = run
        controller = service.controller
        live = set(map(id, controller.replicas))
        for replica in controller._instance_replica.values():
            assert id(replica) in live
            assert replica.state is not ReplicaState.DEAD
        # Every indexed instance id belongs to a current worker.
        worker_ids = {
            w.id for r in controller.replicas for w in r.workers
        }
        assert set(controller._instance_replica) <= worker_ids
