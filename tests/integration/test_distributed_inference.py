"""Integration tests: distributed inference over multi-instance replicas
(§4, "Support for distributed inference").

Replicas partitioned over several spot instances in the same zone,
with and without SpotServe-style adaptive parallelism, driven through
the full controller + provider stack.
"""

import numpy as np
import pytest

from repro.cloud import CloudConfig, SimCloud, SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceController,
    ServiceSpec,
)
from repro.serving.replica import ReplicaState
from repro.sim import SimulationEngine

ZONES = ["aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b"]


def build(capacity_rows, *, workers=2, adaptive=False, target=1):
    engine = SimulationEngine()
    trace = SpotTrace("dist", ZONES, 60.0, np.asarray(capacity_rows))
    cloud = SimCloud(
        engine,
        trace,
        config=CloudConfig(provision_delay_mean=30.0, setup_delay_mean=60.0, delay_jitter=0.0),
    )
    spec = ServiceSpec(
        replica_policy=ReplicaPolicyConfig(fixed_target=target, num_overprovision=0),
        resources=ResourceSpec(
            accelerator="T4",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
            workers_per_replica=workers,
        ),
        request_timeout=20.0,
    )
    policy = spothedge(ZONES, num_overprovision=0)
    profile = ModelProfile("opt", overhead=2.0, prefill_per_token=0.0,
                           decode_per_token=0.0, max_concurrency=4)
    controller = ServiceController(
        engine, cloud, spec, policy, profile, adaptive_parallelism=adaptive
    )
    return engine, cloud, controller


class TestMultiWorkerReplicas:
    def test_replica_ready_only_when_all_workers_up(self):
        engine, cloud, controller = build([[4] * 30, [4] * 30], workers=3)
        controller.start()
        engine.run_until(60.0)  # VM up, model still loading
        assert controller.ready_replicas() == []
        engine.run_until(200.0)
        ready = controller.ready_replicas()
        assert len(ready) == 1
        assert len(ready[0].workers) == 3

    def test_workers_colocated_in_one_zone(self):
        """§4: instances of one replica share a zone (minimise
        inter-instance traffic); replicas spread across zones."""
        engine, cloud, controller = build([[4] * 30, [4] * 30], workers=2, target=2)
        controller.start()
        engine.run_until(300.0)
        for replica in controller.ready_replicas():
            zones = {w.zone_id for w in replica.workers}
            assert zones == {replica.zone_id}
        replica_zones = {r.zone_id for r in controller.ready_replicas()}
        assert len(replica_zones) == 2  # spread across both zones

    def test_partial_capacity_blocks_whole_replica(self):
        # Zone A can hold only 1 instance: a 2-worker replica cannot fit
        # there; the launch fails and moves on.
        rows = [[1] * 30, [4] * 30]
        engine, cloud, controller = build(rows, workers=2)
        controller.start()
        engine.run_until(400.0)
        ready = controller.ready_replicas()
        assert len(ready) == 1
        assert ready[0].zone_id == ZONES[1]


class TestAdaptiveParallelism:
    """SpotServe behaviour through the full stack."""

    def _run_with_partial_preemption(self, adaptive):
        # Zone A holds 2 instances until t=600, then only 1: one worker
        # of the replica gets preempted.
        rows = [[2] * 10 + [1] * 30, [0] * 40]
        engine, cloud, controller = build(rows, workers=2, adaptive=adaptive)
        controller.start()
        engine.run_until(550.0)
        assert len(controller.ready_replicas()) == 1
        engine.run_until(700.0)
        return engine, controller

    def test_without_adaptive_replica_dies(self):
        engine, controller = self._run_with_partial_preemption(adaptive=False)
        # The spot replica died (zone A now fits only 1 of 2 workers,
        # zone B is dead); Dynamic Fallback covers with on-demand.
        ready = controller.ready_replicas()
        assert all(not r.spot for r in ready)
        assert any(not r.spot for r in ready)  # OD fallback took over
        assert controller.preemption_count.value >= 1

    def test_with_adaptive_replica_survives_degraded(self):
        engine, controller = self._run_with_partial_preemption(adaptive=True)
        ready = controller.ready_replicas()
        assert len(ready) == 1
        replica = ready[0]
        assert len(replica.workers) == 1  # one survivor
        assert replica.server.slowdown == pytest.approx(2.0)

    def test_migration_pause_then_ready(self):
        rows = [[2] * 10 + [1] * 30, [0] * 40]
        engine, cloud, controller = build(rows, workers=2, adaptive=True)
        controller.start()
        engine.run_until(601.0)  # just after the preemption
        replicas = [r for r in controller.replicas if r.state is ReplicaState.MIGRATING]
        assert len(replicas) == 1
        engine.run_until(640.0)  # past the 30 s migration pause
        assert replicas[0].state is ReplicaState.READY
