"""End-to-end autoscaling: the §4 QPS autoscaler driving SpotHedge.

The paper's evaluation pins N_Tar; these tests exercise the full
autoscaling path instead — N_Tar follows the offered load with the
configured hysteresis, and SpotHedge maintains N_Tar + N_Extra spot
replicas around it.
"""

import numpy as np
import pytest

from repro.cloud import SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
    SkyService,
)
from repro.workloads import Request, Workload

ZONES = [
    "aws:us-west-2:us-west-2a",
    "aws:us-west-2:us-west-2b",
    "aws:us-west-2:us-west-2c",
]
HOUR = 3600.0


def abundant_trace(hours=6):
    steps = int(hours * 60)
    return SpotTrace("auto", ZONES, 60.0, np.full((3, steps), 8))


def step_load_workload(low_rate, high_rate, duration):
    """Low load for the first third, high load in the middle, low again."""
    requests = []
    t, i = 0.0, 0
    while t < duration:
        third = duration / 3
        rate = high_rate if third <= t < 2 * third else low_rate
        t += 1.0 / rate
        requests.append(Request(i, t, input_tokens=20, output_tokens=20))
        i += 1
    return Workload("step", [r for r in requests if r.arrival_time < duration])


def build_service(trace, q_tar=0.5):
    spec = ServiceSpec(
        name="autoscale",
        replica_policy=ReplicaPolicyConfig(
            target_qps_per_replica=q_tar,
            min_replicas=1,
            max_replicas=16,
            num_overprovision=1,
            qps_window=60.0,
            upscale_delay=120.0,
            downscale_delay=300.0,
        ),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=60.0,
    )
    policy = spothedge(ZONES, num_overprovision=1)
    profile = ModelProfile("m", overhead=1.0, prefill_per_token=0.0,
                           decode_per_token=0.0, max_concurrency=8)
    return SkyService(spec, policy, trace, profile=profile, seed=9)


class TestAutoscalingEndToEnd:
    @pytest.fixture(scope="class")
    def run(self):
        duration = 3 * HOUR
        trace = abundant_trace(hours=4)
        service = build_service(trace)
        workload = step_load_workload(0.3, 3.0, duration)
        report = service.run(workload, duration)
        return service, report, duration

    def test_scales_up_under_load(self, run):
        service, report, duration = run
        n_tar = service.controller.n_tar_series
        # During the high-load middle third N_Tar rose well above the
        # low-load target (ceil(0.3/0.5) = 1 vs ceil(3.0/0.5) = 6).
        peak = max(
            n_tar.value_at(t)
            for t in np.linspace(duration / 3 + 600, 2 * duration / 3, 50)
        )
        assert peak >= 4

    def test_scales_back_down_after_peak(self, run):
        service, report, duration = run
        n_tar = service.controller.n_tar_series
        final = n_tar.value_at(duration - 60)
        assert final <= 2

    def test_replicas_follow_target(self, run):
        service, report, duration = run
        ready = service.controller.ready_total_series
        # Mid-peak, ready replicas reach the raised target.
        mid = ready.value_at(2 * duration / 3 - 600)
        assert mid >= 4

    def test_service_stays_healthy_through_scaling(self, run):
        _, report, _ = run
        assert report.failure_rate < 0.05

    def test_hysteresis_ignores_transient_spikes(self):
        """A burst shorter than upscale_delay must not move N_Tar."""
        trace = abundant_trace(hours=1)
        service = build_service(trace)
        # 60 s of heavy traffic inside an otherwise idle hour.
        requests = [
            Request(i, 600.0 + i * 0.2, 20, 20) for i in range(300)
        ]
        report = service.run(Workload("spike", requests), HOUR)
        n_tar = service.controller.n_tar_series
        values = [n_tar.value_at(t) for t in np.linspace(0, HOUR - 1, 100)]
        assert max(v for v in values if not np.isnan(v)) <= 2
