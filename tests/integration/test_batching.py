"""End-to-end continuous batching: batch=1 equivalence against the
recorded fixture, and overload behaviour (shedding, backoff retries,
SLO-aware autoscaling) through the full service stack."""

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.cloud import HOUR, SpotTrace, aws1
from repro.core import spothedge
from repro.experiments import service_report_to_dict
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    RetryPolicy,
    ServiceSpec,
    SkyService,
    llama2_70b_profile,
)
from repro.workloads import Request, Workload, poisson_workload

REPO_ROOT = Path(__file__).resolve().parents[2]

ZONES = [
    "aws:us-west-2:us-west-2a",
    "aws:us-west-2:us-west-2b",
    "aws:us-west-2:us-west-2c",
]


def abundant_trace(hours=2):
    steps = int(hours * 60)
    return SpotTrace("batch", ZONES, 60.0, np.full((3, steps), 8))


def steady_workload(rate, start, end):
    """Evenly spaced arrivals at ``rate`` req/s over [start, end)."""
    requests = []
    t, i = start, 0
    while t < end:
        requests.append(Request(i, t, input_tokens=20, output_tokens=20))
        i += 1
        t += 1.0 / rate
    return Workload("steady", requests)


class TestBatchOneEquivalence:
    def test_batched_engine_pinned_to_batch_one_matches_fixture(self):
        """Acceptance: with a non-zero decode_batch_slope but
        max_concurrency=1 (batch never exceeds 1), the batched engine
        reproduces the recorded fixed-rate service report byte for
        byte — the contention model is exactly free at occupancy 1."""
        trace = aws1()
        profile = dataclasses.replace(
            llama2_70b_profile(), max_concurrency=1, decode_batch_slope=0.08
        )
        spec = ServiceSpec(
            name="batch1-fixture",
            replica_policy=ReplicaPolicyConfig(
                fixed_target=3, num_overprovision=1
            ),
            resources=ResourceSpec(accelerator="V100"),
            request_timeout=100.0,
        )
        duration = 2 * HOUR
        service = SkyService(
            spec,
            spothedge(trace.zone_ids, num_overprovision=1),
            trace,
            profile=profile,
            seed=42,
        )
        report = service.run(
            poisson_workload(duration, rate=0.2, seed=42), duration
        )
        payload = service_report_to_dict(report)
        payload["latency_samples"] = list(report.latency_samples)
        recorded = json.loads(
            (REPO_ROOT / "tests" / "data" / "batch1_service_report.json")
            .read_text()
        )
        assert payload == recorded


class TestOverloadIntegration:
    def run_overloaded(self):
        """Sustained ~3x overload against two fixed replicas with a
        bounded queue and backoff retries."""
        trace = abundant_trace()
        profile = ModelProfile(
            "m", overhead=1.0, prefill_per_token=0.0, decode_per_token=0.1,
            max_concurrency=2, decode_batch_slope=0.3,
        )
        spec = ServiceSpec(
            name="overload",
            replica_policy=ReplicaPolicyConfig(
                fixed_target=2, num_overprovision=0
            ),
            resources=ResourceSpec(
                accelerator="V100",
                any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
            ),
            request_timeout=40.0,
            max_queue_per_replica=2,
        )
        service = SkyService(
            spec,
            spothedge(ZONES, num_overprovision=0),
            trace,
            profile=profile,
            seed=7,
            retry_policy=RetryPolicy(base=0.5, multiplier=2.0, cap=8.0,
                                     jitter=0.1),
        )
        # Capacity: 2 replicas x 2 slots / ~3 s per request ~= 1.3 req/s.
        # Offered: 4 req/s -- about 3x capacity.
        report = service.run(steady_workload(4.0, 120.0, 480.0), 900.0)
        return service, report

    def test_sheds_and_retries_under_overload(self):
        service, report = self.run_overloaded()
        stats = service.client.stats()
        assert stats.shed > 0          # admission control engaged
        assert stats.retries >= stats.shed
        assert report.completed > 0    # the service still made progress
        assert report.failed > 0       # but could not absorb 3x load

    def test_overload_run_is_deterministic(self):
        first = service_report_to_dict(self.run_overloaded()[1])
        second = service_report_to_dict(self.run_overloaded()[1])
        assert first == second

    def test_slo_autoscaler_reacts_to_overload(self):
        """In slo mode the TTFT-violation signal raises N_Tar even when
        the QPS candidate sees no pressure (high Q_Tar)."""
        trace = abundant_trace(hours=3)
        profile = ModelProfile(
            "m", overhead=1.0, prefill_per_token=0.0, decode_per_token=0.1,
            max_concurrency=2, decode_batch_slope=0.3,
        )
        spec = ServiceSpec(
            name="slo-overload",
            replica_policy=ReplicaPolicyConfig(
                target_qps_per_replica=50.0,  # qps candidate stays at 1
                min_replicas=1,
                max_replicas=8,
                num_overprovision=0,
                upscale_delay=120.0,
                downscale_delay=600.0,
                autoscale_mode="slo",
                ttft_slo=2.0,
                tpot_slo=0.3,
                slo_violation_threshold=0.1,
                slo_window=120.0,
            ),
            resources=ResourceSpec(
                accelerator="V100",
                any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
            ),
            request_timeout=60.0,
            max_queue_per_replica=8,
        )
        service = SkyService(
            spec,
            spothedge(ZONES, num_overprovision=0),
            trace,
            profile=profile,
            seed=7,
            retry_policy=RetryPolicy(),
        )
        service.run(steady_workload(3.0, 120.0, 3000.0), 3600.0)
        n_tar = service.controller.n_tar_series
        peak = max(n_tar.value_at(t) for t in np.linspace(300.0, 3000.0, 100))
        assert peak >= 4  # violations pushed well past the QPS candidate
