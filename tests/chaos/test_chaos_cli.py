"""The ``repro chaos`` subcommand family."""

import json

import pytest

from repro.chaos import builtin_scenario, list_builtin
from repro.cli import build_parser, main


class TestParser:
    def test_chaos_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["chaos", "run"])
        assert args.trace == "gcp1"
        assert args.scenarios == "preemption-storm"
        assert args.policies == "SpotHedge,EvenSpread"
        assert args.target == 4
        assert args.seed == 0


class TestListShow:
    def test_list_names_every_builtin(self, capsys):
        assert main(["chaos", "list"]) == 0
        out = capsys.readouterr().out
        for name in list_builtin():
            assert name in out

    def test_show_prints_canonical_json(self, capsys):
        assert main(["chaos", "show", "kitchen-sink"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["name"] == "kitchen-sink"
        assert out.strip() == builtin_scenario("kitchen-sink").to_json()

    def test_show_unknown_scenario_fails(self):
        with pytest.raises(SystemExit):
            main(["chaos", "show", "not-a-scenario"])


class TestRun:
    def test_run_prints_matrix_and_saves(self, tmp_path, capsys):
        out_path = tmp_path / "scorecard.json"
        assert main([
            "chaos", "run",
            "--trace", "gcp1",
            "--scenarios", "capacity-blackout",
            "--policies", "SpotHedge",
            "--no-cache",
            "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "capacity-blackout" in out
        assert "SpotHedge" in out
        card = json.loads(out_path.read_text())
        assert card["trace"] == "GCP 1"
        assert card["scenarios"] == ["capacity-blackout"]
        assert [s["policy"] for s in card["scores"]] == ["SpotHedge"]

    def test_run_accepts_scenario_file(self, tmp_path, capsys):
        path = tmp_path / "mine.json"
        builtin_scenario("price-surge").save(path)
        assert main([
            "chaos", "run",
            "--trace", "gcp1",
            "--scenarios", str(path),
            "--policies", "OnDemand",
            "--no-cache",
        ]) == 0
        assert "price-surge" in capsys.readouterr().out

    def test_run_unknown_policy_fails(self):
        with pytest.raises(SystemExit):
            main([
                "chaos", "run",
                "--trace", "gcp1",
                "--scenarios", "price-surge",
                "--policies", "Nope",
                "--no-cache",
            ])

    def test_run_unknown_scenario_fails(self):
        with pytest.raises(SystemExit):
            main(["chaos", "run", "--scenarios", "not-real", "--no-cache"])
