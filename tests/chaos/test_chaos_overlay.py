"""Scenario compilation: capacity overlays, factor rows, determinism,
and the correlation calibration against ``repro.analysis``."""

import numpy as np
import pytest

from repro.analysis import preemption_correlation
from repro.chaos import (
    CapacityBlackout,
    ColdStartSpike,
    PreemptionStorm,
    PriceSurge,
    ScenarioSpec,
    builtin_scenario,
    compile_scenario,
)
from repro.cloud import SpotTrace

STEP = 300.0


def constant_trace(n_zones=4, n_steps=72, cap=5, regions=1):
    """Calm constant-capacity trace; zone ids follow cloud:region:zone."""
    zones = [
        f"aws:r{z % regions}:z{z}" for z in range(n_zones)
    ]
    capacity = np.full((n_zones, n_steps), cap, dtype=np.int64)
    return SpotTrace("calm", zones, STEP, capacity)


class TestCompile:
    def test_deterministic_per_seed(self):
        trace = constant_trace()
        scenario = builtin_scenario("preemption-storm")
        a = compile_scenario(scenario, trace, root_seed=11)
        b = compile_scenario(scenario, trace, root_seed=11)
        assert (a.trace.capacity == b.trace.capacity).all()
        assert a.injections_log == b.injections_log
        other = compile_scenario(scenario, trace, root_seed=12)
        assert not (a.trace.capacity == other.trace.capacity).all()

    def test_blackout_clamps_capacity(self):
        trace = constant_trace()
        scenario = ScenarioSpec(
            "b", (CapacityBlackout(start=STEP * 10, end=STEP * 20, residual_capacity=1),)
        )
        compiled = compile_scenario(scenario, trace)
        assert (compiled.trace.capacity[:, 10:20] == 1).all()
        assert (compiled.trace.capacity[:, :10] == 5).all()
        assert (compiled.trace.capacity[:, 20:] == 5).all()
        assert len(compiled.injections_log) == 1
        assert compiled.injections_log[0].detail == "residual=1"

    def test_storm_full_severity_zeroes_hit_zones(self):
        trace = constant_trace()
        scenario = ScenarioSpec(
            "s",
            (
                PreemptionStorm(
                    start=0.0, end=STEP * 72, hit_prob=1.0, correlation=0.0,
                    severity=1.0, pulse=STEP,
                ),
            ),
        )
        compiled = compile_scenario(scenario, trace, root_seed=1)
        assert (compiled.trace.capacity == 0).all()
        # hit_prob=1.0 fires every pulse in every zone.
        assert len(compiled.injections_log) == 72

    def test_zone_scoping_and_unknown_zone(self):
        trace = constant_trace()
        scoped = ScenarioSpec(
            "z",
            (
                CapacityBlackout(
                    start=0.0, end=STEP * 5, zones=(trace.zone_ids[0],)
                ),
            ),
        )
        compiled = compile_scenario(scoped, trace)
        assert (compiled.trace.capacity[0, :5] == 0).all()
        assert (compiled.trace.capacity[1:, :5] == 5).all()
        bad = ScenarioSpec(
            "bad", (CapacityBlackout(start=0.0, end=STEP, zones=("nope",)),)
        )
        with pytest.raises(ValueError, match="not in trace"):
            compile_scenario(bad, trace)

    def test_windows_past_trace_end_are_clipped(self):
        trace = constant_trace(n_steps=10)
        scenario = ScenarioSpec(
            "late",
            (
                CapacityBlackout(start=STEP * 100, end=STEP * 200),
                ColdStartSpike(start=STEP * 100, end=STEP * 200, factor=3.0),
            ),
        )
        compiled = compile_scenario(scenario, trace)
        assert (compiled.trace.capacity == 5).all()
        assert compiled.injections_log == ()
        assert compiled.cold_start_factors is None

    def test_cold_start_factors_compose_multiplicatively(self):
        trace = constant_trace(n_steps=20)
        scenario = ScenarioSpec(
            "cs",
            (
                ColdStartSpike(start=0.0, end=STEP * 10, factor=2.0),
                ColdStartSpike(start=STEP * 5, end=STEP * 15, factor=3.0),
            ),
        )
        compiled = compile_scenario(scenario, trace)
        factors = compiled.cold_start_factors
        assert factors is not None and len(factors) == 20
        assert factors[0] == 2.0
        assert factors[7] == 6.0  # overlap multiplies
        assert factors[12] == 3.0
        assert factors[17] == 1.0

    def test_price_factors_rows(self):
        trace = constant_trace(n_zones=2, n_steps=10)
        scenario = ScenarioSpec(
            "p",
            (
                PriceSurge(
                    start=STEP * 2, end=STEP * 6, zones=(trace.zone_ids[1],),
                    multiplier=4.0,
                ),
            ),
        )
        compiled = compile_scenario(scenario, trace)
        assert compiled.price_factors is not None
        assert list(compiled.price_factors) == [trace.zone_ids[1]]
        row = compiled.price_factors[trace.zone_ids[1]]
        assert row[1] == 1.0 and row[2] == 4.0 and row[5] == 4.0 and row[6] == 1.0

    def test_chaos_digest_separates_compiled_from_pristine(self):
        trace = constant_trace()
        pristine_digest = trace.digest()
        scenario = ScenarioSpec("p", (PriceSurge(start=0.0, end=STEP),))
        compiled = compile_scenario(scenario, trace)
        # Price surges leave the grid untouched — only chaos_digest
        # distinguishes the compiled trace.
        assert (compiled.trace.capacity == trace.capacity).all()
        assert compiled.trace.chaos_digest == scenario.digest()
        assert compiled.trace.digest() != pristine_digest
        # The pristine trace's digest is unchanged by the feature.
        assert trace.digest() == pristine_digest
        assert trace.chaos_digest is None

    def test_log_sorted_by_time(self):
        compiled = compile_scenario(
            builtin_scenario("kitchen-sink"), constant_trace(n_steps=72)
        )
        times = [r.time for r in compiled.injections_log]
        assert times == sorted(times)


class TestCorrelationCalibration:
    """The storm's ``correlation`` knob is calibrated against the Fig. 3
    measurement: compiled preemption indicators must show the dialled-in
    intra-region correlation."""

    @staticmethod
    def storm_trace(rho, seed=0):
        trace = constant_trace(n_zones=6, n_steps=400, cap=8, regions=1)
        scenario = ScenarioSpec(
            "cal",
            (
                PreemptionStorm(
                    start=0.0, end=STEP * 400, hit_prob=0.3, correlation=rho,
                    severity=1.0, pulse=STEP,
                ),
            ),
        )
        return compile_scenario(scenario, trace, root_seed=seed).trace

    def test_high_correlation_measured(self):
        matrix = preemption_correlation(self.storm_trace(0.8), window_steps=1)
        assert matrix.mean_intra_region() == pytest.approx(0.8, abs=0.15)

    def test_zero_correlation_measured(self):
        matrix = preemption_correlation(self.storm_trace(0.0), window_steps=1)
        assert abs(matrix.mean_intra_region()) < 0.15

    def test_monotone_in_rho(self):
        measured = [
            preemption_correlation(self.storm_trace(rho), window_steps=1)
            .mean_intra_region()
            for rho in (0.0, 0.5, 0.9)
        ]
        assert measured[0] < measured[1] < measured[2]
