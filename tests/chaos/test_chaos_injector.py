"""Live injection seams: warning gate, cold-start swap, surcharges,
network degradation, telemetry — and the zero-overhead contract."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.chaos import (
    ChaosInjector,
    ColdStartSpike,
    DegradedNetworkModel,
    NetworkDegradation,
    PriceSurge,
    ScenarioSpec,
    WarningDisruption,
    compile_scenario,
)
from repro.cloud import CloudConfig, SimCloud, SpotTrace, default_network
from repro.sim import SimulationEngine
from repro.telemetry import EventBus, RingBufferSink

REPO_ROOT = Path(__file__).resolve().parents[2]
STEP = 300.0


def small_trace(n_steps=48):
    zones = ["aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b"]
    capacity = np.full((2, n_steps), 4, dtype=np.int64)
    return SpotTrace("small", zones, STEP, capacity)


def armed(scenario, *, telemetry=None, config=None):
    engine = SimulationEngine(telemetry=telemetry)
    trace = small_trace()
    compiled = compile_scenario(scenario, trace, root_seed=0)
    cloud = SimCloud(engine, compiled.trace, config=config)
    injector = ChaosInjector(compiled, engine, cloud, root_seed=0)
    injector.arm()
    return engine, cloud, injector


class TestWarningGate:
    def test_suppresses_inside_window(self):
        scenario = ScenarioSpec(
            "w",
            (WarningDisruption(start=100.0, end=1000.0, suppress_prob=1.0),),
        )
        engine, cloud, _ = armed(scenario)
        assert cloud.warning_gate is not None
        engine.run_until(500.0)
        assert cloud.warning_gate("aws:us-west-2:us-west-2a", 600.0) is None

    def test_passes_outside_window(self):
        scenario = ScenarioSpec(
            "w",
            (WarningDisruption(start=100.0, end=1000.0, suppress_prob=1.0),),
        )
        engine, cloud, _ = armed(scenario)
        assert cloud.warning_gate("aws:us-west-2:us-west-2a", 50.0) == 0.0
        engine.run_until(2000.0)
        assert cloud.warning_gate("aws:us-west-2:us-west-2a", 2100.0) == 0.0

    def test_extra_delay_defers_exactly_once(self):
        scenario = ScenarioSpec(
            "w",
            (
                WarningDisruption(
                    start=0.0, end=1000.0, suppress_prob=0.0, extra_delay=45.0
                ),
            ),
        )
        engine, cloud, _ = armed(scenario)
        engine.run_until(100.0)
        key = ("aws:us-west-2:us-west-2a", 400.0)
        assert cloud.warning_gate(*key) == 45.0
        # The rescheduled delivery of the same warning passes through.
        assert cloud.warning_gate(*key) == 0.0
        # ... but a fresh warning is delayed again.
        assert cloud.warning_gate("aws:us-west-2:us-west-2a", 500.0) == 45.0

    def test_suppression_emits_telemetry(self):
        sink = RingBufferSink()
        scenario = ScenarioSpec(
            "w",
            (WarningDisruption(start=0.0, end=1000.0, suppress_prob=1.0),),
        )
        engine, cloud, _ = armed(scenario, telemetry=EventBus([sink]))
        engine.run_until(10.0)
        cloud.warning_gate("aws:us-west-2:us-west-2b", 100.0)
        suppressed = [
            e
            for e in sink.events
            if e.kind == "chaos.injected" and e.detail == "warning suppressed"
        ]
        assert len(suppressed) == 1
        assert suppressed[0].zones == ["aws:us-west-2:us-west-2b"]

    def test_no_disruption_leaves_gate_unset(self):
        scenario = ScenarioSpec(
            "p", (PriceSurge(start=0.0, end=100.0),)
        )
        _, cloud, _ = armed(scenario)
        assert cloud.warning_gate is None


class TestColdStartSwap:
    def test_config_scaled_inside_window_and_restored(self):
        base = CloudConfig(provision_delay_mean=60.0, setup_delay_mean=120.0)
        scenario = ScenarioSpec(
            "cs",
            (
                ColdStartSpike(start=1000.0, end=2000.0, factor=3.0),
                ColdStartSpike(start=1500.0, end=2500.0, factor=2.0),
            ),
        )
        engine, cloud, _ = armed(scenario, config=base)
        assert cloud.config is base
        engine.run_until(1200.0)
        assert cloud.config.provision_delay_mean == 180.0
        assert cloud.config.setup_delay_mean == 360.0
        engine.run_until(1700.0)  # overlap: 3 * 2
        assert cloud.config.provision_delay_mean == 360.0
        engine.run_until(2200.0)  # only the second spike remains
        assert cloud.config.provision_delay_mean == 120.0
        engine.run_until(3000.0)
        # Restored bit-for-bit: the original object, not a copy.
        assert cloud.config is base

    def test_other_config_fields_survive_the_swap(self):
        base = CloudConfig(preempt_warning=120.0, failure_detect_delay=7.0)
        scenario = ScenarioSpec(
            "cs", (ColdStartSpike(start=0.0, end=1000.0, factor=2.0),)
        )
        engine, cloud, _ = armed(scenario, config=base)
        engine.run_until(500.0)
        assert cloud.config.preempt_warning == 120.0
        assert cloud.config.failure_detect_delay == 7.0


class TestPriceSurge:
    def test_surcharge_windows_registered(self):
        trace = small_trace()
        scenario = ScenarioSpec(
            "p",
            (
                PriceSurge(
                    start=100.0, end=200.0, zones=(trace.zone_ids[0],),
                    multiplier=5.0,
                ),
                PriceSurge(start=300.0, end=400.0, multiplier=2.0),
            ),
        )
        _, cloud, _ = armed(scenario)
        assert cloud.billing._surcharges == [
            (100.0, 200.0, frozenset({trace.zone_ids[0]}), 5.0),
            (300.0, 400.0, frozenset(trace.zone_ids), 2.0),
        ]


class TestDegradedNetwork:
    def test_cross_region_pays_extra_inside_window(self):
        engine = SimulationEngine()
        model = DegradedNetworkModel(
            default_network(),
            engine,
            [NetworkDegradation(start=100.0, end=200.0, extra_rtt=0.25)],
        )
        base = default_network()
        a, b = "aws:us-west-2", "aws:eu-central-1"
        assert model.rtt(a, b) == base.rtt(a, b)  # t=0, inactive
        engine.run_until(150.0)
        assert model.rtt(a, b) == pytest.approx(base.rtt(a, b) + 0.25)
        # Same-region traffic is never degraded.
        assert model.rtt(a, a) == base.rtt(a, a)
        engine.run_until(250.0)
        assert model.rtt(a, b) == base.rtt(a, b)

    def test_region_scoping(self):
        engine = SimulationEngine()
        model = DegradedNetworkModel(
            default_network(),
            engine,
            [
                NetworkDegradation(
                    start=0.0, end=100.0, extra_rtt=0.5,
                    regions=("aws:ap-northeast-1",),
                )
            ],
        )
        base = default_network()
        engine.run_until(50.0)
        assert model.rtt("aws:us-west-2", "aws:ap-northeast-1") == pytest.approx(
            base.rtt("aws:us-west-2", "aws:ap-northeast-1") + 0.5
        )
        assert model.rtt("aws:us-west-2", "aws:eu-central-1") == base.rtt(
            "aws:us-west-2", "aws:eu-central-1"
        )


class TestTelemetry:
    def test_scenario_lifecycle_events(self):
        sink = RingBufferSink()
        scenario = ScenarioSpec(
            "life",
            (
                PriceSurge(start=100.0, end=200.0),
                ColdStartSpike(start=100.0, end=300.0, factor=2.0),
            ),
        )
        engine, _, _ = armed(scenario, telemetry=EventBus([sink]))
        engine.run_until(1000.0)
        kinds = [e.kind for e in sink.events if e.kind.startswith("chaos.")]
        assert kinds[0] == "chaos.scenario_started"
        assert kinds[-1] == "chaos.scenario_ended"
        assert kinds.count("chaos.injected") == 2
        started = next(e for e in sink.events if e.kind == "chaos.scenario_started")
        assert started.scenario == "life"
        assert started.injections == 2
        ended = next(e for e in sink.events if e.kind == "chaos.scenario_ended")
        assert ended.time == 300.0

    def test_silent_bus_schedules_nothing(self):
        scenario = ScenarioSpec("p", (PriceSurge(start=0.0, end=100.0),))
        engine, _, _ = armed(scenario)  # NULL_BUS
        assert engine.pending_events == 0

    def test_double_arm_rejected(self):
        scenario = ScenarioSpec("p", (PriceSurge(start=0.0, end=100.0),))
        _, _, injector = armed(scenario)
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()


class TestZeroOverhead:
    def test_no_scenario_never_imports_chaos(self):
        """Running a full service without a scenario must not load the
        chaos subsystem at all."""
        code = (
            "import sys\n"
            "from repro.cloud import aws1\n"
            "from repro.core import spothedge\n"
            "from repro.serving import (ReplicaPolicyConfig, ResourceSpec,\n"
            "                           ServiceSpec, SkyService)\n"
            "from repro.workloads import poisson_workload\n"
            "trace = aws1()\n"
            "spec = ServiceSpec(name='plain',\n"
            "                   replica_policy=ReplicaPolicyConfig(fixed_target=2),\n"
            "                   resources=ResourceSpec(accelerator='V100'))\n"
            "service = SkyService(spec, spothedge(trace.zone_ids), trace, seed=1)\n"
            "service.run(poisson_workload(600.0, rate=0.1, seed=1), 600.0)\n"
            "chaos = [m for m in sys.modules if m.startswith('repro.chaos')]\n"
            "assert not chaos, chaos\n"
            "print('clean')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert "clean" in result.stdout


class TestNoScenarioRegression:
    def test_report_matches_recorded_fixture(self):
        """A no-scenario run reproduces the service report recorded
        before the chaos subsystem existed — the seams are free."""
        from repro.cloud import HOUR, aws1
        from repro.core import spothedge
        from repro.experiments import service_report_to_dict
        from repro.serving import (
            ReplicaPolicyConfig,
            ResourceSpec,
            ServiceSpec,
            SkyService,
        )
        from repro.workloads import poisson_workload

        trace = aws1()
        spec = ServiceSpec(
            name="regression-fixture",
            replica_policy=ReplicaPolicyConfig(
                fixed_target=3, num_overprovision=1
            ),
            resources=ResourceSpec(accelerator="V100"),
            request_timeout=100.0,
        )
        duration = 2 * HOUR
        service = SkyService(
            spec,
            spothedge(trace.zone_ids, num_overprovision=1),
            trace,
            seed=42,
        )
        report = service.run(
            poisson_workload(duration, rate=0.2, seed=42), duration
        )
        payload = service_report_to_dict(report)
        payload["latency_samples"] = list(report.latency_samples)
        recorded = json.loads(
            (REPO_ROOT / "tests" / "data" / "no_chaos_service_report.json")
            .read_text()
        )
        assert payload == recorded
