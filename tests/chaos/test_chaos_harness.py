"""run_matrix / ChaosScorecard: determinism, cache keying, and the
paper-facing sanity ordering under the bundled preemption storm."""

import numpy as np
import pytest

from repro.chaos import (
    BASELINE,
    CapacityBlackout,
    PreemptionStorm,
    ScenarioSpec,
    builtin_scenario,
    compile_scenario,
    run_matrix,
)
from repro.cloud import SpotTrace, gcp1
from repro.core import spothedge
from repro.experiments import ReplayCache, ReplayConfig, TraceReplayer

STEP = 300.0


def bursty_trace(n_zones=4, n_steps=120, seed=3):
    """Constant-capacity base; the chaos scenario supplies the faults."""
    zones = [f"aws:r{z}:z{z}" for z in range(n_zones)]
    capacity = np.full((n_zones, n_steps), 3, dtype=np.int64)
    # A little pre-existing churn so the baseline is not trivially 100%.
    rng = np.random.default_rng(seed)
    for z in range(n_zones):
        for _ in range(2):
            start = int(rng.integers(0, n_steps - 10))
            capacity[z, start : start + 5] = 0
    return SpotTrace("bursty", zones, STEP, capacity)


def blackout_scenario():
    return ScenarioSpec(
        "blackout",
        (CapacityBlackout(start=STEP * 30, end=STEP * 60),),
        description="all zones dark for 2.5h",
    )


class TestValidation:
    def test_rejects_bad_inputs(self):
        trace = bursty_trace()
        scenario = blackout_scenario()
        with pytest.raises(ValueError, match="no scenarios"):
            run_matrix(trace, [], ["SpotHedge"])
        with pytest.raises(ValueError, match="duplicate"):
            run_matrix(trace, [scenario, scenario], ["SpotHedge"])
        with pytest.raises(ValueError, match="reserved"):
            run_matrix(
                trace,
                [ScenarioSpec(BASELINE, scenario.injections)],
                ["SpotHedge"],
            )
        with pytest.raises(ValueError, match="no policies"):
            run_matrix(trace, [scenario], [])
        with pytest.raises(ValueError, match="unknown policies"):
            run_matrix(trace, [scenario], ["SpotHedge", "Madeup"])


class TestDeterminism:
    def test_scorecard_json_byte_identical(self):
        trace = bursty_trace()
        scenarios = [blackout_scenario()]

        def once():
            return run_matrix(
                trace,
                scenarios,
                ["SpotHedge", "EvenSpread"],
                config=ReplayConfig(n_tar=3),
                seed=5,
                use_cache=False,
            ).to_json()

        assert once() == once()

    def test_workers_do_not_change_output(self):
        trace = bursty_trace()
        kwargs = dict(
            config=ReplayConfig(n_tar=3), seed=5, use_cache=False
        )
        serial = run_matrix(
            trace, [blackout_scenario()], ["SpotHedge"], **kwargs
        )
        parallel = run_matrix(
            trace, [blackout_scenario()], ["SpotHedge"], workers=2, **kwargs
        )
        assert serial.to_json() == parallel.to_json()

    def test_seed_changes_output(self):
        trace = bursty_trace()
        storm = ScenarioSpec(
            "storm",
            (
                PreemptionStorm(
                    start=0.0, end=STEP * 120, hit_prob=0.5, correlation=0.5,
                    pulse=STEP * 4,
                ),
            ),
        )
        a = run_matrix(trace, [storm], ["SpotHedge"], seed=1, use_cache=False)
        b = run_matrix(trace, [storm], ["SpotHedge"], seed=2, use_cache=False)
        assert a.to_json() != b.to_json()


class TestScorecardShape:
    def test_cells_and_baselines(self):
        trace = bursty_trace()
        scorecard = run_matrix(
            trace,
            [blackout_scenario()],
            ["SpotHedge", "OnDemand"],
            config=ReplayConfig(n_tar=3),
            use_cache=False,
        )
        assert scorecard.trace == "bursty"
        assert scorecard.trace_digest == trace.digest()
        assert set(scorecard.baselines) == {"SpotHedge", "OnDemand"}
        for entry in scorecard.baselines.values():
            assert set(entry) == {"availability", "relative_cost"}
        cell = scorecard.cell("blackout", "SpotHedge")
        assert 0.0 <= cell["availability"] <= 1.0
        assert cell["availability_under_injection"] is not None
        assert cell["cost_overshoot"] == pytest.approx(
            cell["relative_cost"] - cell["baseline_relative_cost"]
        )
        with pytest.raises(KeyError):
            scorecard.cell("blackout", "RoundRobin")
        with pytest.raises(KeyError):
            scorecard.cell(BASELINE, "SpotHedge")
        # On-demand never loses capacity: the blackout is invisible.
        od = scorecard.cell("blackout", "OnDemand")
        assert od["availability_under_injection"] == 1.0
        # Only the initial cold-start ramp counts against it.
        assert od["slo_violation_minutes"] <= STEP / 60.0

    def test_scorecard_save_round_trip(self, tmp_path):
        scorecard = run_matrix(
            bursty_trace(),
            [blackout_scenario()],
            ["SpotHedge"],
            use_cache=False,
        )
        path = tmp_path / "card.json"
        scorecard.save(path)
        assert path.read_text() == scorecard.to_json() + "\n"


class TestCacheKeying:
    def test_chaos_and_baseline_cells_key_separately(self, tmp_path, monkeypatch):
        """S2: the scenario digest folds into the replay-cache key, so a
        chaos run and a fault-free run of the same (trace, policy,
        config, seed) occupy distinct entries."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ReplayCache()
        assert len(cache) == 0
        trace = bursty_trace()
        first = run_matrix(trace, [blackout_scenario()], ["SpotHedge"])
        # 2 cells (baseline + blackout) -> 2 distinct entries.
        assert len(cache) == 2
        # Re-running is pure cache hits: no new entries, same bytes.
        again = run_matrix(trace, [blackout_scenario()], ["SpotHedge"])
        assert len(cache) == 2
        assert again.to_json() == first.to_json()
        # A different scenario adds exactly one entry (baseline reused).
        other = ScenarioSpec(
            "blackout-2", (CapacityBlackout(start=0.0, end=STEP * 10),)
        )
        run_matrix(trace, [other], ["SpotHedge"])
        assert len(cache) == 3


class TestPaperSanity:
    """Acceptance: on the bundled preemption-storm, SpotHedge holds
    availability above EvenSpread and its on-demand fallback rises
    during the storm then decays after it."""

    def test_spothedge_beats_evenspread_under_storm(self):
        scorecard = run_matrix(
            gcp1(),
            [builtin_scenario("preemption-storm")],
            ["SpotHedge", "EvenSpread"],
            seed=0,
            use_cache=False,
        )
        hedged = scorecard.cell("preemption-storm", "SpotHedge")
        spread = scorecard.cell("preemption-storm", "EvenSpread")
        assert hedged["availability"] >= spread["availability"]
        assert (
            hedged["availability_under_injection"]
            >= spread["availability_under_injection"]
        )
        assert hedged["slo_violation_minutes"] <= spread["slo_violation_minutes"]

    def test_od_fallback_rises_then_decays(self):
        trace = gcp1()
        scenario = builtin_scenario("preemption-storm")
        compiled = compile_scenario(scenario, trace, root_seed=0)
        replayer = TraceReplayer(compiled.trace, ReplayConfig(), seed=0)
        result = replayer.run(spothedge(trace.zone_ids))
        od = result.od_series
        assert od is not None
        step = result.step
        storm_start, storm_end = scenario.windows()[0]
        start_idx = int(storm_start // step)
        end_idx = int(storm_end // step)
        # Quiet before the storm (past the initial cold-start ramp)...
        assert int(od[start_idx - 30 : start_idx].max()) == 0
        # ... rises while spot capacity is being shredded ...
        storm_peak = int(od[start_idx:end_idx].max())
        assert storm_peak > 0
        # ... and decays back to zero within the hour after it ends.
        assert int(od[end_idx : end_idx + 120].min()) == 0
