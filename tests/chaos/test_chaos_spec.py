"""ScenarioSpec: validation, JSON round-trips, digests, the library."""

import json
from pathlib import Path

import pytest

from repro.chaos import (
    BUILTIN_SCENARIOS,
    CapacityBlackout,
    ColdStartSpike,
    Injection,
    NetworkDegradation,
    PreemptionStorm,
    PriceSurge,
    ScenarioSpec,
    WarningDisruption,
    builtin_scenario,
    list_builtin,
    load_scenario,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="empty window"):
            PreemptionStorm(start=100.0, end=100.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="negative start"):
            CapacityBlackout(start=-1.0, end=100.0)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="hit_prob"):
            PreemptionStorm(start=0.0, end=10.0, hit_prob=1.5)
        with pytest.raises(ValueError, match="correlation"):
            PreemptionStorm(start=0.0, end=10.0, correlation=-0.1)
        with pytest.raises(ValueError, match="suppress_prob"):
            WarningDisruption(start=0.0, end=10.0, suppress_prob=2.0)

    def test_severity_must_be_positive(self):
        with pytest.raises(ValueError, match="severity"):
            PreemptionStorm(start=0.0, end=10.0, severity=0.0)

    def test_cold_start_factor_floor(self):
        with pytest.raises(ValueError, match="factor"):
            ColdStartSpike(start=0.0, end=10.0, factor=0.5)

    def test_price_multiplier_positive(self):
        with pytest.raises(ValueError, match="multiplier"):
            PriceSurge(start=0.0, end=10.0, multiplier=0.0)

    def test_network_extra_rtt_positive(self):
        with pytest.raises(ValueError, match="extra_rtt"):
            NetworkDegradation(start=0.0, end=10.0, extra_rtt=0.0)

    def test_scenario_needs_name_and_injections(self):
        storm = PreemptionStorm(start=0.0, end=10.0)
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec(name="", injections=(storm,))
        with pytest.raises(ValueError, match="no injections"):
            ScenarioSpec(name="x", injections=())
        with pytest.raises(TypeError):
            ScenarioSpec(name="x", injections=("not an injection",))

    def test_active_at_is_half_open(self):
        storm = PreemptionStorm(start=10.0, end=20.0)
        assert not storm.active_at(9.9)
        assert storm.active_at(10.0)
        assert storm.active_at(19.9)
        assert not storm.active_at(20.0)
        assert storm.duration == 10.0


class TestSerialisation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown injection kind"):
            Injection.from_dict({"kind": "meteor_strike", "start": 0, "end": 1})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            Injection.from_dict(
                {"kind": "price_surge", "start": 0, "end": 1, "velocity": 9}
            )

    def test_zone_lists_become_tuples(self):
        injection = Injection.from_dict(
            {
                "kind": "capacity_blackout",
                "start": 0.0,
                "end": 60.0,
                "zones": ["z1", "z2"],
                "residual_capacity": 1,
            }
        )
        assert injection.zones == ("z1", "z2")

    @pytest.mark.parametrize("name", list(BUILTIN_SCENARIOS))
    def test_builtin_round_trip(self, name):
        scenario = builtin_scenario(name)
        restored = ScenarioSpec.from_json(scenario.to_json())
        assert restored == scenario
        assert restored.digest() == scenario.digest()

    def test_digest_changes_with_content(self):
        a = ScenarioSpec("s", (PriceSurge(start=0.0, end=10.0),))
        b = ScenarioSpec("s", (PriceSurge(start=0.0, end=10.0, multiplier=9.0),))
        assert a.digest() != b.digest()
        assert a.digest() == ScenarioSpec("s", (PriceSurge(start=0.0, end=10.0),)).digest()

    def test_save_load(self, tmp_path):
        scenario = builtin_scenario("kitchen-sink")
        path = tmp_path / "s.json"
        scenario.save(path)
        assert ScenarioSpec.load(path) == scenario

    def test_windows_and_of_kind(self):
        scenario = builtin_scenario("cold-start-storm")
        assert len(scenario.windows()) == 2
        assert scenario.last_end == max(end for _, end in scenario.windows())
        assert len(scenario.of_kind("cold_start_spike")) == 1
        assert scenario.of_kind("price_surge") == []


class TestLibrary:
    def test_bundled_files_match_builders(self):
        """configs/scenarios/*.json are generated from the builders; the
        two forms must never drift."""
        directory = REPO_ROOT / "configs" / "scenarios"
        files = sorted(p.stem for p in directory.glob("*.json"))
        assert files == sorted(list_builtin())
        for name in list_builtin():
            on_disk = ScenarioSpec.load(directory / f"{name}.json")
            assert on_disk == builtin_scenario(name), name
            assert on_disk.digest() == builtin_scenario(name).digest()

    def test_builders_return_fresh_objects(self):
        assert builtin_scenario("price-surge") is not builtin_scenario("price-surge")

    def test_unknown_builtin(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            builtin_scenario("nope")

    def test_load_scenario_by_name_and_path(self, tmp_path):
        assert load_scenario("price-surge") == builtin_scenario("price-surge")
        path = tmp_path / "custom.json"
        builtin_scenario("price-surge").save(path)
        assert load_scenario(str(path)) == builtin_scenario("price-surge")
        with pytest.raises(FileNotFoundError):
            load_scenario(str(tmp_path / "missing.json"))
        with pytest.raises(ValueError, match="unknown scenario"):
            load_scenario("not-a-scenario-or-path")

    def test_every_builtin_json_is_canonical(self):
        """Files on disk are exactly ``to_json() + newline``."""
        directory = REPO_ROOT / "configs" / "scenarios"
        for name in list_builtin():
            text = (directory / f"{name}.json").read_text()
            assert text == builtin_scenario(name).to_json() + "\n", name
            # And valid standalone JSON with the expected identity.
            assert json.loads(text)["name"] == name
