"""Unit tests for the WAN latency model (Fig. 6b)."""

import pytest

from repro.cloud import NetworkModel, default_network


@pytest.fixture()
def net():
    return default_network()


class TestNetworkModel:
    def test_same_region_is_fast(self, net):
        assert net.rtt("aws:us-west-2", "aws:us-west-2") < 0.01

    def test_us_eu_near_100ms(self, net):
        """§3.1: around 100 ms round trip between US and Europe."""
        rtt = net.rtt("aws:us-east-1", "aws:eu-central-1")
        assert 0.05 <= rtt <= 0.15

    def test_symmetric(self, net):
        assert net.rtt("aws:us-east-1", "aws:us-west-2") == net.rtt(
            "aws:us-west-2", "aws:us-east-1"
        )

    def test_accepts_bare_region_names(self, net):
        assert net.rtt("us-east-1", "us-west-2") == net.rtt(
            "aws:us-east-1", "aws:us-west-2"
        )

    def test_unknown_pair_falls_back_to_geography(self, net):
        # Unknown NA pair -> same-continent estimate.
        rtt = net.rtt("aws:us-east-1", "azure:eastus")
        assert 0.0 < rtt < 0.1

    def test_cross_pacific_slowest(self, net):
        asia = net.rtt("gcp:us-central1", "gcp:asia-east1")
        us = net.rtt("gcp:us-central1", "gcp:us-east1")
        assert asia > us

    def test_one_way_is_half_rtt(self, net):
        assert net.one_way("us-east-1", "us-west-2") == pytest.approx(
            net.rtt("us-east-1", "us-west-2") / 2
        )

    def test_override(self):
        net = NetworkModel({("a", "b"): 0.5})
        assert net.rtt("x:a", "x:b") == 0.5

    def test_negative_override_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel({("a", "b"): -0.1})

    def test_processing_dominates_network(self, net):
        """The §3.1 argument: worst-case WAN RTT is far below the seconds
        of compute an LLM request takes."""
        from repro.serving import vicuna_13b_profile
        from repro.workloads import Request

        profile = vicuna_13b_profile()
        request = Request(0, 0.0, input_tokens=20, output_tokens=44)
        # The regions SkyServe actually spans in §5.1 (US + EU).
        worst_rtt = max(
            net.rtt(a, b)
            for a in ("us-east-2", "us-west-2", "eu-central-1")
            for b in ("us-east-2", "us-west-2", "eu-central-1")
        )
        assert profile.processing_time(request) > 10 * worst_rtt
