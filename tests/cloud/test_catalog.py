"""Unit tests for the instance catalog and Table 1 pricing."""

import pytest

from repro.cloud import SPOT_DISCOUNT_TABLE, Catalog, InstanceType, default_catalog


@pytest.fixture()
def catalog():
    return default_catalog()


class TestInstanceType:
    def test_spot_price_derived_from_ratio(self):
        itype = InstanceType("x", "aws", "V100", 1, 8, on_demand_hourly=10.0, spot_ratio=0.25)
        assert itype.spot_hourly == pytest.approx(2.5)

    def test_hourly_price_selector(self):
        itype = InstanceType("x", "aws", "V100", 1, 8, on_demand_hourly=10.0, spot_ratio=0.25)
        assert itype.hourly_price(spot=True) == pytest.approx(2.5)
        assert itype.hourly_price(spot=False) == pytest.approx(10.0)

    def test_cpu_instance_has_no_gpu(self):
        itype = InstanceType("c", "gcp", None, 0, 176, on_demand_hourly=7.0, spot_ratio=0.25)
        assert not itype.is_gpu

    def test_invalid_spot_ratio_rejected(self):
        with pytest.raises(ValueError):
            InstanceType("x", "aws", "V100", 1, 8, on_demand_hourly=10.0, spot_ratio=0.0)
        with pytest.raises(ValueError):
            InstanceType("x", "aws", "V100", 1, 8, on_demand_hourly=10.0, spot_ratio=1.5)

    def test_non_positive_price_rejected(self):
        with pytest.raises(ValueError):
            InstanceType("x", "aws", "V100", 1, 8, on_demand_hourly=0.0, spot_ratio=0.5)

    def test_accelerator_count_without_accelerator_rejected(self):
        with pytest.raises(ValueError):
            InstanceType("x", "aws", None, 4, 8, on_demand_hourly=1.0, spot_ratio=0.5)


class TestDefaultCatalog:
    def test_contains_paper_instance_types(self, catalog):
        for name in ("g5.48xlarge", "g4dn.12xlarge", "p3.2xlarge", "a2-ultragpu-4g"):
            assert name in catalog

    def test_g5_matches_paper_prices(self, catalog):
        # §2.4: on-demand $16.3/h, spot $4.9/h.
        g5 = catalog.get("g5.48xlarge")
        assert g5.on_demand_hourly == pytest.approx(16.3, rel=0.01)
        assert g5.spot_hourly == pytest.approx(4.9, rel=0.01)

    def test_unknown_type_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.get("nonexistent")

    def test_with_accelerator(self, catalog):
        v100s = catalog.with_accelerator("V100")
        assert v100s
        assert all(t.accelerator == "V100" for t in v100s)

    def test_duplicate_names_rejected(self):
        itype = InstanceType("x", "aws", "V100", 1, 8, on_demand_hourly=1.0, spot_ratio=0.5)
        with pytest.raises(ValueError):
            Catalog([itype, itype])

    def test_iteration_and_len(self, catalog):
        assert len(list(catalog)) == len(catalog)


class TestTable1:
    """The Table 1 discount bands themselves."""

    def test_all_12_cells_present(self):
        clouds = {"aws", "azure", "gcp"}
        gpus = {"A100", "V100", "T4", "K80"}
        assert set(SPOT_DISCOUNT_TABLE) == {(c, g) for c in clouds for g in gpus}

    def test_bands_are_ordered_and_in_range(self):
        for (cloud, gpu), (low, high) in SPOT_DISCOUNT_TABLE.items():
            assert 0.0 < low <= high <= 1.0, (cloud, gpu)

    def test_paper_headline_cells(self, catalog):
        # AWS A100 spot is 10% of on-demand; Azure A100 is 50%.
        assert catalog.spot_discount("aws", "A100") == (0.10, 0.10)
        assert catalog.spot_discount("azure", "A100") == (0.50, 0.50)
        assert catalog.spot_discount("gcp", "V100") == (0.33, 0.33)

    def test_spot_always_cheaper_than_on_demand(self):
        # The economic premise of the paper: 8-50% of on-demand cost.
        for (cloud, gpu), (low, high) in SPOT_DISCOUNT_TABLE.items():
            assert high <= 0.50, f"{cloud}/{gpu} spot not within the 8-50% band"
            assert low >= 0.08

    def test_unknown_cell_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.spot_discount("aws", "H100")

    def test_catalog_ratios_respect_table(self, catalog):
        """Every GPU instance's spot ratio sits inside its Table 1 band."""
        for itype in catalog:
            if not itype.is_gpu:
                continue
            key = (itype.cloud, itype.accelerator)
            if key not in SPOT_DISCOUNT_TABLE:
                continue
            low, high = SPOT_DISCOUNT_TABLE[key]
            assert low <= itype.spot_ratio <= high, itype.name
