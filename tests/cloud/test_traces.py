"""Unit tests for spot traces: format, stats, and calibration against the
paper's measurements (§2.2, §2.3, §5.2)."""

import numpy as np
import pytest

from repro.cloud import (
    DAY,
    HOUR,
    WEEK,
    SpotTrace,
    TraceZoneSpec,
    aws1,
    aws2,
    aws3,
    cpu_trace,
    gcp1,
    make_correlated_trace,
)


def tiny_trace():
    capacity = np.array([[2, 2, 0, 1], [0, 1, 1, 1]])
    return SpotTrace("tiny", ["aws:r1:r1a", "aws:r1:r1b"], 60.0, capacity)


class TestSpotTraceFormat:
    def test_duration(self):
        assert tiny_trace().duration == 240.0

    def test_capacity_at(self):
        trace = tiny_trace()
        assert trace.capacity_at("aws:r1:r1a", 0.0) == 2
        assert trace.capacity_at("aws:r1:r1a", 59.9) == 2
        assert trace.capacity_at("aws:r1:r1a", 120.0) == 0
        # Clamped at the end of the trace.
        assert trace.capacity_at("aws:r1:r1a", 10_000.0) == 1

    def test_unknown_zone_raises(self):
        with pytest.raises(KeyError):
            tiny_trace().zone_row("aws:r1:nope")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            tiny_trace().capacity_at("aws:r1:r1a", -1.0)

    def test_availability(self):
        trace = tiny_trace()
        assert trace.availability("aws:r1:r1a") == pytest.approx(0.75)
        assert trace.availability("aws:r1:r1a", threshold=2) == pytest.approx(0.5)

    def test_pooled_availability(self):
        trace = tiny_trace()
        # Pool has >= 1 capacity in every step.
        assert trace.pooled_availability() == 1.0
        assert trace.pooled_availability(threshold=2) == pytest.approx(0.75)

    def test_region_blackout(self):
        trace = tiny_trace()
        # Both zones are in r1; never simultaneously zero.
        assert trace.region_blackout_fraction("aws:r1") == 0.0

    def test_preemption_indicator(self):
        trace = tiny_trace()
        indicator = trace.preemption_indicator("aws:r1:r1a")
        np.testing.assert_array_equal(indicator, [False, False, True, False])

    def test_subset(self):
        sub = tiny_trace().subset(["aws:r1:r1b"])
        assert sub.zone_ids == ["aws:r1:r1b"]
        assert sub.capacity.shape == (1, 4)

    def test_regions_property(self):
        assert tiny_trace().regions == ["aws:r1"]

    def test_validation_negative_capacity(self):
        with pytest.raises(ValueError):
            SpotTrace("bad", ["z"], 60.0, np.array([[-1]]))

    def test_validation_shape_mismatch(self):
        with pytest.raises(ValueError):
            SpotTrace("bad", ["z1", "z2"], 60.0, np.array([[1, 1]]))

    def test_validation_duplicate_zones(self):
        with pytest.raises(ValueError):
            SpotTrace("bad", ["z", "z"], 60.0, np.ones((2, 2), dtype=int))


class TestSerialisation:
    def test_json_round_trip(self):
        trace = tiny_trace()
        restored = SpotTrace.from_json(trace.to_json())
        assert restored.name == trace.name
        assert restored.zone_ids == trace.zone_ids
        assert restored.step == trace.step
        np.testing.assert_array_equal(restored.capacity, trace.capacity)

    def test_save_load(self, tmp_path):
        path = tmp_path / "trace.json"
        trace = tiny_trace()
        trace.save(path)
        restored = SpotTrace.load(path)
        np.testing.assert_array_equal(restored.capacity, trace.capacity)


class TestGenerator:
    def test_deterministic_for_seed(self):
        spec = [TraceZoneSpec("aws:r:ra", 3 * HOUR, 2 * HOUR, 4)]
        a = make_correlated_trace("t", spec, DAY, seed=5)
        b = make_correlated_trace("t", spec, DAY, seed=5)
        np.testing.assert_array_equal(a.capacity, b.capacity)

    def test_different_seeds_differ(self):
        spec = [TraceZoneSpec("aws:r:ra", 3 * HOUR, 2 * HOUR, 4)]
        a = make_correlated_trace("t", spec, DAY, seed=5)
        b = make_correlated_trace("t", spec, DAY, seed=6)
        assert not np.array_equal(a.capacity, b.capacity)

    def test_stationary_availability_close_to_expected(self):
        # mean_up / (mean_up + mean_down) = 0.75 over a long horizon.
        spec = [TraceZoneSpec("aws:r:ra", 6 * HOUR, 2 * HOUR, 4)]
        trace = make_correlated_trace("t", spec, 8 * WEEK, seed=1)
        assert trace.availability("aws:r:ra") == pytest.approx(0.75, abs=0.08)

    def test_shocks_create_intra_region_correlation(self):
        specs = [
            TraceZoneSpec(f"aws:r:r{c}", 6 * HOUR, 2 * HOUR, 4) for c in "abc"
        ] + [TraceZoneSpec("aws:q:qa", 6 * HOUR, 2 * HOUR, 4)]
        trace = make_correlated_trace(
            "t",
            specs,
            4 * WEEK,
            region_shock_rate=1 / (6 * HOUR),
            region_shock_mean_duration=HOUR,
            seed=2,
        )
        rows = [trace.zone_row(z) > 0 for z in trace.zone_ids]
        intra = np.corrcoef(rows[0], rows[1])[0, 1]
        inter = np.corrcoef(rows[0], rows[3])[0, 1]
        assert intra > inter + 0.1

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            make_correlated_trace("t", [TraceZoneSpec("z", 1.0, 1.0, 1)], 0.0)

    def test_invalid_zone_spec_rejected(self):
        with pytest.raises(ValueError):
            TraceZoneSpec("z", mean_up=0.0, mean_down=1.0, capacity_up=1)
        with pytest.raises(ValueError):
            TraceZoneSpec("z", mean_up=1.0, mean_down=1.0, capacity_up=0)


class TestCannedTraces:
    """Calibration against the statistics the paper reports per dataset."""

    def test_aws1_shape(self):
        trace = aws1()
        assert trace.duration == pytest.approx(2 * WEEK)
        assert len(trace.zone_ids) == 3
        assert len(trace.regions) == 1

    def test_aws2_single_region_blackouts(self):
        # §2.2: 33.1% of time spot GPUs unavailable across all zones of
        # the region in AWS 2.  Accept a generous band around it.
        trace = aws2()
        assert trace.duration == pytest.approx(3 * WEEK)
        blackout = trace.region_blackout_fraction(trace.regions[0])
        assert 0.20 <= blackout <= 0.45

    def test_aws3_shape_and_pooled_availability(self):
        # Fig. 5b: pooled availability over 9 zones / 3 regions ≈ 99.2%.
        trace = aws3()
        assert len(trace.zone_ids) == 9
        assert len(trace.regions) == 3
        assert trace.pooled_availability() >= 0.97

    def test_gcp1_shape(self):
        trace = gcp1()
        assert trace.duration == pytest.approx(3 * DAY)
        assert len(trace.zone_ids) == 6
        assert len(trace.regions) == 5

    def test_gpu_zone_availability_in_paper_band(self):
        # §2.3: spot GPU availability 16.7–90.4%.
        for trace in (aws1(), aws2(), aws3(), gcp1()):
            for zone in trace.zone_ids:
                availability = trace.availability(zone)
                assert 0.10 <= availability <= 0.95, (trace.name, zone, availability)

    def test_cpu_more_available_than_gpu(self):
        # Fig. 4: spot CPUs at 95.6–99.9% vs far lower for GPUs.
        cpu = cpu_trace()
        gpu = aws2()
        worst_cpu = min(cpu.availability(z) for z in cpu.zone_ids)
        best_gpu = max(gpu.availability(z) for z in gpu.zone_ids)
        assert worst_cpu >= 0.95
        assert worst_cpu > best_gpu


class TestDiurnalModulation:
    def test_capacity_dips_at_peak_hour(self):
        specs = [TraceZoneSpec("aws:r:ra", 1000 * HOUR, 1.0, capacity_up=10)]
        trace = make_correlated_trace(
            "diurnal", specs, duration=DAY, diurnal_amplitude=0.5,
            diurnal_peak_hour=14.0, seed=1,
        )
        row = trace.zone_row("aws:r:ra")
        peak_step = int(14 * HOUR / trace.step)
        night_step = int(2 * HOUR / trace.step)
        assert row[peak_step] < row[night_step]
        # 50% squeeze at the peak.
        assert row[peak_step] == 5
        assert row[night_step] == 10

    def test_zero_amplitude_is_identity(self):
        specs = [TraceZoneSpec("aws:r:ra", 6 * HOUR, 2 * HOUR, capacity_up=4)]
        plain = make_correlated_trace("p", specs, duration=DAY, seed=2)
        modulated = make_correlated_trace(
            "m", specs, duration=DAY, diurnal_amplitude=0.0, seed=2
        )
        np.testing.assert_array_equal(plain.capacity, modulated.capacity)

    def test_amplitude_validation(self):
        specs = [TraceZoneSpec("aws:r:ra", 1.0, 1.0, 1)]
        with pytest.raises(ValueError):
            make_correlated_trace("x", specs, duration=DAY, diurnal_amplitude=1.5)

    def test_capacity_never_negative(self):
        specs = [TraceZoneSpec("aws:r:ra", 6 * HOUR, 2 * HOUR, capacity_up=1)]
        trace = make_correlated_trace(
            "d", specs, duration=2 * DAY, diurnal_amplitude=1.0, seed=3
        )
        assert trace.capacity.min() >= 0


class TestDigest:
    """Content digests key the replay result cache — they must track
    every field that changes replay output and nothing else."""

    ZONES = ["aws:r:a", "aws:r:b"]

    def _trace(self, **overrides):
        params = dict(
            name="d", zones=self.ZONES, step=60.0,
            capacity=np.full((2, 30), 3),
        )
        params.update(overrides)
        return SpotTrace(
            params["name"], params["zones"], params["step"], params["capacity"]
        )

    def test_digest_is_sha256_hex(self):
        digest = self._trace().digest()
        assert len(digest) == 64
        assert int(digest, 16) >= 0

    def test_digest_stable_across_calls_and_instances(self):
        trace = self._trace()
        assert trace.digest() == trace.digest()  # memoised path
        assert trace.digest() == self._trace().digest()

    def test_digest_tracks_capacity(self):
        other = np.full((2, 30), 3)
        other[1, 17] = 2
        assert self._trace().digest() != self._trace(capacity=other).digest()

    def test_digest_tracks_metadata(self):
        base = self._trace().digest()
        assert self._trace(name="other").digest() != base
        assert self._trace(step=30.0).digest() != base
        assert (
            self._trace(zones=["aws:r:a", "aws:r:c"]).digest() != base
        )

    def test_digest_independent_of_dtype_and_layout(self):
        """Same capacities in a different dtype or memory order hash
        identically — the digest canonicalises to little-endian int64."""
        cap = np.full((2, 30), 3)
        a = self._trace(capacity=cap.astype(np.int32))
        b = self._trace(capacity=np.asfortranarray(cap))
        assert a.digest() == b.digest() == self._trace().digest()

    def test_canned_traces_have_distinct_digests(self):
        digests = {t().digest() for t in (aws1, gcp1)}
        assert len(digests) == 2


class TestChaosDigest:
    """``chaos_digest`` (set by ``repro.chaos.overlay.compile_scenario``)
    folds into the content digest so chaos replays key result caches
    separately from fault-free replays of the same grid."""

    def _trace(self, chaos_digest=None):
        return SpotTrace(
            "d", ["aws:r:a", "aws:r:b"], 60.0, np.full((2, 30), 3),
            chaos_digest=chaos_digest,
        )

    def test_pristine_trace_has_no_chaos_digest(self):
        assert self._trace().chaos_digest is None

    def test_chaos_digest_changes_content_digest(self):
        base = self._trace().digest()
        assert self._trace(chaos_digest="a" * 64).digest() != base
        assert (
            self._trace(chaos_digest="a" * 64).digest()
            != self._trace(chaos_digest="b" * 64).digest()
        )
        assert (
            self._trace(chaos_digest="a" * 64).digest()
            == self._trace(chaos_digest="a" * 64).digest()
        )

    def test_subset_and_window_propagate_chaos_digest(self):
        trace = self._trace(chaos_digest="a" * 64)
        assert trace.subset(["aws:r:b"]).chaos_digest == "a" * 64
        assert trace.window(0.0, 600.0).chaos_digest == "a" * 64
        # ... and pristine traces stay pristine through both.
        assert self._trace().subset(["aws:r:b"]).chaos_digest is None

    def test_json_round_trip_preserves_chaos_digest(self):
        trace = self._trace(chaos_digest="c" * 64)
        restored = SpotTrace.from_json(trace.to_json())
        assert restored.chaos_digest == "c" * 64
        assert restored.digest() == trace.digest()

    def test_pristine_json_has_no_chaos_key(self):
        """Pre-chaos trace files keep their exact bytes and digests."""
        import json as _json

        payload = _json.loads(self._trace().to_json())
        assert "chaos_digest" not in payload
