"""Unit tests for the simulated cloud provider."""

import numpy as np
import pytest

from repro.cloud import (
    CloudConfig,
    InstanceCallbacks,
    InstanceState,
    SimCloud,
    SpotTrace,
)
from repro.sim import SimulationEngine

ZONE_A = "aws:us-west-2:us-west-2a"
ZONE_B = "aws:us-west-2:us-west-2b"


def build_cloud(capacity_rows, step=60.0, config=None):
    """Cloud over a two-zone trace with the given capacity rows."""
    engine = SimulationEngine()
    trace = SpotTrace("test", [ZONE_A, ZONE_B], step, np.asarray(capacity_rows))
    cloud = SimCloud(
        engine,
        trace,
        config=config
        or CloudConfig(provision_delay_mean=60.0, setup_delay_mean=120.0, delay_jitter=0.0),
    )
    return engine, cloud


class Recorder:
    """Collects lifecycle callbacks for assertions."""

    def __init__(self):
        self.ready = []
        self.preempted = []
        self.failed = []
        self.warned = []

    def callbacks(self):
        return InstanceCallbacks(
            on_ready=self.ready.append,
            on_preempted=self.preempted.append,
            on_failed=self.failed.append,
            on_preempt_warning=self.warned.append,
        )


class TestLaunch:
    def test_successful_launch_reaches_ready(self):
        engine, cloud = build_cloud([[4] * 10, [4] * 10])
        rec = Recorder()
        instance = cloud.request_instance(
            ZONE_A, "p3.2xlarge", spot=True, callbacks=rec.callbacks()
        )
        engine.run_until(200.0)
        assert instance.state is InstanceState.READY
        assert rec.ready == [instance]
        # Cold start = provision (60) + setup (120) = 180 s (§2.3: 183 s).
        assert instance.ready_at == pytest.approx(180.0)

    def test_launch_fails_in_zero_capacity_zone(self):
        engine, cloud = build_cloud([[0] * 10, [4] * 10])
        rec = Recorder()
        instance = cloud.request_instance(
            ZONE_A, "p3.2xlarge", spot=True, callbacks=rec.callbacks()
        )
        engine.run_until(100.0)
        assert instance.state is InstanceState.FAILED
        assert rec.failed == [instance]
        # Failure detected quickly (InsufficientCapacity-style error).
        assert instance.ended_at == pytest.approx(30.0)
        assert cloud.launch_failures.value == 1

    def test_capacity_limits_concurrent_spot(self):
        engine, cloud = build_cloud([[2] * 10, [4] * 10])
        rec = Recorder()
        instances = [
            cloud.request_instance(ZONE_A, "p3.2xlarge", spot=True, callbacks=rec.callbacks())
            for _ in range(3)
        ]
        engine.run_until(300.0)
        states = sorted(i.state.value for i in instances)
        assert states.count("ready") == 2
        assert states.count("failed") == 1

    def test_on_demand_unlimited_by_default(self):
        engine, cloud = build_cloud([[0] * 10, [0] * 10])
        rec = Recorder()
        instances = [
            cloud.request_instance(ZONE_A, "p3.2xlarge", spot=False, callbacks=rec.callbacks())
            for _ in range(10)
        ]
        engine.run_until(300.0)
        assert all(i.state is InstanceState.READY for i in instances)

    def test_on_demand_capacity_limit(self):
        engine, cloud = build_cloud(
            [[0] * 10, [0] * 10],
            config=CloudConfig(delay_jitter=0.0, on_demand_capacity=1),
        )
        a = cloud.request_instance(ZONE_A, "p3.2xlarge", spot=False)
        b = cloud.request_instance(ZONE_A, "p3.2xlarge", spot=False)
        engine.run_until(300.0)
        assert a.state is InstanceState.READY
        assert b.state is InstanceState.FAILED

    def test_unknown_zone_rejected(self):
        engine, cloud = build_cloud([[1] * 10, [1] * 10])
        with pytest.raises(KeyError):
            cloud.request_instance("aws:eu-west-1:eu-west-1a", "p3.2xlarge", spot=True)

    def test_unknown_instance_type_rejected(self):
        engine, cloud = build_cloud([[1] * 10, [1] * 10])
        with pytest.raises(KeyError):
            cloud.request_instance(ZONE_A, "h100-mega", spot=True)


class TestPreemption:
    def test_capacity_drop_preempts_ready_instance(self):
        rows = [[2] * 10, [2] * 10]
        rows[0] = [2] * 5 + [0] * 5  # zone A loses capacity at t=300
        engine, cloud = build_cloud(rows)
        rec = Recorder()
        a = cloud.request_instance(ZONE_A, "p3.2xlarge", spot=True, callbacks=rec.callbacks())
        b = cloud.request_instance(ZONE_B, "p3.2xlarge", spot=True, callbacks=rec.callbacks())
        engine.run_until(400.0)
        assert a.state is InstanceState.PREEMPTED
        assert b.state is InstanceState.READY
        assert rec.preempted == [a]
        assert cloud.preemptions.value == 1
        assert cloud.preemptions_by_zone[ZONE_A] == 1

    def test_partial_drop_preempts_excess_only(self):
        rows = [[3] * 5 + [1] * 5, [0] * 10]
        engine, cloud = build_cloud(rows)
        rec = Recorder()
        instances = [
            cloud.request_instance(ZONE_A, "p3.2xlarge", spot=True, callbacks=rec.callbacks())
            for _ in range(3)
        ]
        engine.run_until(400.0)
        preempted = [i for i in instances if i.state is InstanceState.PREEMPTED]
        ready = [i for i in instances if i.state is InstanceState.READY]
        assert len(preempted) == 2
        assert len(ready) == 1

    def test_capacity_drop_during_provisioning_is_failure(self):
        # Capacity vanishes at t=60, before the VM (t=60+jitter... here
        # exactly 60) — use a drop at step 1 (t=60) with provisioning 60.
        rows = [[1] * 1 + [0] * 9, [0] * 10]
        engine, cloud = build_cloud(rows)
        rec = Recorder()
        instance = cloud.request_instance(
            ZONE_A, "p3.2xlarge", spot=True, callbacks=rec.callbacks()
        )
        engine.run_until(100.0)
        assert instance.state is InstanceState.FAILED
        assert rec.failed == [instance]
        assert rec.preempted == []

    def test_preemption_warning_precedes_reclaim(self):
        # Capacity drops at t=300; with a 120 s warning the termination
        # notice arrives at t=180 and the kill happens exactly at the
        # drop.
        rows = [[1] * 5 + [0] * 5, [0] * 10]
        engine, cloud = build_cloud(
            rows,
            config=CloudConfig(delay_jitter=0.0, preempt_warning=120.0),
        )
        rec = Recorder()
        instance = cloud.request_instance(
            ZONE_A, "p3.2xlarge", spot=True, callbacks=rec.callbacks()
        )
        engine.run_until(200.0)
        assert rec.warned == [instance]
        assert instance.preempt_warned
        assert not instance.state.is_terminal
        engine.run_until(250.0)
        assert instance.state is InstanceState.READY  # serving through grace
        engine.run_until(350.0)
        assert instance.state is InstanceState.PREEMPTED
        assert instance.ended_at == pytest.approx(300.0)

    def test_late_launch_reclaimed_without_warning(self):
        # An instance launched after the notice window gets no warning
        # (best-effort semantics) but is still reclaimed at the drop.
        rows = [[2] * 5 + [0] * 5, [0] * 10]
        engine, cloud = build_cloud(
            rows,
            config=CloudConfig(delay_jitter=0.0, preempt_warning=120.0),
        )
        rec = Recorder()
        engine.run_until(250.0)  # past the t=180 warning point
        late = cloud.request_instance(
            ZONE_A, "p3.2xlarge", spot=True, callbacks=rec.callbacks()
        )
        engine.run_until(400.0)
        assert rec.warned == []
        assert late.state in (InstanceState.PREEMPTED, InstanceState.FAILED)

    def test_capacity_recovery_allows_relaunch(self):
        rows = [[1] * 2 + [0] * 2 + [1] * 6, [0] * 10]
        engine, cloud = build_cloud(rows)
        first = cloud.request_instance(ZONE_A, "p3.2xlarge", spot=True)
        engine.run_until(130.0)
        assert first.state is InstanceState.PREEMPTED
        # Wait for the zone's capacity to come back (t >= 240).
        engine.run_until(250.0)
        second = cloud.request_instance(ZONE_A, "p3.2xlarge", spot=True)
        assert second.state is InstanceState.PROVISIONING
        engine.run_until(500.0)
        assert second.state is InstanceState.READY


class TestTerminate:
    def test_terminate_ready_instance(self):
        engine, cloud = build_cloud([[2] * 10, [2] * 10])
        instance = cloud.request_instance(ZONE_A, "p3.2xlarge", spot=True)
        engine.run_until(200.0)
        cloud.terminate(instance)
        assert instance.state is InstanceState.TERMINATED

    def test_terminate_frees_capacity(self):
        engine, cloud = build_cloud([[1] * 10, [0] * 10])
        first = cloud.request_instance(ZONE_A, "p3.2xlarge", spot=True)
        engine.run_until(200.0)
        cloud.terminate(first)
        assert cloud.spot_room(ZONE_A) == 1

    def test_terminate_idempotent_on_dead(self):
        engine, cloud = build_cloud([[1] * 10, [0] * 10])
        instance = cloud.request_instance(ZONE_A, "p3.2xlarge", spot=True)
        engine.run_until(200.0)
        cloud.terminate(instance)
        cloud.terminate(instance)  # no error
        assert instance.state is InstanceState.TERMINATED

    def test_terminate_during_provisioning_cancels_ready(self):
        engine, cloud = build_cloud([[1] * 10, [0] * 10])
        rec = Recorder()
        instance = cloud.request_instance(
            ZONE_A, "p3.2xlarge", spot=True, callbacks=rec.callbacks()
        )
        cloud.terminate(instance)
        engine.run_until(500.0)
        assert instance.state is InstanceState.TERMINATED
        assert rec.ready == []


class TestBillingIntegration:
    def test_billing_covers_cold_start_but_not_provisioning(self):
        engine, cloud = build_cloud([[1] * 100, [0] * 100])
        instance = cloud.request_instance(ZONE_A, "p3.2xlarge", spot=True)
        engine.run_until(3600.0 + 60.0)  # 60s provisioning + 1h billed
        expected = instance.instance_type.spot_hourly
        assert cloud.billing.total(engine.now) == pytest.approx(expected, rel=1e-6)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CloudConfig(delay_jitter=1.5)
        with pytest.raises(ValueError):
            CloudConfig(provision_delay_mean=-1)
        assert CloudConfig().cold_start_mean == pytest.approx(180.0)
