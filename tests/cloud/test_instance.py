"""Unit tests for the instance lifecycle state machine and billing."""

import pytest

from repro.cloud import InstanceState, default_catalog
from repro.cloud.instance import Instance


@pytest.fixture()
def instance():
    itype = default_catalog().get("p3.2xlarge")
    return Instance(
        zone_id="aws:us-west-2:us-west-2a",
        instance_type=itype,
        spot=True,
        launched_at=0.0,
    )


class TestTransitions:
    def test_initial_state(self, instance):
        assert instance.state is InstanceState.PROVISIONING
        assert instance.state.is_alive

    def test_happy_path(self, instance):
        instance.transition(InstanceState.INITIALIZING, 60.0)
        assert instance.billing_started_at == 60.0
        instance.transition(InstanceState.READY, 180.0)
        assert instance.ready_at == 180.0
        instance.transition(InstanceState.PREEMPTED, 500.0)
        assert instance.ended_at == 500.0
        assert instance.state.is_terminal

    def test_fail_during_provisioning(self, instance):
        instance.transition(InstanceState.FAILED, 30.0)
        assert instance.state is InstanceState.FAILED
        assert instance.billing_started_at is None

    def test_preempted_while_initializing(self, instance):
        instance.transition(InstanceState.INITIALIZING, 60.0)
        instance.transition(InstanceState.PREEMPTED, 90.0)
        assert instance.state is InstanceState.PREEMPTED

    def test_cannot_skip_initializing(self, instance):
        with pytest.raises(RuntimeError):
            instance.transition(InstanceState.READY, 10.0)

    def test_cannot_fail_after_vm_running(self, instance):
        instance.transition(InstanceState.INITIALIZING, 60.0)
        with pytest.raises(RuntimeError):
            instance.transition(InstanceState.FAILED, 70.0)

    def test_terminal_is_final(self, instance):
        instance.transition(InstanceState.TERMINATED, 10.0)
        with pytest.raises(RuntimeError):
            instance.transition(InstanceState.INITIALIZING, 20.0)

    def test_alive_flags(self):
        assert InstanceState.PROVISIONING.is_alive
        assert InstanceState.READY.is_alive
        assert not InstanceState.PREEMPTED.is_alive
        assert not InstanceState.FAILED.is_alive


class TestBilling:
    def test_no_billing_before_vm_runs(self, instance):
        assert instance.billed_cost(1000.0) == 0.0

    def test_billing_includes_cold_start(self, instance):
        """§2.3: users are billed during the cold start period."""
        instance.transition(InstanceState.INITIALIZING, 0.0)
        cost = instance.billed_cost(3600.0)
        assert cost == pytest.approx(instance.instance_type.spot_hourly)

    def test_billing_stops_at_termination(self, instance):
        instance.transition(InstanceState.INITIALIZING, 0.0)
        instance.transition(InstanceState.READY, 120.0)
        instance.transition(InstanceState.TERMINATED, 1800.0)
        assert instance.billed_cost(1e9) == pytest.approx(
            instance.instance_type.spot_hourly / 2
        )

    def test_on_demand_billed_at_full_price(self):
        itype = default_catalog().get("p3.2xlarge")
        od = Instance(
            zone_id="aws:us-west-2:us-west-2a",
            instance_type=itype,
            spot=False,
            launched_at=0.0,
        )
        od.transition(InstanceState.INITIALIZING, 0.0)
        assert od.billed_cost(3600.0) == pytest.approx(itype.on_demand_hourly)

    def test_unique_ids(self, instance):
        other = Instance(
            zone_id=instance.zone_id,
            instance_type=instance.instance_type,
            spot=True,
            launched_at=0.0,
        )
        assert other.id != instance.id
