"""Tests for injected instance faults (crashes) and recovery.

The service controller must manage "preemptions of spot replicas or any
arising errors" (§4).  Crashes differ from reclaims in two ways: they
hit on-demand instances too, and they carry no information about the
zone's spot market (the placer is not penalised).
"""

import numpy as np
import pytest

from repro.cloud import CloudConfig, SimCloud, SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceController,
    ServiceSpec,
)
from repro.sim import SimulationEngine

ZONES = ["aws:us-west-2:us-west-2a", "aws:us-west-2:us-west-2b"]
HOUR = 3600.0


def build_cloud(mtbf, hours=4):
    engine = SimulationEngine()
    steps = int(hours * 60)
    trace = SpotTrace("crash", ZONES, 60.0, np.full((2, steps), 4))
    cloud = SimCloud(
        engine,
        trace,
        config=CloudConfig(
            provision_delay_mean=30.0,
            setup_delay_mean=30.0,
            delay_jitter=0.0,
            instance_mtbf=mtbf,
        ),
    )
    return engine, cloud


class TestProviderCrashes:
    def test_instances_crash_at_roughly_mtbf(self):
        engine, cloud = build_cloud(mtbf=HOUR, hours=12)
        # Keep one instance alive: relaunch on every crash.
        def relaunch(_instance=None):
            from repro.cloud import InstanceCallbacks

            cloud.request_instance(
                ZONES[0], "p3.2xlarge", spot=True,
                callbacks=InstanceCallbacks(on_preempted=relaunch),
            )

        relaunch()
        engine.run_until(12 * HOUR)
        # Expected roughly one crash per hour of uptime.
        assert 3 <= cloud.crashes.value <= 30

    def test_crashes_not_counted_as_preemptions(self):
        engine, cloud = build_cloud(mtbf=0.5 * HOUR, hours=6)
        cloud.request_instance(ZONES[0], "p3.2xlarge", spot=True)
        engine.run_until(6 * HOUR)
        assert cloud.crashes.value >= 1
        assert cloud.preemptions.value == 0

    def test_on_demand_instances_crash_too(self):
        engine, cloud = build_cloud(mtbf=0.5 * HOUR, hours=8)
        instance = cloud.request_instance(ZONES[0], "p3.2xlarge", spot=False)
        engine.run_until(8 * HOUR)
        assert instance.crashed
        assert instance.state.value == "preempted"

    def test_zero_mtbf_rejected(self):
        with pytest.raises(ValueError):
            CloudConfig(instance_mtbf=0.0)

    def test_no_mtbf_no_crashes(self):
        engine, cloud = build_cloud(mtbf=None, hours=6)
        cloud.request_instance(ZONES[0], "p3.2xlarge", spot=True)
        engine.run_until(6 * HOUR)
        assert cloud.crashes.value == 0


class TestServiceRecovery:
    def build_service(self, mtbf, hours=6):
        engine, cloud = build_cloud(mtbf, hours=hours)
        spec = ServiceSpec(
            replica_policy=ReplicaPolicyConfig(fixed_target=2, num_overprovision=1),
            resources=ResourceSpec(
                accelerator="V100",
                any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
            ),
        )
        policy = spothedge(ZONES, num_overprovision=1)
        profile = ModelProfile("m", 1.0, 0.0, 0.0, 8)
        controller = ServiceController(engine, cloud, spec, policy, profile)
        return engine, cloud, controller, policy

    def test_controller_replaces_crashed_replicas(self):
        engine, cloud, controller, _ = self.build_service(mtbf=HOUR)
        controller.start()
        engine.run_until(6 * HOUR)
        assert cloud.crashes.value >= 2
        # Despite the crashes the fleet self-heals back to target.
        assert controller.availability(HOUR, 6 * HOUR, n_tar=2) > 0.9

    def test_crashes_do_not_poison_the_placer(self):
        engine, cloud, controller, policy = self.build_service(mtbf=0.5 * HOUR)
        controller.start()
        engine.run_until(4 * HOUR)
        assert cloud.crashes.value >= 2
        # Capacity never dropped, so no zone should be in Z_P for
        # market reasons; crashes must not have moved zones there.
        assert policy.placer.preempting_zones == []
