"""Unit tests for the billing meter."""

import pytest

from repro.cloud import BillingMeter, CostBreakdown, InstanceState, default_catalog
from repro.cloud.instance import Instance


def make_instance(spot: bool) -> Instance:
    return Instance(
        zone_id="aws:us-west-2:us-west-2a",
        instance_type=default_catalog().get("p3.2xlarge"),
        spot=spot,
        launched_at=0.0,
    )


class TestBillingMeter:
    def test_empty_meter(self):
        assert BillingMeter().total(100.0) == 0.0

    def test_breakdown_splits_markets(self):
        meter = BillingMeter()
        spot = make_instance(spot=True)
        od = make_instance(spot=False)
        meter.track(spot)
        meter.track(od)
        spot.transition(InstanceState.INITIALIZING, 0.0)
        od.transition(InstanceState.INITIALIZING, 0.0)
        breakdown = meter.breakdown(3600.0)
        itype = default_catalog().get("p3.2xlarge")
        assert breakdown.spot == pytest.approx(itype.spot_hourly)
        assert breakdown.on_demand == pytest.approx(itype.on_demand_hourly)
        assert breakdown.total == pytest.approx(itype.spot_hourly + itype.on_demand_hourly)

    def test_failed_launches_cost_nothing(self):
        meter = BillingMeter()
        instance = make_instance(spot=True)
        meter.track(instance)
        instance.transition(InstanceState.FAILED, 30.0)
        assert meter.total(3600.0) == 0.0

    def test_relative_to(self):
        breakdown = CostBreakdown(spot=1.0, on_demand=1.0)
        assert breakdown.relative_to(4.0) == pytest.approx(0.5)

    def test_relative_to_invalid_baseline(self):
        with pytest.raises(ValueError):
            CostBreakdown(spot=1.0, on_demand=0.0).relative_to(0.0)

    def test_instances_listing_is_copy(self):
        meter = BillingMeter()
        meter.track(make_instance(spot=True))
        listing = meter.instances
        listing.clear()
        assert len(meter.instances) == 1
