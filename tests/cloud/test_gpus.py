"""Tests for GPU serving profiles and (zone × instance-type) pools."""

import numpy as np
import pytest

from repro.cloud import (
    GPU_PROFILES,
    GpuServingProfile,
    PriceBook,
    capacity_weight,
    gpu_profile,
    hetero_catalog,
    make_hetero_trace,
    pool_capacity_weights,
    pool_id,
    pool_price_multipliers,
    pool_spot_costs,
    split_pool,
)
from repro.cloud.gpus import is_pool, pool_zone
from repro.cloud.traces import aws1


class TestProfiles:
    def test_known_generations_present(self):
        for acc in ("T4", "V100", "A10G", "L4", "A100", "H100"):
            assert gpu_profile(acc).accelerator == acc

    def test_unknown_accelerator_raises(self):
        with pytest.raises(KeyError, match="K80"):
            gpu_profile("K80")

    def test_profiles_validated(self):
        with pytest.raises(ValueError):
            GpuServingProfile("X", tokens_per_second=0.0, decode_batch_slope=0.1, preemption_scale=1.0)
        with pytest.raises(ValueError):
            GpuServingProfile("X", tokens_per_second=1.0, decode_batch_slope=-0.1, preemption_scale=1.0)
        with pytest.raises(ValueError):
            GpuServingProfile("X", tokens_per_second=1.0, decode_batch_slope=0.1, preemption_scale=0.0)

    def test_reference_weight_is_exactly_one(self):
        # No float division on the reference path: the homogeneous
        # fleet must stay on the integer replay fast path.
        assert capacity_weight("A10G") == 1.0
        assert capacity_weight("H100", reference="H100") == 1.0

    def test_weight_is_throughput_ratio(self):
        expected = GPU_PROFILES["H100"].tokens_per_second / GPU_PROFILES["A10G"].tokens_per_second
        assert capacity_weight("H100") == pytest.approx(expected)
        assert capacity_weight("L4") < 1.0 < capacity_weight("A100")


class TestPoolIds:
    def test_round_trip(self):
        pid = pool_id("aws:us-west-2:us-west-2a", "g5.48xlarge")
        assert pid == "aws:us-west-2:us-west-2a@g5.48xlarge"
        assert split_pool(pid) == ("aws:us-west-2:us-west-2a", "g5.48xlarge")
        assert pool_zone(pid) == "aws:us-west-2:us-west-2a"
        assert is_pool(pid) and not is_pool("aws:us-west-2:us-west-2a")

    def test_plain_zone_splits_to_none(self):
        assert split_pool("aws:us-west-2:us-west-2a") == ("aws:us-west-2:us-west-2a", None)

    def test_double_tagging_rejected(self):
        pid = pool_id("z1", "g5.48xlarge")
        with pytest.raises(ValueError):
            pool_id(pid, "g6.48xlarge")

    def test_empty_instance_type_rejected(self):
        with pytest.raises(ValueError):
            pool_id("z1", "")


class TestCostSignals:
    ZONE = "aws:us-west-2:us-west-2a"

    def _pools(self):
        return [
            pool_id(self.ZONE, "g5.48xlarge"),
            pool_id(self.ZONE, "p4d.24xlarge"),
        ]

    def test_pool_spot_costs_divide_by_weight(self):
        catalog = hetero_catalog()
        book = PriceBook(catalog, region_multipliers={})
        costs = pool_spot_costs(self._pools(), book)
        g5 = catalog.get("g5.48xlarge")
        p4d = catalog.get("p4d.24xlarge")
        assert costs[self._pools()[0]] == pytest.approx(g5.spot_hourly)
        assert costs[self._pools()[1]] == pytest.approx(
            p4d.spot_hourly / capacity_weight("A100")
        )

    def test_pool_capacity_weights(self):
        weights = pool_capacity_weights(self._pools(), hetero_catalog())
        assert weights[self._pools()[0]] == 1.0
        assert weights[self._pools()[1]] == capacity_weight("A100")

    def test_plain_zone_weighs_one(self):
        assert pool_capacity_weights(["z1"], hetero_catalog()) == {"z1": 1.0}

    def test_pool_price_multipliers(self):
        catalog = hetero_catalog()
        book = PriceBook(catalog, region_multipliers={})
        ref = catalog.get("g5.48xlarge").spot_hourly
        mult = pool_price_multipliers(self._pools(), book, reference_price=ref)
        assert mult[self._pools()[0]] == pytest.approx(1.0)
        assert mult[self._pools()[1]] == pytest.approx(
            catalog.get("p4d.24xlarge").spot_hourly / ref
        )

    def test_plain_zone_rejected_for_costs(self):
        book = PriceBook(hetero_catalog(), region_multipliers={})
        with pytest.raises(ValueError):
            pool_spot_costs(["z1"], book)
        with pytest.raises(ValueError):
            pool_price_multipliers(["z1"], book, reference_price=1.0)


class TestHeteroTrace:
    def test_pools_expand_per_matching_cloud_type(self):
        base = aws1().window(0, 3600)
        trace = make_hetero_trace(
            base, ["g5.48xlarge", "p4d.24xlarge"], hetero_catalog(), seed=0
        )
        assert len(trace.zone_ids) == 2 * len(base.zone_ids)
        for pid in trace.zone_ids:
            assert is_pool(pid)
            assert pool_zone(pid) in base.zone_ids

    def test_gcp_type_skipped_on_aws_trace(self):
        base = aws1().window(0, 3600)
        trace = make_hetero_trace(
            base, ["g5.48xlarge", "g2-standard-48"], hetero_catalog(), seed=0
        )
        # g2-standard-48 is GCP-only; only the g5 pools survive.
        assert all(split_pool(p)[1] == "g5.48xlarge" for p in trace.zone_ids)

    def test_no_matching_cloud_raises(self):
        base = aws1().window(0, 3600)
        with pytest.raises(ValueError):
            make_hetero_trace(base, ["g2-standard-48"], hetero_catalog(), seed=0)

    def test_pool_capacity_gated_by_base_zone(self):
        base = aws1().window(0, 6 * 3600)
        trace = make_hetero_trace(base, ["g5.48xlarge"], hetero_catalog(), seed=0)
        for pid in trace.zone_ids:
            pool_row = trace.zone_row(pid)
            zone_row = base.zone_row(pool_zone(pid))
            # Pool capacity never exceeds the zone's and is zero
            # wherever the zone is down.
            assert np.all(pool_row <= zone_row)

    def test_deterministic_per_seed(self):
        base = aws1().window(0, 6 * 3600)
        a = make_hetero_trace(base, ["g5.48xlarge", "p5.48xlarge"], hetero_catalog(), seed=7)
        b = make_hetero_trace(base, ["g5.48xlarge", "p5.48xlarge"], hetero_catalog(), seed=7)
        assert a.digest() == b.digest()
        c = make_hetero_trace(base, ["g5.48xlarge", "p5.48xlarge"], hetero_catalog(), seed=8)
        assert c.digest() != a.digest()

    def test_pool_streams_independent_of_other_types(self):
        # Adding a type must not perturb the existing pools' series:
        # each pool draws from its own keyed RNG stream.
        base = aws1().window(0, 6 * 3600)
        alone = make_hetero_trace(base, ["g5.48xlarge"], hetero_catalog(), seed=0)
        both = make_hetero_trace(
            base, ["g5.48xlarge", "p4d.24xlarge"], hetero_catalog(), seed=0
        )
        for pid in alone.zone_ids:
            assert np.array_equal(alone.zone_row(pid), both.zone_row(pid))

    def test_scarcer_generation_flickers_more(self):
        base = aws1().window(0, 14 * 24 * 3600)
        trace = make_hetero_trace(
            base, ["g5.48xlarge", "p5.48xlarge"], hetero_catalog(), seed=0
        )
        # H100 pools (preemption_scale 2.2) spend less time up than the
        # A10G pools over the same base zones, summed over the fleet.
        up = {"g5.48xlarge": 0, "p5.48xlarge": 0}
        for pid in trace.zone_ids:
            up[split_pool(pid)[1]] += int((trace.zone_row(pid) > 0).sum())
        assert up["p5.48xlarge"] < up["g5.48xlarge"]

    def test_empty_types_rejected(self):
        with pytest.raises(ValueError):
            make_hetero_trace(aws1(), [], hetero_catalog())
