"""Tests for external trace interop (event logs, preemption logs, CSV)."""

import numpy as np
import pytest

from repro.cloud import SpotTrace, aws1
from repro.cloud.trace_io import (
    PreemptionRecord,
    from_capacity_events,
    from_preemption_log,
    load_capacity_csv,
    save_capacity_csv,
)

Z1, Z2 = "aws:r1:r1a", "aws:r1:r1b"


class TestCapacityEvents:
    def test_piecewise_constant_reconstruction(self):
        trace = from_capacity_events(
            {Z1: [(0.0, 4), (120.0, 0), (300.0, 2)], Z2: [(0.0, 1)]},
            duration=360.0,
            step=60.0,
        )
        np.testing.assert_array_equal(trace.zone_row(Z1), [4, 4, 0, 0, 0, 2])
        np.testing.assert_array_equal(trace.zone_row(Z2), [1] * 6)

    def test_unsorted_events_handled(self):
        trace = from_capacity_events(
            {Z1: [(120.0, 0), (0.0, 4)]}, duration=180.0, step=60.0
        )
        np.testing.assert_array_equal(trace.zone_row(Z1), [4, 4, 0])

    def test_initial_capacity_before_first_event(self):
        trace = from_capacity_events(
            {Z1: [(120.0, 5)]}, duration=180.0, step=60.0, initial_capacity=2
        )
        np.testing.assert_array_equal(trace.zone_row(Z1), [2, 2, 5])

    def test_events_past_duration_ignored(self):
        trace = from_capacity_events(
            {Z1: [(0.0, 1), (500.0, 9)]}, duration=180.0, step=60.0
        )
        assert trace.zone_row(Z1).max() == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            from_capacity_events({Z1: [(0.0, -1)]}, duration=60.0)

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            from_capacity_events({}, duration=60.0)


class TestPreemptionLog:
    def test_maintain_n_reconstruction(self):
        records = [
            PreemptionRecord(100.0, Z1, "preempt", 2),
            PreemptionRecord(400.0, Z1, "recover", 1),
            PreemptionRecord(700.0, Z1, "recover", 1),
        ]
        trace = from_preemption_log(records, desired=4, duration=900.0, step=60.0)
        row = trace.zone_row(Z1)
        assert row[0] == 4  # before anything happens
        assert row[2] == 2  # after the double preemption at t=100
        assert row[7] == 3  # one recovered at t=400
        assert row[-1] == 4  # fully recovered

    def test_capacity_floored_at_zero(self):
        records = [PreemptionRecord(10.0, Z1, "preempt", 9)]
        trace = from_preemption_log(records, desired=4, duration=120.0, step=60.0)
        assert trace.zone_row(Z1).min() == 0

    def test_over_recovery_clamped(self):
        records = [
            PreemptionRecord(10.0, Z1, "preempt", 1),
            PreemptionRecord(70.0, Z1, "recover", 5),
        ]
        trace = from_preemption_log(records, desired=4, duration=180.0, step=60.0)
        assert trace.zone_row(Z1)[-1] == 4

    def test_record_validation(self):
        with pytest.raises(ValueError):
            PreemptionRecord(0.0, Z1, "explode")
        with pytest.raises(ValueError):
            PreemptionRecord(0.0, Z1, "preempt", 0)
        with pytest.raises(ValueError):
            PreemptionRecord(-1.0, Z1, "preempt")

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            from_preemption_log([], desired=4, duration=100.0)


class TestCsvRoundTrip:
    def test_round_trip_preserves_grid(self, tmp_path):
        original = aws1()
        path = tmp_path / "trace.csv"
        save_capacity_csv(original, path)
        restored = load_capacity_csv(
            path, duration=original.duration, step=original.step
        )
        assert set(restored.zone_ids) == set(original.zone_ids)
        for zone in original.zone_ids:
            np.testing.assert_array_equal(
                restored.zone_row(zone), original.zone_row(zone)
            )

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_capacity_csv(path, duration=100.0)

    def test_name_defaults_to_stem(self, tmp_path):
        trace = SpotTrace("x", [Z1], 60.0, np.array([[1, 2]]))
        path = tmp_path / "mytrace.csv"
        save_capacity_csv(trace, path)
        restored = load_capacity_csv(path, duration=120.0, step=60.0)
        assert restored.name == "mytrace"
