"""Unit tests for the cloud/region/zone topology."""

import pytest

from repro.cloud import CloudDesc, Region, Topology, Zone, default_topology


@pytest.fixture()
def topo():
    return default_topology()


class TestZoneIdentity:
    def test_zone_id_format(self):
        zone = Zone("aws", "us-east-1", "us-east-1a")
        assert zone.id == "aws:us-east-1:us-east-1a"
        assert zone.region_id == "aws:us-east-1"

    def test_str_is_id(self):
        zone = Zone("gcp", "us-central1", "us-central1-a")
        assert str(zone) == zone.id


class TestDefaultTopology:
    def test_aws3_zone_count(self, topo):
        """AWS 3 spans 9 zones in 3 US regions."""
        zones = (
            topo.zones_in_region("aws:us-east-1")
            + topo.zones_in_region("aws:us-east-2")
            + topo.zones_in_region("aws:us-west-2")
        )
        assert len(zones) == 9

    def test_gcp1_spans_6_zones_5_regions(self, topo):
        """GCP 1 (Fig. 5a) spans 6 zones in 5 regions."""
        gcp_zones = topo.zones_in_cloud("gcp")
        assert len(gcp_zones) == 6
        assert len({z.region_id for z in gcp_zones}) == 5

    def test_skyserve_regions_exist(self, topo):
        for region in ("aws:us-east-2", "aws:us-west-2", "aws:eu-central-1"):
            assert topo.region(region).zones

    def test_three_clouds(self, topo):
        assert {c.name for c in topo.clouds} == {"aws", "gcp", "azure"}

    def test_zone_lookup(self, topo):
        zone = topo.zone("aws:us-west-2:us-west-2a")
        assert zone.cloud == "aws"
        assert zone.region == "us-west-2"

    def test_unknown_zone_raises(self, topo):
        with pytest.raises(KeyError):
            topo.zone("aws:nowhere:nowhere-z")

    def test_unknown_region_raises(self, topo):
        with pytest.raises(KeyError):
            topo.region("aws:nowhere")

    def test_unknown_cloud_raises(self, topo):
        with pytest.raises(KeyError):
            topo.zones_in_cloud("oracle")


class TestFilterZones:
    def test_no_filters_returns_all(self, topo):
        assert len(topo.filter_zones()) == len(topo.zones)

    def test_filter_by_cloud(self, topo):
        zones = topo.filter_zones(clouds=["gcp"])
        assert zones
        assert all(z.cloud == "gcp" for z in zones)

    def test_filter_by_region(self, topo):
        zones = topo.filter_zones(regions=["aws:us-west-2"])
        assert len(zones) == 3

    def test_filter_union_semantics(self, topo):
        """Listing 1's any_of: one AWS region OR all of GCP."""
        zones = topo.filter_zones(clouds=["gcp"], regions=["aws:us-east-1"])
        ids = {z.id for z in zones}
        assert any(z.startswith("gcp:") for z in ids)
        assert any(z.startswith("aws:us-east-1") for z in ids)
        assert not any(z.startswith("aws:us-west-2") for z in ids)

    def test_filter_by_zone_id(self, topo):
        zones = topo.filter_zones(zone_ids=["aws:us-west-2:us-west-2a"])
        assert [z.id for z in zones] == ["aws:us-west-2:us-west-2a"]


class TestValidation:
    def test_duplicate_zone_rejected(self):
        zone = Zone("aws", "r", "ra")
        region = Region("aws", "r", (zone, zone))
        with pytest.raises(ValueError):
            Topology([CloudDesc("aws", (region,))])

    def test_duplicate_cloud_rejected(self):
        cloud = CloudDesc("aws", ())
        with pytest.raises(ValueError):
            Topology([cloud, cloud])
