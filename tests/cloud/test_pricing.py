"""Tests for the regional price book (Alg. 1's MIN-COST signal)."""

import pytest

from repro.cloud import PriceBook, default_catalog, default_price_book
from repro.cloud.catalog import Catalog, InstanceType


@pytest.fixture()
def book():
    return default_price_book()


def _divergent_catalog() -> Catalog:
    """Two V100 carriers whose spot and on-demand orderings differ:
    the cheap-on-demand type is barely discounted on spot, the pricey
    one is discounted steeply."""
    return Catalog(
        [
            InstanceType(
                name="od-cheap",
                cloud="aws",
                accelerator="V100",
                accelerator_count=1,
                vcpus=8,
                on_demand_hourly=2.0,
                spot_ratio=0.9,  # spot $1.80
            ),
            InstanceType(
                name="spot-cheap",
                cloud="aws",
                accelerator="V100",
                accelerator_count=1,
                vcpus=8,
                on_demand_hourly=3.0,
                spot_ratio=0.2,  # spot $0.60
            ),
        ]
    )


class TestPriceBook:
    def test_reference_region_at_base_price(self, book):
        base = default_catalog().get("p3.2xlarge").spot_hourly
        assert book.spot_hourly("aws:us-east-1:us-east-1a", "p3.2xlarge") == pytest.approx(base)

    def test_europe_costs_more_than_us(self, book):
        us = book.spot_hourly("aws:us-east-1:us-east-1a", "p3.2xlarge")
        eu = book.spot_hourly("aws:eu-central-1:eu-central-1a", "p3.2xlarge")
        assert eu > us

    def test_unknown_region_defaults_to_one(self, book):
        base = default_catalog().get("p3.2xlarge").spot_hourly
        assert book.spot_hourly("aws:ap-south-1:ap-south-1a", "p3.2xlarge") == pytest.approx(base)

    def test_on_demand_scaled_by_same_multiplier(self, book):
        zone = "aws:eu-central-1:eu-central-1a"
        ratio_spot = book.spot_hourly(zone, "p3.2xlarge") / default_catalog().get("p3.2xlarge").spot_hourly
        ratio_od = book.on_demand_hourly(zone, "p3.2xlarge") / default_catalog().get("p3.2xlarge").on_demand_hourly
        assert ratio_spot == pytest.approx(ratio_od)

    def test_cheapest_spot_for_accelerator(self, book):
        result = book.cheapest_spot_for_accelerator(
            "aws:us-east-1:us-east-1a", "V100"
        )
        assert result is not None
        name, price = result
        assert name == "p3.2xlarge"  # cheapest V100 carrier on AWS
        assert price > 0

    def test_cloud_without_accelerator_returns_none(self, book):
        assert book.cheapest_spot_for_accelerator(
            "azure:eastus:eastus-1", "A10G"
        ) is None

    def test_zone_costs_skips_unsupported_zones(self, book):
        costs = book.zone_costs(
            ["aws:us-east-1:us-east-1a", "azure:eastus:eastus-1"], "A10G"
        )
        assert "aws:us-east-1:us-east-1a" in costs
        assert "azure:eastus:eastus-1" not in costs

    def test_zone_costs_reflect_region_spread(self, book):
        costs = book.zone_costs(
            [
                "aws:us-east-1:us-east-1a",
                "aws:eu-central-1:eu-central-1a",
            ],
            "V100",
        )
        assert costs["aws:eu-central-1:eu-central-1a"] > costs["aws:us-east-1:us-east-1a"]

    def test_od_zone_costs(self, book):
        spot = book.zone_costs(["aws:us-east-1:us-east-1a"], "V100", spot=True)
        od = book.zone_costs(["aws:us-east-1:us-east-1a"], "V100", spot=False)
        assert od["aws:us-east-1:us-east-1a"] > spot["aws:us-east-1:us-east-1a"]

    def test_invalid_multiplier_rejected(self):
        with pytest.raises(ValueError):
            PriceBook(region_multipliers={"aws:us-east-1": 0.0})

    def test_custom_multipliers_override_defaults(self):
        book = PriceBook(region_multipliers={"aws:us-east-1": 2.0})
        base = default_catalog().get("p3.2xlarge").spot_hourly
        assert book.spot_hourly("aws:us-east-1:us-east-1a", "p3.2xlarge") == pytest.approx(2 * base)
        # Regions absent from the custom table fall back to 1.0.
        assert book.spot_hourly("aws:eu-central-1:x", "p3.2xlarge") == pytest.approx(base)


class TestOnDemandMinCost:
    """Regression: ``zone_costs(spot=False)`` must rank by *on-demand*
    price, not return the on-demand price of the cheapest-spot type."""

    ZONE = "aws:us-east-1:us-east-1a"

    def test_spot_and_od_pick_different_types(self):
        book = PriceBook(_divergent_catalog(), region_multipliers={})
        spot = book.cheapest_spot_for_accelerator(self.ZONE, "V100")
        od = book.cheapest_on_demand_for_accelerator(self.ZONE, "V100")
        assert spot == ("spot-cheap", pytest.approx(0.6))
        assert od == ("od-cheap", pytest.approx(2.0))

    def test_zone_costs_spot_false_uses_od_ordering(self):
        book = PriceBook(_divergent_catalog(), region_multipliers={})
        od_costs = book.zone_costs([self.ZONE], "V100", spot=False)
        # The old behaviour returned 3.0 — the on-demand price of the
        # cheapest-*spot* carrier.
        assert od_costs[self.ZONE] == pytest.approx(2.0)
        spot_costs = book.zone_costs([self.ZONE], "V100", spot=True)
        assert spot_costs[self.ZONE] == pytest.approx(0.6)

    def test_cheapest_od_none_when_cloud_lacks_accelerator(self):
        book = PriceBook(_divergent_catalog(), region_multipliers={})
        assert book.cheapest_on_demand_for_accelerator(
            "gcp:us-central1:us-central1-a", "V100"
        ) is None


class TestRegionMultiplierEdgeCases:
    def test_three_part_zone_id_uses_region(self, book):
        mult = book.region_multiplier("aws:eu-central-1:eu-central-1a")
        assert mult == book.region_multiplier("aws:eu-central-1:eu-central-1b")
        assert mult > book.region_multiplier("aws:us-east-1:us-east-1a")

    def test_bare_synthetic_id_defaults_to_one(self, book):
        # "z1" has no region part; the whole id is treated as a region
        # and unlisted regions multiply by exactly 1.0.
        assert book.region_multiplier("z1") == 1.0

    def test_unlisted_region_defaults_to_one(self, book):
        assert book.region_multiplier("aws:ap-south-1:ap-south-1a") == 1.0

    def test_zone_costs_omits_zone_when_cloud_lacks_accelerator(self, book):
        costs = book.zone_costs(["z1", "azure:eastus:eastus-1"], "A10G")
        assert costs == {}


class TestCostAwarePlacement:
    """MIN-COST actually uses the price spread."""

    def test_dynamic_placer_prefers_cheap_region(self, book):
        from repro.core import DynamicSpotPlacer

        zones = [
            "aws:eu-central-1:eu-central-1a",
            "aws:us-east-1:us-east-1a",
            "aws:us-west-2:us-west-2a",
        ]
        costs = book.zone_costs(zones, "V100")
        placer = DynamicSpotPlacer(zones, costs)
        # us-east-1 is the cheapest of the three.
        assert placer.select_zone({}) == "aws:us-east-1:us-east-1a"

    def test_cost_order_breaks_before_occupancy(self, book):
        from repro.core import DynamicSpotPlacer

        zones = ["aws:eu-central-1:eu-central-1a", "aws:us-east-1:us-east-1a"]
        costs = book.zone_costs(zones, "V100")
        placer = DynamicSpotPlacer(zones, costs)
        # Even with a replica already in the cheap zone, an unused
        # expensive zone is chosen only among unused zones; once all
        # zones are used, the cheap one wins again.
        placements = {"aws:us-east-1:us-east-1a": 1, "aws:eu-central-1:eu-central-1a": 1}
        assert placer.select_zone(placements) == "aws:us-east-1:us-east-1a"
