"""Unit tests for the perf-regression tracker (repro.devtools.perfreg)."""

import json

import pytest

from repro.devtools.perfreg import (
    REGRESSION_TOLERANCE,
    PerfCheck,
    append_trajectory,
    build_record,
    calibration_probe,
    check_entries,
    main,
    write_baseline,
)


def _bench(replay=50_000.0, smoke=True):
    return {
        "replay": {
            "steps_per_second": replay,
            "seconds": 0.1,
            "smoke": smoke,
        },
        "batched_inference": {
            "requests_per_second": 100_000.0,
            "smoke": smoke,
        },
        "replay_phases": {
            "replay.policy": 0.012,
            "replay.reconcile": 0.004,
            "smoke": smoke,
        },
    }


def _baseline(replay=50_000.0, calibration=0.010, smoke=True):
    return {
        "calibration_seconds": calibration,
        "entries": {
            "replay": {"steps_per_second": replay, "smoke": smoke},
            "batched_inference": {
                "requests_per_second": 100_000.0, "smoke": smoke,
            },
        },
        "tolerance": REGRESSION_TOLERANCE,
    }


class TestCheckEntries:
    def test_identical_numbers_pass(self):
        checks = check_entries(_bench(), _baseline(), calibration_s=0.010)
        assert len(checks) == 2
        assert all(c.ok for c in checks)
        assert all(c.ratio == pytest.approx(1.0) for c in checks)

    def test_regression_beyond_tolerance_fails(self):
        # 30% drop on the replay entry with same-speed machine.
        checks = check_entries(
            _bench(replay=35_000.0), _baseline(), calibration_s=0.010
        )
        by_entry = {c.entry: c for c in checks}
        assert not by_entry["replay"].ok
        assert by_entry["replay"].ratio == pytest.approx(0.7)
        assert by_entry["batched_inference"].ok

    def test_drop_within_tolerance_passes(self):
        checks = check_entries(
            _bench(replay=41_000.0), _baseline(), calibration_s=0.010
        )
        assert all(c.ok for c in checks)

    def test_slow_machine_is_forgiven(self):
        # Half-speed runner (probe takes 2x as long) measuring half the
        # throughput: normalized back to baseline, passes.
        checks = check_entries(
            _bench(replay=25_000.0), _baseline(), calibration_s=0.020
        )
        by_entry = {c.entry: c for c in checks}
        assert by_entry["replay"].normalized == pytest.approx(50_000.0)
        assert by_entry["replay"].ok

    def test_fast_machine_never_scaled_down(self):
        # A 2x-faster probe must NOT scale identical throughput to 0.5x
        # (probe jitter would manufacture regressions out of thin air).
        checks = check_entries(_bench(), _baseline(), calibration_s=0.005)
        assert all(c.normalized == c.measured for c in checks)
        assert all(c.ok for c in checks)

    def test_missing_entries_skipped(self):
        bench = _bench()
        del bench["batched_inference"]
        checks = check_entries(bench, _baseline(), calibration_s=0.010)
        assert [c.entry for c in checks] == ["replay"]

    def test_mode_mismatch_skipped(self):
        # Smoke numbers are not comparable to full-run numbers.
        checks = check_entries(
            _bench(smoke=False), _baseline(smoke=True), calibration_s=0.010
        )
        assert checks == []

    def test_custom_tolerance(self):
        checks = check_entries(
            _bench(replay=44_000.0),
            _baseline(),
            calibration_s=0.010,
            tolerance=0.10,
        )
        by_entry = {c.entry: c for c in checks}
        assert not by_entry["replay"].ok  # 0.88 < 0.90


class TestRecordAndTrajectory:
    def test_build_record_shape(self):
        checks = check_entries(_bench(), _baseline(), calibration_s=0.010)
        record = build_record(_bench(), checks, calibration_s=0.010)
        assert record["ok"] is True
        assert record["smoke"] is True
        assert record["entries"]["replay"]["steps_per_second"] == 50_000.0
        assert record["checks"][0]["ratio"] == 1.0
        # Phase totals carried into the trajectory; the "smoke" tag
        # (a bool, not a timing) filtered out.
        assert record["replay_phases"] == {
            "replay.policy": 0.012, "replay.reconcile": 0.004,
        }

    def test_record_is_json_native(self):
        checks = check_entries(_bench(), _baseline(), calibration_s=0.010)
        record = build_record(_bench(), checks, calibration_s=0.010)
        json.dumps(record)  # must not raise

    def test_append_trajectory_is_jsonl(self, tmp_path):
        path = tmp_path / "TRAJECTORY.jsonl"
        checks = check_entries(_bench(), _baseline(), calibration_s=0.010)
        record = build_record(_bench(), checks, calibration_s=0.010)
        append_trajectory(record, path)
        append_trajectory(record, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["ok"] is True


class TestBaseline:
    def test_write_baseline_round_trips(self, tmp_path):
        path = tmp_path / "PERF_BASELINE.json"
        baseline = write_baseline(_bench(), calibration_s=0.0123, path=path)
        on_disk = json.loads(path.read_text())
        assert on_disk == baseline
        assert on_disk["calibration_seconds"] == 0.0123
        assert on_disk["entries"]["replay"]["smoke"] is True
        assert check_entries(_bench(), on_disk, 0.0123)

    def test_write_baseline_requires_tracked_entries(self, tmp_path):
        with pytest.raises(SystemExit):
            write_baseline({}, 0.01, path=tmp_path / "b.json")


class TestCalibrationProbe:
    def test_probe_is_positive_and_validates(self):
        assert calibration_probe(repeats=1) > 0.0
        with pytest.raises(ValueError):
            calibration_probe(repeats=0)


class TestMain:
    def _write(self, tmp_path):
        bench_path = tmp_path / "BENCH_replay.json"
        baseline_path = tmp_path / "PERF_BASELINE.json"
        trajectory_path = tmp_path / "TRAJECTORY.jsonl"
        bench_path.write_text(json.dumps(_bench()))
        # Calibration 10s: vastly slower than any real probe, so the
        # asymmetric scale stays 1.0x-or-better and the gate passes on
        # identical numbers regardless of the machine running the test.
        baseline_path.write_text(json.dumps(_baseline(calibration=10.0)))
        return bench_path, baseline_path, trajectory_path

    def test_check_passes_and_appends(self, tmp_path, capsys):
        bench, baseline, trajectory = self._write(tmp_path)
        code = main([
            "check", "--bench", str(bench), "--baseline", str(baseline),
            "--trajectory", str(trajectory),
        ])
        assert code == 0
        assert "perf gate: pass" in capsys.readouterr().out
        (line,) = trajectory.read_text().splitlines()
        assert json.loads(line)["ok"] is True

    def test_check_fails_on_regression(self, tmp_path, capsys):
        bench, baseline, trajectory = self._write(tmp_path)
        bench.write_text(json.dumps(_bench(replay=30_000.0)))
        code = main([
            "check", "--bench", str(bench), "--baseline", str(baseline),
            "--trajectory", str(trajectory),
        ])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out
        # Failed runs still land in the trajectory.
        (line,) = trajectory.read_text().splitlines()
        assert json.loads(line)["ok"] is False

    def test_baseline_command_writes(self, tmp_path, capsys):
        bench, baseline, _ = self._write(tmp_path)
        baseline.unlink()
        code = main(["baseline", "--bench", str(bench),
                     "--baseline", str(baseline)])
        assert code == 0
        assert json.loads(baseline.read_text())["entries"]["replay"]

    def test_missing_artifact_is_actionable(self, tmp_path):
        with pytest.raises(SystemExit, match="no benchmark artifact"):
            main(["check", "--bench", str(tmp_path / "missing.json")])
