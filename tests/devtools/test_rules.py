"""Every lint rule against its fixture module.

Each fixture under ``fixtures/`` carries known-bad examples (must be
flagged), known-good examples (must stay clean), and one suppressed
example (must be recorded as suppressed, not silently dropped).  The
fixtures are linted *as data* under a virtual package-relative path so
the scoped rules (seeded dirs, telemetry exemptions) see them where
the invariant actually applies.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint.engine import (
    BARE_SUPPRESSION_ID,
    PARSE_ERROR_ID,
    UNUSED_SUPPRESSION_ID,
    lint_file,
)
from repro.devtools.lint.rules import ALL_RULES, rules_by_id

FIXTURES = Path(__file__).parent / "fixtures"
META_IDS = {PARSE_ERROR_ID, BARE_SUPPRESSION_ID, UNUSED_SUPPRESSION_ID}

#: (fixture file, virtual package-relative path, rule id,
#:  expected unsuppressed finding count).  Each fixture also carries
#: exactly one suppressed finding of the same rule.
CASES = [
    ("rng_discipline.py", "core/fixture.py", "REPRO-R001", 4),
    ("no_wall_clock.py", "sim/fixture.py", "REPRO-T001", 3),
    ("ordered_iteration.py", "sim/fixture.py", "REPRO-O001", 3),
    ("float_equality.py", "core/fixture.py", "REPRO-F001", 2),
    ("mutable_default.py", "serving/fixture.py", "REPRO-M001", 3),
    ("raw_event.py", "serving/fixture.py", "REPRO-E001", 2),
    ("swallowed_exception.py", "sim/fixture.py", "REPRO-X001", 2),
    ("telemetry_json.py", "serving/fixture.py", "REPRO-J001", 3),
]


@pytest.mark.parametrize(("fixture", "virtual", "rule_id", "expected"), CASES)
def test_fixture_findings(
    fixture: str, virtual: str, rule_id: str, expected: int
) -> None:
    report = lint_file(FIXTURES / fixture, ALL_RULES, virtual=virtual)
    unsuppressed = report.unsuppressed
    assert [d.rule for d in unsuppressed] == [rule_id] * expected, [
        d.render() for d in unsuppressed
    ]
    suppressed = [d for d in report.diagnostics if d.suppressed]
    assert [d.rule for d in suppressed] == [rule_id]
    meta = [d for d in report.diagnostics if d.rule in META_IDS]
    assert meta == [], [d.render() for d in meta]


@pytest.mark.parametrize(("fixture", "virtual", "rule_id", "expected"), CASES)
def test_single_rule_run_matches(
    fixture: str, virtual: str, rule_id: str, expected: int
) -> None:
    """Running only the fixture's own rule finds the same diagnostics."""
    rules = rules_by_id([rule_id])
    report = lint_file(FIXTURES / fixture, rules, virtual=virtual)
    assert len(report.unsuppressed) == expected
    assert report.suppressed_count == 1


def test_every_fixture_carries_fix_hints() -> None:
    for fixture, virtual, _, _ in CASES:
        report = lint_file(FIXTURES / fixture, ALL_RULES, virtual=virtual)
        assert all(d.fix_hint for d in report.unsuppressed), fixture


def test_seed_discipline_only_in_seeded_dirs() -> None:
    """Outside core/sim/baselines/experiments the default_rng seed
    checks are off, but global-RNG use is still banned everywhere."""
    report = lint_file(
        FIXTURES / "rng_discipline.py", ALL_RULES, virtual="analysis/fixture.py"
    )
    rules_found = sorted(d.rule for d in report.unsuppressed)
    # import random + np.random.normal() stay; the default_rng findings
    # vanish, which strands the fixture's suppression marker as unused.
    assert rules_found == [UNUSED_SUPPRESSION_ID, "REPRO-R001", "REPRO-R001"]


def test_wall_clock_rule_exempts_telemetry() -> None:
    """Under telemetry/ the wall-clock rule does not apply at all, so
    the fixture's suppression marker is itself flagged as stale."""
    report = lint_file(
        FIXTURES / "no_wall_clock.py", ALL_RULES, virtual="telemetry/fixture.py"
    )
    assert [d.rule for d in report.unsuppressed] == [UNUSED_SUPPRESSION_ID]


def test_rules_by_id_resolves_names_and_ids() -> None:
    by_id = rules_by_id(["REPRO-F001"])
    by_name = rules_by_id(["float-equality"])
    assert by_id == by_name
    # Duplicates collapse; unknown ids raise with the known-rule list.
    assert len(rules_by_id(["REPRO-F001", "float-equality"])) == 1
    with pytest.raises(KeyError, match="REPRO-F001"):
        rules_by_id(["no-such-rule"])


def test_rule_pack_ids_are_unique() -> None:
    ids = [rule.id for rule in ALL_RULES]
    assert len(ids) == len(set(ids))
    assert all(rule.rationale for rule in ALL_RULES)
    assert all(rule.fix_hint for rule in ALL_RULES)


def test_seed_discipline_covers_chaos_dir() -> None:
    """repro.chaos is seeded code: unseeded default_rng is flagged there
    exactly as in core/sim, and the derive_seed idiom stays clean."""
    from repro.devtools.lint.engine import lint_source

    dirty = "import numpy as np\nrng = np.random.default_rng()\n"
    report = lint_source(dirty, ALL_RULES, virtual="chaos/fixture.py")
    assert [d.rule for d in report.unsuppressed] == ["REPRO-R001"]
    # The same code outside a seeded dir is not a finding.
    report = lint_source(dirty, ALL_RULES, virtual="analysis/fixture.py")
    assert report.unsuppressed == []

    clean = (
        "import numpy as np\n"
        "from repro.sim.rng import derive_seed\n"
        "rng = np.random.default_rng(derive_seed(0, 'chaos:x:0:storm'))\n"
    )
    report = lint_source(clean, ALL_RULES, virtual="chaos/fixture.py")
    assert report.unsuppressed == []


def test_wall_clock_banned_in_chaos_dir() -> None:
    from repro.devtools.lint.engine import lint_source

    report = lint_source(
        "import time\nt = time.monotonic()\n",
        ALL_RULES,
        virtual="chaos/fixture.py",
    )
    assert "REPRO-T001" in [d.rule for d in report.unsuppressed]
