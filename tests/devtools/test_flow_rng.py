"""RNG-stream taint pass (``REPRO-D100``–``D103``) on fixture packages.

Each fixture is an in-memory package whose module names place the code
inside (or outside) the seeded directories, mirroring the ``virtual=``
idiom of the per-file rule tests.
"""

from __future__ import annotations

import textwrap

from repro.devtools.flow import ProjectIndex, RngFlowPass


def _findings(**modules: str) -> list:
    index = ProjectIndex.from_sources(
        {name: textwrap.dedent(source) for name, source in modules.items()}
    )
    return RngFlowPass().run(index)


def _rules(found: list) -> list[str]:
    return [d.rule for d in found]


# ----------------------------------------------------------------------
# D101: taint
# ----------------------------------------------------------------------
def test_unseeded_rng_leak_is_flagged() -> None:
    """Acceptance fixture: a Generator born from ``default_rng()`` with
    OS entropy, drawn from two functions away in a seeded dir."""
    found = _findings(
        **{
            "repro.core.leak": """
            import numpy as np

            def make_stream():
                return np.random.default_rng()

            def sample(n):
                rng = np.random.default_rng()
                return rng.random(n)
            """
        }
    )
    assert "REPRO-D101" in _rules(found)
    assert any("unseeded" in d.message for d in found)


def test_seeded_parameter_and_derive_seed_are_clean() -> None:
    found = _findings(
        **{
            "repro.core.clean": """
            import numpy as np
            from repro.sim.rng import derive_seed

            def sample(rng, n):
                return rng.random(n)

            def local(seed, n):
                rng = np.random.default_rng(derive_seed(seed, "x"))
                return rng.random(n)
            """
        }
    )
    assert _rules(found) == []


def test_module_global_generator_draw_is_flagged() -> None:
    found = _findings(
        **{
            "repro.experiments.shared": """
            import numpy as np

            _RNG = np.random.default_rng(7)

            def sample(n):
                return _RNG.random(n)
            """
        }
    )
    assert _rules(found) == ["REPRO-D101"]
    assert "module-global" in found[0].message


def test_untraceable_rng_like_receiver_is_flagged() -> None:
    found = _findings(
        **{
            "repro.chaos.mystery": """
            def sample(ctx, n):
                rng = ctx.randomness
                return rng.random(n)
            """
        }
    )
    assert _rules(found) == ["REPRO-D101"]
    assert "cannot be traced" in found[0].message


def test_seeded_instance_attribute_traces_across_functions() -> None:
    """The TraceReplayer idiom: ``self._rng`` assigned from
    ``RngRegistry(seed).stream(...)``, read via a typed parameter in
    another module."""
    found = _findings(
        **{
            "repro.experiments.replayer": """
            from repro.sim.rng import RngRegistry

            class Replayer:
                def __init__(self, seed):
                    self._rng = RngRegistry(seed).stream("replay")

                def run(self, n):
                    rng = self._rng
                    return rng.random(n)
            """,
            "repro.experiments.fast": """
            from repro.experiments.replayer import Replayer

            def run_fast(replayer: "Replayer", n):
                rng = replayer._rng
                return rng.random(n)
            """,
        }
    )
    assert _rules(found) == []


def test_outside_seeded_dirs_untraceable_draws_are_ignored() -> None:
    found = _findings(
        **{
            "repro.devsupport.tool": """
            import numpy as np

            def sample(n):
                rng = np.random.default_rng()
                return rng.random(n)
            """
        }
    )
    assert _rules(found) == []


# ----------------------------------------------------------------------
# D102: escapes
# ----------------------------------------------------------------------
def test_closure_capturing_generator_returned_is_flagged() -> None:
    found = _findings(
        **{
            "repro.core.closure": """
            import numpy as np
            from repro.sim.rng import derive_seed

            def make_sampler(seed):
                rng = np.random.default_rng(derive_seed(seed, "s"))

                def draw(n):
                    return rng.random(n)

                return draw
            """
        }
    )
    assert _rules(found) == ["REPRO-D102"]
    assert "returned" in found[0].message


def test_generator_across_process_boundary_is_flagged() -> None:
    found = _findings(
        **{
            "repro.experiments.pooluse": """
            def fan_out(pool, rng, items):
                return pool.map(work, [(rng, i) for i in items])

            def work(arg):
                return arg
            """
        }
    )
    assert _rules(found) == ["REPRO-D102"]
    assert "process boundary" in found[0].message


def test_seed_across_boundary_is_clean() -> None:
    found = _findings(
        **{
            "repro.experiments.seedpass": """
            def fan_out(pool, seed, items):
                return pool.map(work, [(seed, i) for i in items])

            def work(arg):
                return arg
            """
        }
    )
    assert _rules(found) == []


# ----------------------------------------------------------------------
# D100/D103: directives
# ----------------------------------------------------------------------
def test_fixed_draws_conditional_draw_is_flagged() -> None:
    found = _findings(
        **{
            "repro.chaos.pulse": """
            def pulses(rng, spec):
                t = 0
                while t < spec.end:  # repro: fixed-draws: pulse contract
                    u = rng.random()
                    if u < spec.p:
                        extra = rng.random()
                    t += 1
            """
        }
    )
    assert _rules(found) == ["REPRO-D103"]
    assert "data-dependent control flow" in found[0].message


def test_fixed_draws_conditional_early_exit_is_flagged() -> None:
    found = _findings(
        **{
            "repro.chaos.earlyexit": """
            def pulses(rng, spec):
                t = 0
                while t < spec.end:  # repro: fixed-draws: pulse contract
                    if spec.done(t):
                        break
                    u = rng.random()
                    t += 1
            """
        }
    )
    assert _rules(found) == ["REPRO-D103"]
    assert "early exit" in found[0].message


def test_fixed_draws_unconditional_region_is_clean() -> None:
    found = _findings(
        **{
            "repro.chaos.cleanpulse": """
            def pulses(rng, spec):
                t = 0
                while t < spec.end:  # repro: fixed-draws: pulse contract
                    u = rng.random()
                    v = rng.random(3)
                    t += 1
            """
        }
    )
    assert _rules(found) == []


def test_draw_parity_mismatch_is_flagged() -> None:
    found = _findings(
        **{
            "repro.experiments.one": """
            def victims(rng, zones):
                for z in zones:  # repro: draw-parity[victims]: match oracle
                    u = rng.random(3)
            """,
            "repro.experiments.two": """
            def victims(rng, zones):
                for z in zones:  # repro: draw-parity[victims]: match oracle
                    if z:
                        u = rng.random(3)
            """,
        }
    )
    assert _rules(found) == ["REPRO-D103"]
    assert "mismatch" in found[0].message


def test_draw_parity_matching_skeletons_are_clean() -> None:
    found = _findings(
        **{
            "repro.experiments.one": """
            def victims(rng, zones):
                for z in zones:  # repro: draw-parity[victims]: match oracle
                    u = rng.random(3)
            """,
            "repro.experiments.two": """
            def victims(rng, zones):
                for z in zones:  # repro: draw-parity[victims]: match oracle
                    u = rng.random(3)
            """,
        }
    )
    assert _rules(found) == []


def test_directive_problems_are_d100() -> None:
    found = _findings(
        **{
            "repro.chaos.directives": """
            # repro: fixed-draws: floating, attached to nothing

            def no_reason(rng, items):
                for i in items:  # repro: fixed-draws
                    u = rng.random()

            def stale(items):
                for i in items:  # repro: fixed-draws: no draws here
                    pass

            def lonely(rng, items):
                for i in items:  # repro: draw-parity[solo]: one member
                    u = rng.random()
            """
        }
    )
    rules = _rules(found)
    assert rules == ["REPRO-D100"] * 4
    messages = " | ".join(d.message for d in found)
    assert "not attached" in messages
    assert "without a reason" in messages
    assert "stale" in messages
    assert "single member" in messages
