"""Engine semantics: suppression linting, meta rules, baselines,
virtual path scoping, and the deterministic JSON contract."""

from __future__ import annotations

import json

from repro.devtools.lint.engine import (
    BARE_SUPPRESSION_ID,
    PARSE_ERROR_ID,
    UNUSED_SUPPRESSION_ID,
    Diagnostic,
    LintReport,
    lint_source,
)
from repro.devtools.lint.rules import ALL_RULES


def test_justified_suppression() -> None:
    source = (
        "same = cost_a == cost_b"
        "  # repro: noqa[REPRO-F001]: bit-exact tie-break on purpose\n"
    )
    report = lint_source(source, ALL_RULES)
    assert report.unsuppressed == []
    assert report.suppressed_count == 1
    assert report.diagnostics[0].rule == "REPRO-F001"


def test_unjustified_suppression_is_itself_flagged() -> None:
    source = "same = cost_a == cost_b  # repro: noqa[REPRO-F001]\n"
    report = lint_source(source, ALL_RULES)
    # The finding is suppressed, but the naked marker draws N000.
    assert [d.rule for d in report.unsuppressed] == [BARE_SUPPRESSION_ID]
    assert report.suppressed_count == 1


def test_unused_suppression_is_flagged() -> None:
    source = "x = 1  # repro: noqa[REPRO-F001]: nothing to suppress here\n"
    report = lint_source(source, ALL_RULES)
    assert [d.rule for d in report.unsuppressed] == [UNUSED_SUPPRESSION_ID]
    assert "REPRO-F001" in report.unsuppressed[0].message


def test_bare_marker_suppresses_any_rule_on_the_line() -> None:
    source = (
        "same = cost_a == cost_b  # repro: noqa: fixture covers both ops\n"
    )
    report = lint_source(source, ALL_RULES)
    assert report.unsuppressed == []
    assert report.suppressed_count == 1


def test_multi_id_marker() -> None:
    source = (
        "check = lambda cost=[]: cost == []"
        "  # repro: noqa[REPRO-F001, REPRO-M001]: fixture\n"
    )
    report = lint_source(source, ALL_RULES)
    assert report.unsuppressed == []
    assert sorted(d.rule for d in report.diagnostics) == [
        "REPRO-F001",
        "REPRO-M001",
    ]


def test_marker_for_other_rule_does_not_suppress() -> None:
    source = "same = cost_a == cost_b  # repro: noqa[REPRO-M001]: wrong id\n"
    report = lint_source(source, ALL_RULES)
    rules_found = sorted(d.rule for d in report.unsuppressed)
    # The F001 finding survives and the M001 marker is stale.
    assert rules_found == ["REPRO-F001", UNUSED_SUPPRESSION_ID]


def test_marker_inside_docstring_is_not_a_marker() -> None:
    source = '"""# repro: noqa[REPRO-F001]: text in a docstring"""\nx = 1\n'
    report = lint_source(source, ALL_RULES)
    assert report.diagnostics == []


def test_parse_error_yields_single_meta_diagnostic() -> None:
    report = lint_source("def broken(:\n", ALL_RULES, path="broken.py")
    assert [d.rule for d in report.diagnostics] == [PARSE_ERROR_ID]
    assert report.files_checked == 1
    assert report.unsuppressed[0].path == "broken.py"


def test_virtual_path_scopes_rules() -> None:
    source = "import time\nelapsed = time.monotonic()\n"
    in_sim = lint_source(source, ALL_RULES, virtual="sim/progress.py")
    assert [d.rule for d in in_sim.unsuppressed] == ["REPRO-T001"]
    in_telemetry = lint_source(
        source, ALL_RULES, virtual="telemetry/progress.py"
    )
    assert in_telemetry.diagnostics == []


def test_filter_rules_always_keeps_meta() -> None:
    report = LintReport(
        diagnostics=[
            Diagnostic("REPRO-F001", "a.py", 1, 0, "float eq"),
            Diagnostic(UNUSED_SUPPRESSION_ID, "a.py", 2, 0, "stale"),
        ],
        files_checked=1,
    )
    kept = report.filter_rules(["REPRO-M001"])
    assert [d.rule for d in kept.diagnostics] == [UNUSED_SUPPRESSION_ID]
    assert kept.files_checked == 1


def test_apply_baseline_round_trip() -> None:
    source = "a = cost_a == cost_b\nb = price_x != price_y\n"
    report = lint_source(source, ALL_RULES)
    assert len(report.unsuppressed) == 2
    keys = [d.baseline_key() for d in report.unsuppressed]
    rebased = report.apply_baseline(keys)
    assert rebased.unsuppressed == []
    assert rebased.suppressed_count == 2
    # A key is line-independent: rule|path|message.
    assert keys[0].startswith("REPRO-F001|")


def test_json_output_is_deterministic_and_versioned() -> None:
    source = "a = cost_a == cost_b\n"
    report = lint_source(source, ALL_RULES)
    first = report.to_json(rules=ALL_RULES)
    second = report.to_json(rules=ALL_RULES)
    assert first == second
    payload = json.loads(first)
    assert payload["version"] == 1
    assert payload["counts"] == {"suppressed": 0, "unsuppressed": 1}
    assert payload["files_checked"] == 1
    assert set(payload["rules"]) == {rule.id for rule in ALL_RULES}
    (diag,) = payload["diagnostics"]
    assert diag["rule"] == "REPRO-F001"
    assert diag["suppressed"] is False


def test_render_marks_suppressed_and_hints_unsuppressed() -> None:
    loud = Diagnostic("REPRO-F001", "a.py", 3, 4, "bad", fix_hint="use isclose")
    assert loud.render() == "a.py:3:4: REPRO-F001 bad\n    hint: use isclose"
    quiet = Diagnostic("REPRO-F001", "a.py", 3, 4, "bad", suppressed=True)
    assert quiet.render().endswith("(suppressed)")
