"""``repro lint`` CLI behaviour through the real argument parser."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser

FIXTURE = Path(__file__).parent / "fixtures" / "float_equality.py"


def run_lint(argv: list[str], capsys: pytest.CaptureFixture) -> tuple[int, str]:
    args = build_parser().parse_args(["lint", *argv])
    code = args.func(args)
    return code, capsys.readouterr().out


def test_text_format_reports_and_fails(capsys: pytest.CaptureFixture) -> None:
    code, out = run_lint([str(FIXTURE), "--rule", "REPRO-F001"], capsys)
    assert code == 1
    assert "repro lint: 1 files, 2 diagnostic(s), 1 suppressed" in out
    assert out.count("REPRO-F001") == 2
    assert "hint:" in out


def test_budget_allows_known_findings(capsys: pytest.CaptureFixture) -> None:
    code, _ = run_lint(
        [str(FIXTURE), "--rule", "REPRO-F001", "--budget", "2"], capsys
    )
    assert code == 0


def test_rule_selection_by_name_matches_id(
    capsys: pytest.CaptureFixture,
) -> None:
    _, by_id = run_lint(
        [str(FIXTURE), "--rule", "REPRO-F001", "--format", "json"], capsys
    )
    _, by_name = run_lint(
        [str(FIXTURE), "--rule", "float-equality", "--format", "json"], capsys
    )
    assert by_id == by_name


def test_json_output_is_byte_stable(capsys: pytest.CaptureFixture) -> None:
    argv = [str(FIXTURE), "--rule", "REPRO-F001", "--format", "json"]
    code_a, first = run_lint(argv, capsys)
    code_b, second = run_lint(argv, capsys)
    assert (code_a, code_b) == (1, 1)
    assert first == second
    payload = json.loads(first)
    assert payload["version"] == 1
    assert payload["counts"] == {"suppressed": 1, "unsuppressed": 2}
    assert [d["rule"] for d in payload["diagnostics"]].count("REPRO-F001") == 3


def test_unknown_rule_exits_with_known_rule_list(
    capsys: pytest.CaptureFixture,
) -> None:
    with pytest.raises(SystemExit, match="REPRO-F001"):
        run_lint([str(FIXTURE), "--rule", "no-such-rule"], capsys)


def test_missing_target_exits(capsys: pytest.CaptureFixture) -> None:
    with pytest.raises(SystemExit, match="no such lint target"):
        run_lint(["/no/such/path.py"], capsys)


def test_list_rules_prints_the_pack(capsys: pytest.CaptureFixture) -> None:
    code, out = run_lint(["--list-rules"], capsys)
    assert code == 0
    for rule_id in (
        "REPRO-R001",
        "REPRO-T001",
        "REPRO-O001",
        "REPRO-F001",
        "REPRO-M001",
        "REPRO-E001",
        "REPRO-X001",
        "REPRO-J001",
    ):
        assert rule_id in out


def test_write_baseline_then_apply(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    baseline = tmp_path / "lint-baseline.json"
    code, out = run_lint(
        [
            str(FIXTURE),
            "--rule",
            "REPRO-F001",
            "--write-baseline",
            str(baseline),
        ],
        capsys,
    )
    assert code == 0
    assert "wrote 2 baseline entries" in out
    keys = json.loads(baseline.read_text())
    assert len(keys) == 2 and all(k.startswith("REPRO-F001|") for k in keys)

    code, out = run_lint(
        [str(FIXTURE), "--rule", "REPRO-F001", "--baseline", str(baseline)],
        capsys,
    )
    assert code == 0
    assert "0 diagnostic(s), 3 suppressed" in out
