"""Symbol table + call graph builder (``repro.devtools.flow.project``).

Synthetic in-memory packages via ``ProjectIndex.from_sources`` — the
whole-program analogue of linting fixtures under a ``virtual=`` path:
module names place the code in scoped directories (``repro.core.x``
lives at ``core/x.py``).
"""

from __future__ import annotations

import ast
import textwrap

from repro.devtools.flow import ProjectIndex


def _index(**modules: str) -> ProjectIndex:
    return ProjectIndex.from_sources(
        {name: textwrap.dedent(source) for name, source in modules.items()}
    )


def test_modules_classes_functions_are_indexed() -> None:
    index = _index(
        **{
            "repro.core.alpha": """
            class Widget:
                def spin(self) -> int:
                    return 1

            def helper() -> int:
                return 2
            """
        }
    )
    module = index.modules["repro.core.alpha"]
    assert module.relpath == "core/alpha.py"
    assert module.in_dir("core/") and not module.in_dir("sim/")
    assert "repro.core.alpha.Widget" in index.classes
    assert "repro.core.alpha.Widget.spin" in index.functions
    assert "repro.core.alpha.helper" in index.functions
    spin = index.functions["repro.core.alpha.Widget.spin"]
    assert spin.owner == "repro.core.alpha.Widget"


def test_import_resolution_follows_reexports() -> None:
    index = _index(
        **{
            "repro.core.impl": """
            def work() -> int:
                return 1
            """,
            "repro.core": """
            from repro.core.impl import work
            """,
            "repro.sim.user": """
            from repro.core import work

            def caller() -> int:
                return work()
            """,
        }
    )
    user = index.modules["repro.sim.user"]
    resolved = index.resolve_name(user, ["work"])
    assert resolved == "repro.core.impl.work"
    caller = index.functions["repro.sim.user.caller"]
    sites = list(index.iter_calls(caller))
    assert any("repro.core.impl.work" in s.targets for s in sites)


def test_relative_imports_resolve() -> None:
    index = _index(
        **{
            "repro.core.a": """
            def shared() -> int:
                return 3
            """,
            "repro.core.b": """
            from .a import shared

            def use() -> int:
                return shared()
            """,
        }
    )
    use = index.functions["repro.core.b.use"]
    sites = list(index.iter_calls(use))
    assert any("repro.core.a.shared" in s.targets for s in sites)


def test_mro_and_virtual_dispatch() -> None:
    index = _index(
        **{
            "repro.core.shapes": """
            class Base:
                def area(self) -> int:
                    return 0

            class Square(Base):
                def area(self) -> int:
                    return 4

            class Cube(Square):
                pass
            """
        }
    )
    mro = [c.qname for c in index.mro("repro.core.shapes.Cube")]
    assert mro == [
        "repro.core.shapes.Cube",
        "repro.core.shapes.Square",
        "repro.core.shapes.Base",
    ]
    assert index.transitive_subclasses("repro.core.shapes.Base") == {
        "repro.core.shapes.Square",
        "repro.core.shapes.Cube",
    }
    targets = index.virtual_targets("repro.core.shapes.Base", "area")
    assert {t.qname for t in targets} == {
        "repro.core.shapes.Base.area",
        "repro.core.shapes.Square.area",
    }


def test_attr_types_inferred_from_init() -> None:
    index = _index(
        **{
            "repro.core.engine": """
            class Gearbox:
                def shift(self) -> None:
                    pass

            class Engine:
                def __init__(self) -> None:
                    self.gearbox = Gearbox()

                def drive(self) -> None:
                    self.gearbox.shift()
            """
        }
    )
    assert (
        index.attr_type("repro.core.engine.Engine", "gearbox")
        == "repro.core.engine.Gearbox"
    )
    drive = index.functions["repro.core.engine.Engine.drive"]
    sites = list(index.iter_calls(drive))
    assert any(
        "repro.core.engine.Gearbox.shift" in s.targets for s in sites
    )


def test_annotated_parameter_dispatch_and_quoted_annotation() -> None:
    index = _index(
        **{
            "repro.core.defs": """
            class Runner:
                def go(self) -> int:
                    return 1
            """,
            "repro.core.use": """
            from repro.core.defs import Runner

            def drive(runner: "Runner") -> int:
                return runner.go()
            """,
        }
    )
    drive = index.functions["repro.core.use.drive"]
    assert drive.param_types["runner"] == "repro.core.defs.Runner"
    sites = list(index.iter_calls(drive))
    assert any("repro.core.defs.Runner.go" in s.targets for s in sites)


def test_construction_edges_to_init() -> None:
    index = _index(
        **{
            "repro.core.build": """
            class Thing:
                def __init__(self, n: int) -> None:
                    self.n = n

            def make() -> Thing:
                return Thing(3)
            """
        }
    )
    make = index.functions["repro.core.build.make"]
    sites = list(index.iter_calls(make))
    assert any(
        "repro.core.build.Thing.__init__" in s.targets for s in sites
    )


def test_reachable_walks_call_graph() -> None:
    index = _index(
        **{
            "repro.core.graph": """
            def leaf() -> int:
                return 1

            def mid() -> int:
                return leaf()

            def entry() -> int:
                return mid()

            def island() -> int:
                return 9
            """
        }
    )
    reached = index.reachable(["repro.core.graph.entry"])
    assert "repro.core.graph.leaf" in reached
    assert "repro.core.graph.mid" in reached
    assert "repro.core.graph.island" not in reached


def test_syntax_error_module_is_skipped_not_fatal() -> None:
    index = _index(
        **{
            "repro.core.bad": "def broken(:\n",
            "repro.core.good": """
            def fine() -> int:
                return 1
            """,
        }
    )
    assert "repro.core.bad" not in index.modules
    assert "repro.core.good.fine" in index.functions


def test_class_attr_lookup_through_mro() -> None:
    index = _index(
        **{
            "repro.core.flags": """
            class Base:
                flag = True

            class Child(Base):
                pass
            """
        }
    )
    expr = index.class_attr("repro.core.flags.Child", "flag")
    assert isinstance(expr, ast.Constant) and expr.value is True
