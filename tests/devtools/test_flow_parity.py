"""Engine-parity pass (``REPRO-D301``/``D302``) on fixture engine pairs.

Fixture modules are named ``repro.experiments.replay`` /
``repro.experiments.fastpath`` so the default surfaces pick them up
exactly as they pick up the real engines.
"""

from __future__ import annotations

import textwrap

from repro.devtools.flow import ParityPass, ProjectIndex


def _findings(**modules: str) -> list:
    index = ProjectIndex.from_sources(
        {name: textwrap.dedent(source) for name, source in modules.items()}
    )
    return ParityPass().run(index)


def _rules(found: list) -> list[str]:
    return [d.rule for d in found]


def test_engine_divergent_result_field_is_flagged() -> None:
    """Acceptance fixture: the discrete path writes ``preemptions``,
    the fastpath forgets it."""
    found = _findings(
        **{
            "repro.experiments.replay": """
            from repro.experiments.results import ReplayResult

            def run():
                return ReplayResult(availability=1.0, preemptions=3)
            """,
            "repro.experiments.fastpath": """
            from repro.experiments.results import ReplayResult

            def run_fast():
                return ReplayResult(availability=1.0)
            """,
        }
    )
    assert _rules(found) == ["REPRO-D301"]
    diagnostic = found[0]
    assert "'preemptions'" in diagnostic.message
    assert "discrete" in diagnostic.message
    assert "fastpath" in diagnostic.message
    assert diagnostic.path == "experiments/fastpath.py"


def test_matching_result_fields_are_clean() -> None:
    found = _findings(
        **{
            "repro.experiments.replay": """
            from repro.experiments.results import ReplayResult

            def run():
                return ReplayResult(availability=1.0, preemptions=3)
            """,
            "repro.experiments.fastpath": """
            from repro.experiments.results import ReplayResult

            def run_fast():
                return ReplayResult(availability=0.5, preemptions=0)
            """,
        }
    )
    assert _rules(found) == []


def test_single_surface_writer_is_not_compared() -> None:
    found = _findings(
        **{
            "repro.experiments.replay": """
            from repro.experiments.results import ReplayResult

            def run():
                return ReplayResult(availability=1.0)
            """,
            "repro.experiments.fastpath": """
            def run_fast():
                return None
            """,
        }
    )
    assert _rules(found) == []


def test_event_emitted_by_one_path_only_is_flagged() -> None:
    found = _findings(
        **{
            "repro.experiments.replay": """
            from repro.telemetry.events import Preempted, Promoted

            def run(bus):
                bus.emit(Preempted(zone="a"))
                bus.emit(Promoted(zone="a"))
            """,
            "repro.experiments.fastpath": """
            from repro.telemetry.events import Preempted

            def run_fast(bus):
                bus.emit(Preempted(zone="a"))
            """,
        }
    )
    assert _rules(found) == ["REPRO-D301"]
    assert "'Promoted'" in found[0].message
    assert found[0].path == "experiments/fastpath.py"


def test_cross_function_unordered_iteration_is_flagged() -> None:
    found = _findings(
        **{
            "repro.experiments.replay": """
            def active_zones(fleet):
                return {inst.zone for inst in fleet}

            def run(fleet, out):
                for zone in active_zones(fleet):
                    out.append(zone)
            """,
            "repro.experiments.fastpath": """
            def run_fast():
                return None
            """,
        }
    )
    assert _rules(found) == ["REPRO-D302"]
    assert "active_zones" in found[0].message


def test_unordered_return_propagates_through_wrappers() -> None:
    found = _findings(
        **{
            "repro.experiments.replay": """
            def raw_zones(fleet):
                return set(fleet)

            def zones(fleet):
                return raw_zones(fleet)

            def run(fleet, out):
                for zone in zones(fleet):
                    out.append(zone)
            """,
            "repro.experiments.fastpath": """
            def run_fast():
                return None
            """,
        }
    )
    assert _rules(found) == ["REPRO-D302"]
    assert "raw_zones" in found[0].message


def test_sorted_iteration_over_set_return_is_clean() -> None:
    found = _findings(
        **{
            "repro.experiments.replay": """
            def active_zones(fleet):
                return {inst.zone for inst in fleet}

            def run(fleet, out):
                for zone in sorted(active_zones(fleet)):
                    out.append(zone)
            """,
            "repro.experiments.fastpath": """
            def run_fast():
                return None
            """,
        }
    )
    assert _rules(found) == []
