"""Fixture for REPRO-M001 (mutable-default).  Linted as serving/fixture.py."""


def bad_list(items=[]):  # BAD: shared list across calls
    return items


def bad_dict(mapping={}):  # BAD: shared dict across calls
    return mapping


def bad_call(seen=set()):  # BAD: set() evaluated once per process
    return seen


def good_none(items=None):
    return list(items or ())


def good_frozen(excluded=frozenset()):
    return excluded  # immutable default is fine


def suppressed(cache={}):  # repro: noqa[REPRO-M001]: fixture exercising suppression
    return cache
