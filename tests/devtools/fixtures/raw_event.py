"""Fixture for REPRO-E001 (raw-event).  Linted as serving/fixture.py."""
from repro.sim.engine import _ScheduledEvent


def bad_construct(callback):
    return _ScheduledEvent(time=0.0, seq=0, callback=callback)  # BAD


def bad_queue_peek(engine):
    return engine._queue[0]  # BAD: engine heap touched directly


def good_schedule(engine, callback):
    return engine.call_after(1.0, callback)


class GoodComponent:
    def __init__(self):
        self._queue = []  # a component-local queue is not the engine heap

    def pending(self):
        return len(self._queue)


def suppressed(engine):
    return len(engine._queue)  # repro: noqa[REPRO-E001]: fixture exercising suppression
