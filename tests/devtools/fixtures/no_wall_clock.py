"""Fixture for REPRO-T001 (no-wall-clock).  Linted as sim/fixture.py."""
import time
from time import monotonic  # BAD: wall-clock import


def bad_time():
    return time.time()  # BAD: epoch read in simulated code


def bad_monotonic():
    return time.monotonic()  # BAD: wall-clock read


def good(engine):
    return engine.now  # simulated time


def good_sleepless(duration):
    return duration * 2  # arithmetic on simulated durations is fine


def suppressed():
    return time.perf_counter()  # repro: noqa[REPRO-T001]: fixture exercising suppression
