"""Fixture for REPRO-F001 (float-equality).  Linted as core/fixture.py."""
import math


def bad_cost(cost_a, cost_b):
    return cost_a == cost_b  # BAD: exact equality on accumulated cost


def bad_latency(latency):
    return latency != 0.0  # BAD: exact inequality on latency


def good_tolerance(cost_a, cost_b):
    return math.isclose(cost_a, cost_b, rel_tol=1e-9)


def good_string(name):
    return name == "cost_model"  # string comparison, not numeric


def suppressed(cost_a, cost_b):
    return cost_a == cost_b  # repro: noqa[REPRO-F001]: fixture exercising suppression
