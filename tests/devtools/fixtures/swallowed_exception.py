"""Fixture for REPRO-X001 (swallowed-exception).  Linted as sim/fixture.py."""


def bad_bare(fn):
    try:
        fn()
    except:  # BAD: bare except traps SystemExit/KeyboardInterrupt
        pass


def bad_broad_silent(fn):
    try:
        fn()
    except Exception:  # BAD: silently swallowed in simulation code
        pass


def good_narrow(fn, log):
    try:
        fn()
    except ValueError:
        log.warning("bad value")


def good_reraise(fn):
    try:
        fn()
    except Exception:
        raise


def suppressed(fn):
    try:
        fn()
    except Exception:  # repro: noqa[REPRO-X001]: fixture exercising suppression
        pass
