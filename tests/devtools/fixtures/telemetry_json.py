"""Fixture for REPRO-J001 (telemetry-json).  Linted as serving/fixture.py."""


def bad_set_literal(bus, a, b):
    bus.emit({a, b})  # BAD: sets serialise in nondeterministic order


def bad_set_call(audit, zones):
    audit.record("rebalance", zones=set(zones))  # BAD: set() payload


def bad_generator(bus, items):
    bus.emit(x for x in items)  # BAD: generators are not JSON


def good_sorted(audit, zones):
    audit.record("rebalance", zones=sorted(zones))


def good_scalar(series, now, value):
    series.record(now, value)


def suppressed(audit, zones):
    audit.record("zones", zones=set(zones))  # repro: noqa[REPRO-J001]: fixture exercising suppression
