"""Fixture for REPRO-R001 (rng-discipline).  Linted as core/fixture.py."""
import random  # BAD: stdlib random draws from process-global state

import numpy as np

from repro.sim.rng import derive_seed


def bad_global_draw():
    return np.random.normal()  # BAD: hidden global numpy RNG


def bad_unseeded():
    return np.random.default_rng()  # BAD: seeded from OS entropy


def bad_underived(seed):
    return np.random.default_rng(seed)  # BAD: seed not via derive_seed


def good(seed):
    return np.random.default_rng(derive_seed(seed, "stream"))


def good_shuffle(rng, items):
    rng.shuffle(items)  # bound generator method, not the global RNG
    return items


def suppressed():
    return np.random.default_rng(1234)  # repro: noqa[REPRO-R001]: fixture exercising suppression
