"""Fixture for REPRO-O001 (ordered-iteration).  Linted as sim/fixture.py."""


def bad_set_literal():
    out = []
    for zone in {"a", "b", "c"}:  # BAD: set order + append body
        out.append(zone)
    return out


def bad_dict_keys(table, rng):
    draws = []
    for key in table.keys():  # BAD: keys() iteration + RNG body
        draws.append(rng.normal())
    return draws


def bad_listcomp(zones):
    return [z for z in set(zones)]  # BAD: list built from a set


def good_sorted(zones):
    out = []
    for zone in sorted(zones):
        out.append(zone)
    return out


def good_insensitive(zones):
    total = 0
    for zone in {"a", "b"}:  # order-insensitive body: no diagnostics
        total += len(zone)
    return total


def suppressed(zones):
    return [z for z in set(zones)]  # repro: noqa[REPRO-O001]: fixture exercising suppression
