"""Integration gate: the shipped package is lint-clean.

This is the same check CI runs (``repro lint`` with the default target
and a zero budget): every determinism invariant holds over the whole
``repro`` package, and every suppression in the tree is justified —
an unjustified or stale marker fails here too, via the meta rules.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.devtools.flow import ProjectIndex, run_deep
from repro.devtools.lint.engine import lint_paths
from repro.devtools.lint.rules import ALL_RULES


def test_package_has_zero_unsuppressed_diagnostics() -> None:
    package_root = Path(repro.__file__).resolve().parent
    report = lint_paths([package_root], ALL_RULES)
    assert report.files_checked > 50  # the whole package, not a subset
    offenders = [d.render() for d in report.unsuppressed]
    assert offenders == []


def test_package_is_deep_clean() -> None:
    """The ``repro lint --deep`` gate: every interprocedural contract
    (RNG-stream taint, stationarity declarations, engine write-surface
    parity) holds over the whole package, and every deep suppression
    and flow directive in the tree is live and justified."""
    package_root = Path(repro.__file__).resolve().parent
    index = ProjectIndex.from_package(package_root)
    report = run_deep(index)
    assert len(index.modules) > 50
    offenders = [d.render() for d in report.unsuppressed]
    assert offenders == []
