"""Stationarity pass (``REPRO-D201``–``D203``) on fixture policy packages.

Fixtures define a minimal ``ServingPolicy`` hierarchy under
``repro.serving.policy`` so the pass discovers them exactly the way it
discovers the real ones.
"""

from __future__ import annotations

import textwrap

from repro.devtools.flow import ProjectIndex, StationarityPass

_POLICY_BASE = """
class ServingPolicy:
    stationary_decisions = False
    stationary_state = frozenset()
    audit = None

    def target_mix(self, obs):
        raise NotImplementedError

    def select_spot_zone(self, obs, excluded=frozenset()):
        raise NotImplementedError
"""


def _findings(**modules: str) -> list:
    sources = {
        "repro.serving.policy": textwrap.dedent(_POLICY_BASE),
    }
    sources.update(
        {name: textwrap.dedent(source) for name, source in modules.items()}
    )
    index = ProjectIndex.from_sources(sources)
    return StationarityPass().run(index)


def _rules(found: list) -> list[str]:
    return [d.rule for d in found]


def test_falsely_declared_stationary_policy_is_flagged() -> None:
    """Acceptance fixture: declares stationary, reads obs.now in a
    helper reached from target_mix."""
    found = _findings(
        **{
            "repro.core.liar": """
            from repro.serving.policy import ServingPolicy

            class LiarPolicy(ServingPolicy):
                stationary_decisions = True

                def target_mix(self, obs):
                    return self._decide(obs)

                def _decide(self, obs):
                    if obs.now > 100.0:
                        return 1
                    return 0

                def select_spot_zone(self, obs, excluded=frozenset()):
                    return None
            """
        }
    )
    assert _rules(found) == ["REPRO-D201"]
    assert "obs.now" in found[0].message
    assert "LiarPolicy" in found[0].message


def test_wall_clock_in_reachable_helper_is_flagged() -> None:
    found = _findings(
        **{
            "repro.core.clocky": """
            import time

            from repro.serving.policy import ServingPolicy

            def stamp():
                return time.monotonic()

            class ClockPolicy(ServingPolicy):
                stationary_decisions = True

                def target_mix(self, obs):
                    return stamp()

                def select_spot_zone(self, obs, excluded=frozenset()):
                    return None
            """
        }
    )
    assert _rules(found) == ["REPRO-D201"]
    assert "wall clock" in found[0].message


def test_non_whitelisted_mutation_is_flagged_and_whitelist_clears_it() -> None:
    body = """
    from repro.serving.policy import ServingPolicy

    class CachedPolicy(ServingPolicy):
        stationary_decisions = True
        {whitelist}

        def __init__(self):
            self._cache = {{}}

        def target_mix(self, obs):
            self._cache[obs.n_tar] = obs.n_tar
            return obs.n_tar

        def select_spot_zone(self, obs, excluded=frozenset()):
            return None
    """
    flagged = _findings(
        **{"repro.core.cached": body.format(whitelist="")}
    )
    assert _rules(flagged) == ["REPRO-D201"]
    assert "_cache" in flagged[0].message

    clean = _findings(
        **{
            "repro.core.cached": body.format(
                whitelist='stationary_state = frozenset({"_cache"})'
            )
        }
    )
    assert _rules(clean) == []


def test_audit_guarded_block_is_exempt_but_else_branch_is_not() -> None:
    found = _findings(
        **{
            "repro.core.audited": """
            from repro.serving.policy import ServingPolicy

            class AuditedPolicy(ServingPolicy):
                stationary_decisions = True

                def target_mix(self, obs):
                    if self.audit is not None:
                        self.audit.record("mix", now=obs.now)
                    return obs.n_tar

                def select_spot_zone(self, obs, excluded=frozenset()):
                    return None
            """
        }
    )
    assert _rules(found) == []

    flagged = _findings(
        **{
            "repro.core.audited": """
            from repro.serving.policy import ServingPolicy

            class AuditedPolicy(ServingPolicy):
                stationary_decisions = True

                def target_mix(self, obs):
                    if self.audit is not None:
                        pass
                    else:
                        self._last = obs.now
                    return obs.n_tar

                def select_spot_zone(self, obs, excluded=frozenset()):
                    return None
            """
        }
    )
    assert set(_rules(flagged)) == {"REPRO-D201"}


def test_select_surface_mutation_is_exempt_but_temporal_is_not() -> None:
    found = _findings(
        **{
            "repro.core.rrobin": """
            from repro.serving.policy import ServingPolicy

            class RoundRobinish(ServingPolicy):
                stationary_decisions = True

                def __init__(self):
                    self._next = 0

                def target_mix(self, obs):
                    return obs.n_tar

                def select_spot_zone(self, obs, excluded=frozenset()):
                    self._next = self._next + 1
                    return None
            """
        }
    )
    assert _rules(found) == []

    flagged = _findings(
        **{
            "repro.core.rrobin": """
            from repro.serving.policy import ServingPolicy

            class TemporalSelect(ServingPolicy):
                stationary_decisions = True

                def target_mix(self, obs):
                    return obs.n_tar

                def select_spot_zone(self, obs, excluded=frozenset()):
                    return None if obs.now > 5.0 else "zone-a"
            """
        }
    )
    assert _rules(flagged) == ["REPRO-D201"]


def test_helper_class_whitelist_via_mutating_method() -> None:
    found = _findings(
        **{
            "repro.core.placers": """
            class Placer:
                stationary_state = frozenset({"_targets"})

                def __init__(self):
                    self._targets = []

                def set_target(self, n):
                    self._targets.append(n)
            """,
            "repro.core.mixture": """
            from repro.core.placers import Placer
            from repro.serving.policy import ServingPolicy

            class MixPolicy(ServingPolicy):
                stationary_decisions = True

                def __init__(self):
                    self.placer = Placer()

                def target_mix(self, obs):
                    self.placer.set_target(obs.n_tar)
                    return obs.n_tar

                def select_spot_zone(self, obs, excluded=frozenset()):
                    return None
            """,
        }
    )
    assert _rules(found) == []


def test_underdeclared_stationary_policy_is_flagged() -> None:
    found = _findings(
        **{
            "repro.core.humble": """
            from repro.serving.policy import ServingPolicy

            class HumblePolicy(ServingPolicy):
                stationary_decisions = False

                def target_mix(self, obs):
                    return obs.n_tar

                def select_spot_zone(self, obs, excluded=frozenset()):
                    return None
            """
        }
    )
    assert _rules(found) == ["REPRO-D202"]
    assert "HumblePolicy" in found[0].message


def test_genuinely_nonstationary_policy_is_not_underdeclared() -> None:
    found = _findings(
        **{
            "repro.core.mark": """
            from repro.serving.policy import ServingPolicy

            class MarkLike(ServingPolicy):
                stationary_decisions = False

                def target_mix(self, obs):
                    self._window = obs.now
                    return obs.n_tar

                def select_spot_zone(self, obs, excluded=frozenset()):
                    return None
            """
        }
    )
    assert _rules(found) == []


def test_stale_whitelist_entry_is_flagged() -> None:
    found = _findings(
        **{
            "repro.core.stale": """
            from repro.serving.policy import ServingPolicy

            class StalePolicy(ServingPolicy):
                stationary_decisions = True
                stationary_state = frozenset({"_ghost"})

                def target_mix(self, obs):
                    return obs.n_tar

                def select_spot_zone(self, obs, excluded=frozenset()):
                    return None
            """
        }
    )
    assert _rules(found) == ["REPRO-D203"]
    assert "_ghost" in found[0].message
