"""Tests for the ``repro.devtools`` static-analysis subsystem."""
