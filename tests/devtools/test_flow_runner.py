"""Deep runner: suppression interop, pass selection, payload stability,
and the ``--deep`` CLI surface.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import build_parser
from repro.devtools.flow import PASS_NAMES, ProjectIndex, make_passes, run_deep
from repro.devtools.lint.engine import UNUSED_SUPPRESSION_ID

LEAK = """
import numpy as np

def sample(n):
    rng = np.random.default_rng()
    return rng.random(n)
"""


def _index(**modules: str) -> ProjectIndex:
    return ProjectIndex.from_sources(
        {name: textwrap.dedent(source) for name, source in modules.items()}
    )


def run_lint(argv: list[str], capsys: pytest.CaptureFixture) -> tuple[int, str]:
    args = build_parser().parse_args(["lint", *argv])
    code = args.func(args)
    return code, capsys.readouterr().out


# ----------------------------------------------------------------------
# Suppression interop
# ----------------------------------------------------------------------
def test_named_deep_suppression_silences_the_finding() -> None:
    report = run_deep(
        _index(
            **{
                "repro.core.leak": """
                import numpy as np

                def sample(n):
                    rng = np.random.default_rng()
                    return rng.random(n)  # repro: noqa[REPRO-D101]: fixture entropy is deliberate
                """
            }
        )
    )
    assert report.unsuppressed == []
    assert [d.rule for d in report.diagnostics if d.suppressed] == [
        "REPRO-D101"
    ]


def test_bare_noqa_does_not_silence_deep_findings() -> None:
    report = run_deep(
        _index(
            **{
                "repro.core.leak": """
                import numpy as np

                def sample(n):
                    rng = np.random.default_rng()
                    return rng.random(n)  # repro: noqa
                """
            }
        )
    )
    assert [d.rule for d in report.unsuppressed] == ["REPRO-D101"]


def test_mixed_deep_and_shallow_marker_is_d000() -> None:
    report = run_deep(
        _index(
            **{
                "repro.core.leak": """
                import numpy as np

                def sample(n):
                    rng = np.random.default_rng()
                    return rng.random(n)  # repro: noqa[REPRO-D101, REPRO-R001]: mixed
                """
            }
        )
    )
    rules = sorted(d.rule for d in report.unsuppressed)
    assert rules == ["REPRO-D000"]
    assert "split into one marker per layer" in report.unsuppressed[0].message


def test_stale_deep_marker_is_reported() -> None:
    report = run_deep(
        _index(
            **{
                "repro.core.fine": """
                def add(a, b):
                    return a + b  # repro: noqa[REPRO-D102]: nothing escapes here
                """
            }
        )
    )
    assert [d.rule for d in report.unsuppressed] == [UNUSED_SUPPRESSION_ID]
    assert "matches no deep diagnostic" in report.unsuppressed[0].message


# ----------------------------------------------------------------------
# Pass selection
# ----------------------------------------------------------------------
def test_pass_selection_limits_rules() -> None:
    index = _index(**{"repro.core.leak": LEAK})
    taint_only = run_deep(index, ["rng-taint"])
    assert [d.rule for d in taint_only.unsuppressed] == ["REPRO-D101"]
    stationarity_only = run_deep(index, ["stationarity"])
    assert stationarity_only.diagnostics == []


def test_unknown_pass_name_raises_with_vocabulary() -> None:
    with pytest.raises(KeyError, match="rng-taint"):
        make_passes(["no-such-pass"])


def test_pass_names_are_the_documented_vocabulary() -> None:
    assert PASS_NAMES == ("rng-taint", "stationarity", "engine-parity")


# ----------------------------------------------------------------------
# Pinned JSON payload (the ``--deep --format json`` contract)
# ----------------------------------------------------------------------
EXPECTED_DEEP_JSON = """\
{
  "counts": {
    "suppressed": 0,
    "unsuppressed": 1
  },
  "deep": {
    "modules_indexed": 1,
    "passes": [
      "engine-parity",
      "rng-taint",
      "stationarity"
    ]
  },
  "diagnostics": [
    {
      "col": 11,
      "fix_hint": "thread a seeded Generator parameter through, or construct the stream locally via np.random.default_rng(derive_seed(...))",
      "line": 6,
      "message": "draw .random() on an unseeded Generator ('rng' comes from default_rng() with OS entropy)",
      "path": "core/leak.py",
      "rule": "REPRO-D101",
      "suppressed": false
    }
  ],
  "files_checked": 1,
  "rules": {},
  "version": 1
}"""


def test_deep_json_payload_is_pinned() -> None:
    index = _index(**{"repro.core.leak": LEAK})
    report = run_deep(index)
    payload = report.to_json(
        rules=(),
        extra={
            "deep": {
                "passes": sorted(PASS_NAMES),
                "modules_indexed": len(index.modules),
            }
        },
    )
    assert payload == EXPECTED_DEEP_JSON


def test_to_json_without_extra_is_unchanged() -> None:
    index = _index(**{"repro.core.leak": LEAK})
    report = run_deep(index)
    payload = json.loads(report.to_json())
    assert sorted(payload) == [
        "counts",
        "diagnostics",
        "files_checked",
        "rules",
        "version",
    ]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_deep_cli_runs_clean_over_the_package(
    capsys: pytest.CaptureFixture,
) -> None:
    code, out = run_lint(["--deep"], capsys)
    assert code == 0
    assert "0 diagnostic(s)" in out


def test_deep_json_includes_deep_section_and_rules(
    capsys: pytest.CaptureFixture,
) -> None:
    code, out = run_lint(["--deep", "--format", "json"], capsys)
    assert code == 0
    payload = json.loads(out)
    assert payload["deep"]["passes"] == sorted(PASS_NAMES)
    assert payload["deep"]["modules_indexed"] == payload["files_checked"]
    assert "REPRO-D101" in payload["rules"]
    assert "REPRO-D301" in payload["rules"]


def test_deep_pass_selection_via_cli(capsys: pytest.CaptureFixture) -> None:
    code, out = run_lint(
        ["--deep", "--pass", "stationarity", "--format", "json"], capsys
    )
    assert code == 0
    assert json.loads(out)["deep"]["passes"] == ["stationarity"]


def test_deep_rejects_incompatible_flags(
    capsys: pytest.CaptureFixture,
) -> None:
    with pytest.raises(SystemExit, match="whole package"):
        run_lint(["--deep", "somefile.py"], capsys)
    with pytest.raises(SystemExit, match="--changed"):
        run_lint(["--deep", "--changed"], capsys)
    with pytest.raises(SystemExit, match="--rule"):
        run_lint(["--deep", "--rule", "REPRO-F001"], capsys)
    with pytest.raises(SystemExit, match="--pass requires --deep"):
        run_lint(["--pass", "rng-taint"], capsys)
    with pytest.raises(SystemExit, match="unknown flow pass"):
        run_lint(["--deep", "--pass", "bogus"], capsys)


def test_deep_list_rules_includes_deep_pack(
    capsys: pytest.CaptureFixture,
) -> None:
    code, out = run_lint(["--deep", "--list-rules"], capsys)
    assert code == 0
    for rule_id in (
        "REPRO-D000",
        "REPRO-D100",
        "REPRO-D101",
        "REPRO-D102",
        "REPRO-D103",
        "REPRO-D201",
        "REPRO-D202",
        "REPRO-D203",
        "REPRO-D301",
        "REPRO-D302",
    ):
        assert rule_id in out
