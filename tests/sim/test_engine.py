"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationEngine, SimulationError


class TestScheduling:
    def test_starts_at_zero(self):
        engine = SimulationEngine()
        assert engine.now == 0.0

    def test_custom_start_time(self):
        engine = SimulationEngine(start_time=100.0)
        assert engine.now == 100.0

    def test_call_at_runs_at_time(self):
        engine = SimulationEngine()
        times = []
        engine.call_at(5.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [5.0]

    def test_call_after_relative(self):
        engine = SimulationEngine()
        engine.call_at(3.0, lambda: engine.call_after(2.0, lambda: seen.append(engine.now)))
        seen = []
        engine.run()
        assert seen == [5.0]

    def test_cannot_schedule_in_past(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.call_after(-1.0, lambda: None)

    def test_events_ordered_by_time(self):
        engine = SimulationEngine()
        order = []
        engine.call_at(3.0, lambda: order.append("c"))
        engine.call_at(1.0, lambda: order.append("a"))
        engine.call_at(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = SimulationEngine()
        order = []
        for label in "abcde":
            engine.call_at(1.0, lambda l=label: order.append(l))
        engine.run()
        assert order == list("abcde")

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for i in range(5):
            engine.call_at(float(i), lambda: None)
        engine.run()
        assert engine.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.call_at(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        engine = SimulationEngine()
        handle = engine.call_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        engine = SimulationEngine()
        engine.call_at(1.0, lambda: None)
        handle = engine.call_at(2.0, lambda: None)
        handle.cancel()
        assert engine.pending_events == 1

    def test_cancelled_event_does_not_advance_clock(self):
        engine = SimulationEngine()
        handle = engine.call_at(1.0, lambda: None)
        handle.cancel()
        engine.call_at(2.0, lambda: None)
        engine.step()
        assert engine.now == 2.0


class TestRunUntil:
    def test_clock_lands_exactly_on_end(self):
        engine = SimulationEngine()
        engine.call_at(1.0, lambda: None)
        engine.run_until(7.5)
        assert engine.now == 7.5

    def test_events_at_end_time_execute(self):
        engine = SimulationEngine()
        fired = []
        engine.call_at(5.0, lambda: fired.append(1))
        engine.run_until(5.0)
        assert fired == [1]

    def test_events_after_end_survive(self):
        engine = SimulationEngine()
        fired = []
        engine.call_at(10.0, lambda: fired.append(1))
        engine.run_until(5.0)
        assert fired == []
        engine.run_until(15.0)
        assert fired == [1]

    def test_run_until_past_rejected(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.run_until(5.0)

    def test_step_returns_false_when_empty(self):
        engine = SimulationEngine()
        assert engine.step() is False


class TestRecurring:
    def test_call_every_fires_repeatedly(self):
        engine = SimulationEngine()
        ticks = []
        engine.call_every(10.0, lambda: ticks.append(engine.now))
        engine.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_start_delay_controls_first_firing(self):
        engine = SimulationEngine()
        ticks = []
        engine.call_every(10.0, lambda: ticks.append(engine.now), start_delay=0.0)
        engine.run_until(25.0)
        assert ticks == [0.0, 10.0, 20.0]

    def test_cancel_stops_recurrence(self):
        engine = SimulationEngine()
        ticks = []
        handle = engine.call_every(10.0, lambda: ticks.append(engine.now))
        engine.call_at(25.0, handle.cancel)
        engine.run_until(100.0)
        assert ticks == [10.0, 20.0]

    def test_non_positive_interval_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.call_every(0.0, lambda: None)


class TestNestedScheduling:
    def test_callback_can_schedule_more_events(self):
        engine = SimulationEngine()
        seen = []

        def chain(depth):
            seen.append(engine.now)
            if depth > 0:
                engine.call_after(1.0, lambda: chain(depth - 1))

        engine.call_at(0.0, lambda: chain(3))
        engine.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_zero_delay_event_runs_same_timestamp(self):
        engine = SimulationEngine()
        seen = []
        engine.call_at(1.0, lambda: engine.call_after(0.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [1.0]


class TestPendingCounter:
    """pending_events is a live O(1) counter — every schedule/cancel/fire
    path must keep it exact (PR 2 replaced the O(n) heap walk)."""

    def test_starts_at_zero(self):
        assert SimulationEngine().pending_events == 0

    def test_counts_scheduled_events(self):
        engine = SimulationEngine()
        for i in range(5):
            engine.call_at(float(i), lambda: None)
        assert engine.pending_events == 5

    def test_firing_decrements(self):
        engine = SimulationEngine()
        engine.call_at(1.0, lambda: None)
        engine.call_at(2.0, lambda: None)
        engine.step()
        assert engine.pending_events == 1
        engine.run()
        assert engine.pending_events == 0

    def test_cancel_decrements_exactly_once(self):
        engine = SimulationEngine()
        handle = engine.call_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()  # idempotent: no double decrement
        assert engine.pending_events == 0
        engine.run()  # skipping the cancelled entry must not decrement again
        assert engine.pending_events == 0

    def test_cancel_after_fire_is_noop(self):
        engine = SimulationEngine()
        handle = engine.call_at(1.0, lambda: None)
        engine.run()
        assert engine.pending_events == 0
        handle.cancel()
        assert engine.pending_events == 0

    def test_run_until_leaves_future_events_pending(self):
        engine = SimulationEngine()
        engine.call_at(1.0, lambda: None)
        engine.call_at(10.0, lambda: None)
        engine.run_until(5.0)
        assert engine.pending_events == 1

    def test_nested_scheduling_tracked(self):
        engine = SimulationEngine()
        engine.call_at(1.0, lambda: engine.call_after(1.0, lambda: None))
        engine.run_until(1.0)
        assert engine.pending_events == 1

    def test_recurring_timer_keeps_one_pending(self):
        engine = SimulationEngine()
        engine.call_every(10.0, lambda: None)
        engine.run_until(35.0)
        assert engine.pending_events == 1  # the next queued tick

    def test_cancelled_recurring_timer_reaches_zero(self):
        engine = SimulationEngine()
        handle = engine.call_every(10.0, lambda: None)
        engine.call_at(25.0, handle.cancel)
        engine.run_until(100.0)
        assert engine.pending_events == 0

    def test_counter_matches_heap_scan(self):
        """Cross-check against the old O(n) definition on a mixed workload."""
        engine = SimulationEngine()
        handles = [engine.call_at(float(i), lambda: None) for i in range(20)]
        for handle in handles[::3]:
            handle.cancel()
        expected = sum(
            1 for e in engine._queue if not e.cancelled
        )
        assert engine.pending_events == expected
        engine.run_until(9.5)
        expected = sum(1 for e in engine._queue if not e.cancelled)
        assert engine.pending_events == expected
