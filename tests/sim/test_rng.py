"""Unit tests for named RNG streams."""

import numpy as np

from repro.sim import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "zone-a") == derive_seed(42, "zone-a")

    def test_different_names_differ(self):
        assert derive_seed(42, "zone-a") != derive_seed(42, "zone-b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "zone-a") != derive_seed(2, "zone-a")

    def test_similar_names_uncorrelated_draws(self):
        # Adjacent names must not produce correlated streams.
        a = np.random.default_rng(derive_seed(0, "zone-1")).random(2000)
        b = np.random.default_rng(derive_seed(0, "zone-2")).random(2000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1


class TestRngRegistry:
    def test_same_name_same_generator(self):
        registry = RngRegistry(0)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_are_independent_of_creation_order(self):
        r1 = RngRegistry(7)
        r2 = RngRegistry(7)
        # Consume from "a" first in r1 only; "b" must be unaffected.
        r1.stream("a").random(100)
        b1 = r1.stream("b").random(10)
        b2 = r2.stream("b").random(10)
        np.testing.assert_array_equal(b1, b2)

    def test_reproducible_across_instances(self):
        x = RngRegistry(3).stream("s").random(5)
        y = RngRegistry(3).stream("s").random(5)
        np.testing.assert_array_equal(x, y)

    def test_fork_independent(self):
        root = RngRegistry(3)
        child = root.fork("child")
        a = root.stream("s").random(100)
        b = child.stream("s").random(100)
        assert not np.array_equal(a, b)

    def test_fork_deterministic(self):
        a = RngRegistry(3).fork("c").stream("s").random(5)
        b = RngRegistry(3).fork("c").stream("s").random(5)
        np.testing.assert_array_equal(a, b)

    def test_root_seed_property(self):
        assert RngRegistry(11).root_seed == 11
