"""Unit tests for metric recorders."""

import math

import numpy as np
import pytest

from repro.sim import Counter, LatencyRecorder, TimeSeries, percentile


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_median_of_odd_list(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_matches_numpy(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0, 10, 50, 90, 99, 100):
            assert percentile(data, q) == pytest.approx(np.percentile(data, q))

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0.0

    def test_add_accumulates(self):
        counter = Counter("c")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)


class TestTimeSeries:
    def test_record_and_lookup(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        series.record(10.0, 3.0)
        assert series.value_at(5.0) == 1.0
        assert series.value_at(10.0) == 3.0
        assert series.value_at(100.0) == 3.0

    def test_lookup_before_first_sample_is_nan(self):
        series = TimeSeries("s")
        series.record(10.0, 1.0)
        assert math.isnan(series.value_at(5.0))

    def test_out_of_order_rejected(self):
        series = TimeSeries("s")
        series.record(10.0, 1.0)
        with pytest.raises(ValueError):
            series.record(5.0, 2.0)

    def test_same_timestamp_overwrites(self):
        series = TimeSeries("s")
        series.record(1.0, 1.0)
        series.record(1.0, 9.0)
        assert len(series) == 1
        assert series.value_at(1.0) == 9.0

    def test_integrate_step_function(self):
        series = TimeSeries("s")
        series.record(0.0, 2.0)
        series.record(10.0, 4.0)
        # 10s at 2 plus 10s at 4
        assert series.integrate(0.0, 20.0) == pytest.approx(60.0)

    def test_integrate_partial_window(self):
        series = TimeSeries("s")
        series.record(0.0, 2.0)
        series.record(10.0, 4.0)
        assert series.integrate(5.0, 15.0) == pytest.approx(2.0 * 5 + 4.0 * 5)

    def test_integrate_before_first_sample_is_zero(self):
        series = TimeSeries("s")
        series.record(10.0, 5.0)
        assert series.integrate(0.0, 10.0) == 0.0

    def test_time_weighted_mean(self):
        series = TimeSeries("s")
        series.record(0.0, 0.0)
        series.record(5.0, 10.0)
        assert series.time_weighted_mean(0.0, 10.0) == pytest.approx(5.0)

    def test_time_weighted_mean_zero_width_window(self):
        # A single sample queried at its own timestamp must not divide
        # by zero; it degenerates to the step-function value.
        series = TimeSeries("s")
        series.record(5.0, 3.0)
        assert series.time_weighted_mean(5.0, 5.0) == 3.0

    def test_time_weighted_mean_inverted_window_rejected(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        with pytest.raises(ValueError):
            series.time_weighted_mean(10.0, 5.0)

    def test_fraction_at_least(self):
        series = TimeSeries("s")
        series.record(0.0, 4.0)
        series.record(25.0, 2.0)
        series.record(75.0, 4.0)
        assert series.fraction_at_least(4.0, 0.0, 100.0) == pytest.approx(0.5)

    def test_fraction_counts_pre_sample_time_as_unavailable(self):
        series = TimeSeries("s")
        series.record(50.0, 4.0)
        assert series.fraction_at_least(1.0, 0.0, 100.0) == pytest.approx(0.5)

    def test_fraction_empty_series_is_zero(self):
        assert TimeSeries("s").fraction_at_least(1.0, 0.0, 10.0) == 0.0

    def test_empty_window_rejected(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        with pytest.raises(ValueError):
            series.fraction_at_least(1.0, 5.0, 5.0)


class TestLatencyRecorder:
    def test_empty_summary_is_nan_safe_and_falsy(self):
        summary = LatencyRecorder().summary()
        assert not summary
        assert summary.count == 0
        assert math.isnan(summary.mean)
        assert math.isnan(summary.p50)
        assert math.isnan(summary.p99)

    def test_nonempty_summary_is_truthy(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        assert recorder.summary()

    def test_summary_percentiles(self):
        recorder = LatencyRecorder()
        recorder.extend(float(i) for i in range(1, 101))
        summary = recorder.summary()
        assert summary.count == 100
        assert summary.p50 == pytest.approx(50.5)
        assert summary.p90 == pytest.approx(90.1)
        assert summary.p99 == pytest.approx(99.01)
        assert summary.mean == pytest.approx(50.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_samples_copy(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        samples = recorder.samples
        samples.append(2.0)
        assert len(recorder) == 1


class TestBoxPlotStats:
    def test_boxplot_percentiles(self):
        from repro.sim import BoxPlotStats

        recorder = LatencyRecorder()
        recorder.extend(float(i) for i in range(1, 101))
        box = recorder.boxplot()
        assert isinstance(box, BoxPlotStats)
        assert box.p10 <= box.p25 <= box.p50 <= box.p75 <= box.p90
        assert box.p50 == pytest.approx(50.5)
        assert box.count == 100

    def test_empty_boxplot_is_nan_safe_and_falsy(self):
        box = LatencyRecorder().boxplot()
        assert not box
        assert box.count == 0
        assert math.isnan(box.p50)

    def test_matches_fig9_format(self):
        """Fig. 9 box plots: 10/90 whiskers, 25/75 box, median, mean."""
        recorder = LatencyRecorder()
        recorder.extend([1.0, 2.0, 3.0, 4.0, 100.0])
        box = recorder.boxplot()
        assert box.mean == pytest.approx(22.0)
        assert box.p90 < 100.0  # whisker below the outlier
