"""Fig. 4: spot GPUs experience far more preemptions than spot CPUs.

The paper measures 16.7-90.4% availability for spot GPUs versus
95.6-99.9% for spot CPUs, and many more available->unavailable
transitions for GPUs.
"""

from conftest import print_header, print_rows, run_once


def transitions(trace, zone):
    up = trace.zone_row(zone) > 0
    return int((up[:-1] & ~up[1:]).sum())


def test_fig4_gpu_vs_cpu_obtainability(benchmark, trace_aws1, trace_cpu):
    def compute():
        rows = []
        for label, trace in (("spot GPU (p3.2xlarge)", trace_aws1),
                             ("spot CPU (c3-highcpu-176)", trace_cpu)):
            for zone in trace.zone_ids:
                rows.append(
                    [
                        label,
                        zone.split(":")[-1],
                        f"{trace.availability(zone):.1%}",
                        transitions(trace, zone),
                    ]
                )
        return rows

    rows = run_once(benchmark, compute)
    print_header("Fig. 4: spot GPU vs spot CPU availability")
    print_rows(["instance", "zone", "available", "drops"], rows)

    gpu_avail = [trace_aws1.availability(z) for z in trace_aws1.zone_ids]
    cpu_avail = [trace_cpu.availability(z) for z in trace_cpu.zone_ids]
    # Paper bands: CPUs 95.6-99.9%; GPUs far below.
    assert min(cpu_avail) >= 0.95
    assert max(gpu_avail) < min(cpu_avail)
    assert min(gpu_avail) >= 0.10  # GPUs are volatile but not dead

    # Preemption frequency: GPUs see many more drops per unit time.
    gpu_rate = sum(transitions(trace_aws1, z) for z in trace_aws1.zone_ids) / (
        trace_aws1.duration * len(trace_aws1.zone_ids)
    )
    cpu_rate = sum(transitions(trace_cpu, z) for z in trace_cpu.zone_ids) / (
        trace_cpu.duration * len(trace_cpu.zone_ids)
    )
    assert gpu_rate > 5 * cpu_rate
