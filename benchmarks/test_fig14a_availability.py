"""Fig. 14a: service availability across spot traces and policies.

Paper bands: Even Spread 27-63%, Round Robin 82-99%, SpotHedge 99-100%
(on-demand omitted — it trivially attains the target).
"""

import pytest
from conftest import print_header, print_rows, run_once

from repro.core import even_spread_policy, round_robin_policy, spothedge
from repro.experiments import ReplayConfig, TraceReplayer

POLICIES = [
    ("SpotHedge", spothedge),
    ("RoundRobin", round_robin_policy),
    ("EvenSpread", even_spread_policy),
]


@pytest.fixture(scope="module")
def results(trace_aws1, trace_aws2, trace_aws3, trace_gcp1):
    out = {}
    for trace in (trace_aws1, trace_aws2, trace_aws3, trace_gcp1):
        replayer = TraceReplayer(trace, ReplayConfig(n_tar=4, k=4.0))
        for name, factory in POLICIES:
            out[(trace.name, name)] = replayer.run(factory(trace.zone_ids))
    return out


def test_fig14a_availability(benchmark, results, trace_aws1, trace_aws2, trace_aws3, trace_gcp1):
    traces = [trace_aws1.name, trace_aws2.name, trace_aws3.name, trace_gcp1.name]

    def build_rows():
        rows = []
        for trace_name in traces:
            rows.append(
                [trace_name]
                + [f"{results[(trace_name, p)].availability:.1%}" for p, _ in POLICIES]
            )
        return rows

    rows = run_once(benchmark, build_rows)
    print_header("Fig. 14a: availability by trace and policy (N_Tar = 4)")
    print_rows(["trace"] + [p for p, _ in POLICIES], rows)

    for trace_name in traces:
        sky = results[(trace_name, "SpotHedge")].availability
        rr = results[(trace_name, "RoundRobin")].availability
        es = results[(trace_name, "EvenSpread")].availability
        # Ordering: SpotHedge >= Round Robin >= Even Spread.
        assert sky >= rr - 1e-9, trace_name
        assert rr >= es - 1e-9, trace_name
        # SpotHedge stays high-availability everywhere (paper 99-100%).
        assert sky >= 0.95, trace_name
        # Even Spread is bad everywhere (paper 27-63%).
        assert es <= 0.70, trace_name

    # Round Robin spans a wide band but beats Even Spread clearly on the
    # single-region traces where Even Spread's quota zones black out.
    assert results[("AWS 2", "RoundRobin")].availability > (
        results[("AWS 2", "EvenSpread")].availability + 0.2
    )
