"""Continuous batching under overload.

(a) With the offered load at ~3x the fixed fleet's capacity, the
batch-occupancy decode slowdown compounds queueing: P99 TTFT strictly
exceeds the fixed-rate (batch-independent) model's on the same trace,
workload, and seed.

(b) The QPS autoscaler sizes the fleet from arrival rate alone, so it
cannot see the capacity lost to batch contention; the SLO-aware mode
reacts to the TTFT/TPOT violations themselves and settles on a higher
N_Tar for the same workload.
"""

import numpy as np
from conftest import print_header, print_rows, run_once

from repro.cloud import SpotTrace
from repro.core import spothedge
from repro.serving import (
    DomainFilter,
    ModelProfile,
    ReplicaPolicyConfig,
    ResourceSpec,
    RetryPolicy,
    ServiceSpec,
    SkyService,
)
from repro.workloads import Request, Workload

ZONES = [
    "aws:us-west-2:us-west-2a",
    "aws:us-west-2:us-west-2b",
    "aws:us-west-2:us-west-2c",
]


def abundant_trace(hours=3):
    steps = int(hours * 60)
    return SpotTrace("overload", ZONES, 60.0, np.full((3, steps), 8))


def steady_workload(rate, start, end):
    requests = []
    t, i = start, 0
    while t < end:
        requests.append(Request(i, t, input_tokens=20, output_tokens=20))
        i += 1
        t += 1.0 / rate
    return Workload("steady", requests)


def profile(slope):
    return ModelProfile(
        "m", overhead=1.0, prefill_per_token=0.0, decode_per_token=0.1,
        max_concurrency=2, decode_batch_slope=slope,
    )


def run_fixed_fleet(slope):
    """Two pinned replicas, ~3x overloaded, bounded queues, backoff."""
    spec = ServiceSpec(
        name="overload-fixed",
        replica_policy=ReplicaPolicyConfig(fixed_target=2, num_overprovision=0),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=40.0,
        max_queue_per_replica=2,
    )
    service = SkyService(
        spec,
        spothedge(ZONES, num_overprovision=0),
        abundant_trace(hours=1),
        profile=profile(slope),
        seed=7,
        retry_policy=RetryPolicy(base=0.5, multiplier=2.0, cap=8.0, jitter=0.1),
    )
    report = service.run(steady_workload(4.0, 120.0, 2400.0), 3000.0)
    return service, report


def run_autoscaled(mode):
    """Same overload, autoscaled fleet: Q_Tar assumes contention-free
    replicas, so the QPS candidate undersizes the batched fleet.

    Queues are unbounded and there is no retry policy here, so every
    request routes exactly once and R_t reflects the true offered load
    — isolating the autoscaling-signal difference (retry storms would
    otherwise inflate R_t and let the QPS mode react indirectly)."""
    slo = dict(
        autoscale_mode="slo",
        ttft_slo=2.0,
        tpot_slo=0.3,
        slo_violation_threshold=0.1,
        slo_window=120.0,
    ) if mode == "slo" else {}
    spec = ServiceSpec(
        name=f"overload-{mode}",
        replica_policy=ReplicaPolicyConfig(
            target_qps_per_replica=1.0,
            min_replicas=1,
            max_replicas=12,
            num_overprovision=0,
            upscale_delay=120.0,
            downscale_delay=600.0,
            **slo,
        ),
        resources=ResourceSpec(
            accelerator="V100",
            any_of=(DomainFilter(cloud="aws", region="us-west-2"),),
        ),
        request_timeout=60.0,
    )
    service = SkyService(
        spec,
        spothedge(ZONES, num_overprovision=0),
        abundant_trace(hours=3),
        profile=profile(0.3),
        seed=7,
    )
    report = service.run(steady_workload(3.0, 120.0, 3000.0), 3600.0)
    peak = max(
        service.controller.n_tar_series.value_at(t)
        for t in np.linspace(300.0, 3000.0, 100)
    )
    return peak, report


def test_overload_batched_ttft_exceeds_batch1(benchmark):
    def compute():
        _, batched = run_fixed_fleet(0.3)
        _, fixed = run_fixed_fleet(0.0)
        return batched, fixed

    batched, fixed = run_once(benchmark, compute)
    print_header("Overload (3x capacity): batched vs fixed-rate decode model")
    print_rows(
        ["model", "P50 TTFT", "P99 TTFT", "completed", "failed"],
        [
            ["fixed-rate (batch=1)", f"{fixed.ttft.p50:.2f}s",
             f"{fixed.ttft.p99:.2f}s", fixed.completed, fixed.failed],
            ["batched (slope 0.3)", f"{batched.ttft.p50:.2f}s",
             f"{batched.ttft.p99:.2f}s", batched.completed, batched.failed],
        ],
    )
    # Acceptance: co-residency slowdown compounds queueing delay.
    assert batched.ttft.p99 > fixed.ttft.p99
    assert batched.completed <= fixed.completed


def test_slo_mode_outsizes_qps_mode(benchmark):
    def compute():
        qps_peak, qps_report = run_autoscaled("qps")
        slo_peak, slo_report = run_autoscaled("slo")
        return qps_peak, qps_report, slo_peak, slo_report

    qps_peak, qps_report, slo_peak, slo_report = run_once(benchmark, compute)
    print_header("SLO-aware vs QPS-only autoscaling on a batched fleet")
    print_rows(
        ["mode", "peak N_Tar", "P99 TTFT", "failure rate"],
        [
            ["qps", int(qps_peak), f"{qps_report.ttft.p99:.2f}s",
             f"{qps_report.failure_rate:.3f}"],
            ["slo", int(slo_peak), f"{slo_report.ttft.p99:.2f}s",
             f"{slo_report.failure_rate:.3f}"],
        ],
    )
    # Acceptance: violation pressure raises N_Tar above the QPS
    # candidate, and the bigger fleet serves the load better.
    assert slo_peak > qps_peak
    assert slo_report.failure_rate <= qps_report.failure_rate
