"""Shared fixtures and helpers for the per-figure benchmarks.

Every benchmark module regenerates one table or figure from the paper's
evaluation: it runs the experiment once (via ``benchmark.pedantic`` so
pytest-benchmark records the wall time without re-running a multi-minute
simulation dozens of times), prints the rows/series the paper reports,
and asserts the qualitative *shape* — who wins and by roughly what
factor.  Absolute numbers differ from the paper (our substrate is a
simulator, not AWS), and ``EXPERIMENTS.md`` records paper-vs-measured
for every entry.
"""

from __future__ import annotations

import pytest

from repro.cloud import HOUR, aws1, aws2, aws3, cpu_trace, gcp1
from repro.workloads import arena_workload

#: Duration of the end-to-end comparison runs (§5.1 ran ~22 h total
#: across all setups; 4 simulated hours per system keeps the full bench
#: suite under a few minutes while spanning many preemption cycles).
E2E_DURATION = 4 * HOUR


def fig9_workload(seed: int = 11):
    """The Arena-replay workload used for the Fig. 9/10/12 experiments.

    Calibrated so that N_Tar = 4 Llama-2-70B replicas carry the load
    with headroom while a single surviving replica is overloaded —
    matching the regime in which the paper's failure rates separate.
    Output lengths are capped so compute alone cannot exceed the 100 s
    timeout.
    """
    return arena_workload(
        E2E_DURATION,
        base_rate=1.0,
        diurnal_amplitude=0.4,
        burst_multiplier=1.8,
        burst_mean_duration=180.0,
        max_output_tokens=800,
        seed=seed,
    )


def fig13_workload(seed: int = 12):
    """Arena workload for the Fig. 13 SpotServe experiment (OPT-6.7B,
    20 s timeout): shorter outputs, higher rate (smaller model)."""
    return arena_workload(
        E2E_DURATION,
        base_rate=3.5,
        diurnal_amplitude=0.4,
        burst_multiplier=1.8,
        burst_mean_duration=180.0,
        output_median=120.0,
        output_sigma=0.9,
        max_output_tokens=500,
        seed=seed,
    )


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def trace_aws1():
    return aws1()


@pytest.fixture(scope="session")
def trace_aws2():
    return aws2()


@pytest.fixture(scope="session")
def trace_aws3():
    return aws3()


@pytest.fixture(scope="session")
def trace_gcp1():
    return gcp1()


@pytest.fixture(scope="session")
def trace_cpu():
    return cpu_trace()


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def print_rows(headers: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
