"""Ablation: locality-aware load balancing (§6, "Advanced load
balancing policy").

The paper sketches routing requests to replicas in the client's region
unless they are overloaded.  This bench quantifies the effect on the
network component of latency (the TTFT-relevant part): with replicas in
three regions and a client in us-west-2, the locality balancer serves
most requests locally, while round-robin spreads them evenly and eats
the WAN RTT on two thirds of requests.
"""

import numpy as np
import pytest
from conftest import print_header, print_rows, run_once

from repro.cloud import default_network
from repro.serving import (
    LocalityAwareBalancer,
    ModelProfile,
    Replica,
    RoundRobinBalancer,
)
from repro.serving.replica import ReplicaState
from repro.sim import SimulationEngine
from repro.workloads import Request

REGIONS = [
    "aws:us-west-2:us-west-2a",
    "aws:us-east-2:us-east-2a",
    "aws:eu-central-1:eu-central-1a",
]
CLIENT_REGION = "aws:us-west-2"
N_REQUESTS = 3000


def simulate_balancer(balancer, service_time=4.0, arrival_gap=0.5):
    """Route a request stream over three one-per-region replicas and
    return (mean added RTT, fraction served locally)."""
    engine = SimulationEngine()
    network = default_network()
    profile = ModelProfile("m", overhead=service_time, prefill_per_token=0.0,
                           decode_per_token=0.0, max_concurrency=8)
    replicas = []
    for zone in REGIONS:
        replica = Replica(engine, profile, zone_id=zone, spot=True)
        replica.state = ReplicaState.READY
        replicas.append(replica)

    rtts = []
    local = 0

    def submit(i):
        request = Request(i, engine.now, 20, 40)
        chosen = balancer.pick(replicas, request)
        rtts.append(network.rtt(CLIENT_REGION, chosen.region_id))
        nonlocal local
        if chosen.region_id == CLIENT_REGION:
            local += 1
        chosen.handle(request, lambda r: None, lambda r: None)

    for i in range(N_REQUESTS):
        engine.call_at(i * arrival_gap, lambda i=i: submit(i))
    engine.run()
    return float(np.mean(rtts)), local / N_REQUESTS


@pytest.fixture(scope="module")
def results():
    network = default_network()
    return {
        "locality": simulate_balancer(
            LocalityAwareBalancer(CLIENT_REGION, network, overload_threshold=8)
        ),
        "round_robin": simulate_balancer(RoundRobinBalancer()),
    }


def test_ablation_locality_balancer(benchmark, results):
    rows = run_once(
        benchmark,
        lambda: [
            [name, f"{rtt * 1000:.1f}ms", f"{frac:.1%}"]
            for name, (rtt, frac) in results.items()
        ],
    )
    print_header("Ablation: locality-aware LB (client in us-west-2)")
    print_rows(["balancer", "mean added RTT", "served locally"], rows)

    loc_rtt, loc_frac = results["locality"]
    rr_rtt, rr_frac = results["round_robin"]
    # Locality routing keeps most requests in the client's region and
    # cuts the mean WAN penalty by a large factor.
    assert loc_frac > 0.7
    assert rr_frac == pytest.approx(1 / 3, abs=0.02)
    assert loc_rtt < rr_rtt / 3


def test_locality_spills_on_overload(benchmark):
    """Under heavy local load the balancer sends the excess to a remote
    region — §6's "only direct requests to a remote zone if local
    replicas are overloaded"."""
    def compute():
        network = default_network()
        balancer = LocalityAwareBalancer(CLIENT_REGION, network, overload_threshold=4)
        # Arrivals much faster than service: local replica saturates.
        return simulate_balancer(balancer, service_time=30.0, arrival_gap=0.05)

    rtt, local_fraction = run_once(benchmark, compute)
    assert local_fraction < 0.7  # meaningful spillover happened
    assert local_fraction > 0.0
