"""Fig. 15: service latency across four spot traces and three workloads.

Paper shapes: SpotHedge reduces mean latency by 1.1-3.0x vs Even Spread
and 1.0-1.8x vs Round Robin, staying within ~5% of the Omniscient
optimum.
"""

import numpy as np
import pytest
from conftest import print_header, print_rows, run_once

from repro.cloud import DAY
from repro.core import even_spread_policy, round_robin_policy, spothedge
from repro.experiments import ReplayConfig, TraceReplayer, estimate_latency
from repro.workloads import arena_workload, maf_workload, poisson_workload

POLICIES = [
    ("SpotHedge", spothedge),
    ("RoundRobin", round_robin_policy),
    ("EvenSpread", even_spread_policy),
]


def make_workloads(duration):
    return {
        "Poisson": poisson_workload(duration, rate=0.15, seed=15),
        "Arena": arena_workload(duration, base_rate=0.15, seed=15),
        "MAF": maf_workload(duration, base_rate=0.12, seed=15),
    }


@pytest.fixture(scope="module")
def latency_table(trace_aws1, trace_aws2, trace_aws3, trace_gcp1):
    # Use 3-day windows so the latency estimate covers every trace at
    # identical length (AWS 3 is two months long).
    traces = [
        trace_aws1.window(0, 3 * DAY, name="AWS 1"),
        trace_aws2.window(0, 3 * DAY, name="AWS 2"),
        trace_aws3.window(0, 3 * DAY, name="AWS 3"),
        trace_gcp1.window(0, 3 * DAY, name="GCP 1"),
    ]
    table = {}
    for trace in traces:
        workloads = make_workloads(trace.duration)
        for policy_name, factory in POLICIES:
            replayer = TraceReplayer(trace, ReplayConfig(n_tar=4, k=4.0))
            result = replayer.run(factory(trace.zone_ids))
            for workload_name, workload in workloads.items():
                latencies = estimate_latency(
                    result, workload, service_time=8.0, timeout=100.0
                )
                table[(trace.name, workload_name, policy_name)] = float(
                    np.mean(latencies)
                )
    return table


def test_fig15_batched_recalibration(benchmark, trace_aws1):
    """Fig. 15 recalibrated for continuous batching: at a typical
    occupancy of 4 co-resident streams (slope 0.08/stream) the
    effective service time grows by ``batch_factor(4) = 1.24``; the
    absolute latencies shift up by at most that factor while the
    policy ordering — the figure's actual claim — is unchanged."""
    from repro.serving import vicuna_13b_profile

    factor = vicuna_13b_profile(decode_batch_slope=0.08).batch_factor(4)
    trace = trace_aws1.window(0, 3 * DAY, name="AWS 1")
    workload = poisson_workload(trace.duration, rate=0.15, seed=15)

    def compute():
        table = {}
        for policy_name, factory in POLICIES:
            replayer = TraceReplayer(trace, ReplayConfig(n_tar=4, k=4.0))
            result = replayer.run(factory(trace.zone_ids))
            for label, service_time in (
                ("batch=1", 8.0), ("batched", 8.0 * factor)
            ):
                latencies = estimate_latency(
                    result, workload, service_time=service_time, timeout=100.0
                )
                table[(policy_name, label)] = float(np.mean(latencies))
        return table

    table = run_once(benchmark, compute)
    print_header(
        f"Fig. 15 (recalibrated): AWS 1 / Poisson, occupancy-4 factor {factor:.2f}"
    )
    print_rows(
        ["policy", "batch=1 mean (s)", "batched mean (s)", "shift"],
        [
            [p, f"{table[(p, 'batch=1')]:.2f}", f"{table[(p, 'batched')]:.2f}",
             f"{table[(p, 'batched')] / table[(p, 'batch=1')]:.2f}x"]
            for p, _ in POLICIES
        ],
    )
    for policy_name, _ in POLICIES:
        base = table[(policy_name, "batch=1")]
        batched = table[(policy_name, "batched")]
        # Batching slows every policy, but never past the occupancy
        # factor (queueing/downtime components don't scale with it).
        assert base < batched <= base * factor * 1.001
    # The figure's ordering claim survives recalibration.
    assert table[("SpotHedge", "batched")] <= table[("EvenSpread", "batched")] * 1.05
    assert table[("SpotHedge", "batched")] <= table[("RoundRobin", "batched")] * 1.05


def test_fig15_service_latency(benchmark, latency_table):
    table = run_once(benchmark, lambda: latency_table)

    traces = ["AWS 1", "AWS 2", "AWS 3", "GCP 1"]
    workloads = ["Poisson", "Arena", "MAF"]
    print_header("Fig. 15: mean service latency (s) by trace x workload")
    rows = []
    for trace in traces:
        for workload in workloads:
            rows.append(
                [trace, workload]
                + [f"{table[(trace, workload, p)]:.2f}" for p, _ in POLICIES]
            )
    print_rows(["trace", "workload"] + [p for p, _ in POLICIES], rows)

    improvements_es = []
    improvements_rr = []
    for trace in traces:
        for workload in workloads:
            sky = table[(trace, workload, "SpotHedge")]
            es = table[(trace, workload, "EvenSpread")]
            rr = table[(trace, workload, "RoundRobin")]
            # SpotHedge never loses to either placement baseline.
            assert sky <= es * 1.05, (trace, workload)
            assert sky <= rr * 1.05, (trace, workload)
            improvements_es.append(es / sky)
            improvements_rr.append(rr / sky)

    # Aggregate factors in the paper's reported bands (1.1-3.0x vs Even
    # Spread, 1.0-1.8x vs Round Robin).
    assert np.mean(improvements_es) >= 1.1
    assert max(improvements_es) >= 1.5
    assert np.mean(improvements_rr) >= 1.0
