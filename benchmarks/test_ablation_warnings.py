"""Ablation: best-effort preemption warnings (§2.3, §4).

The paper argues warnings cannot solve spot serving by themselves
(183 s cold start > 120 s notice) but SkyServe still uses them to start
replacements early.  This bench runs SpotHedge with and without a 120 s
warning on the volatile scenario and quantifies both claims: warnings
reduce failures/downtime, and substantial failures remain compared to
an always-on deployment.
"""

import pytest
from conftest import E2E_DURATION, fig9_workload, print_header, print_rows, run_once

from repro.cloud import CloudConfig
from repro.core import spothedge
from repro.experiments import e2e_trace, spot_zone_costs
from repro.experiments.endtoend import SKYSERVE_REGIONS
from repro.serving import (
    DomainFilter,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
    SkyService,
    llama2_70b_profile,
)


def run_with_warning(warning: float):
    trace = e2e_trace("volatile", duration=E2E_DURATION, seed=6)
    zones = list(trace.zone_ids)
    policy = spothedge(zones, zone_costs=spot_zone_costs(zones, "A10G"))
    spec = ServiceSpec(
        name="warn-ablation",
        replica_policy=ReplicaPolicyConfig(fixed_target=4),
        resources=ResourceSpec(
            accelerator="A10G",
            any_of=tuple(
                DomainFilter(cloud=r.split(":")[0], region=r.split(":")[1])
                for r in SKYSERVE_REGIONS
            ),
        ),
        request_timeout=100.0,
    )
    service = SkyService(
        spec,
        policy,
        trace,
        profile=llama2_70b_profile(),
        cloud_config=CloudConfig(preempt_warning=warning),
        seed=6,
    )
    return service.run(fig9_workload(), E2E_DURATION)


@pytest.fixture(scope="module")
def reports():
    return {
        "no warning": run_with_warning(0.0),
        "120s warning": run_with_warning(120.0),
    }


def test_ablation_preempt_warnings(benchmark, reports):
    rows = run_once(
        benchmark,
        lambda: [
            [
                name,
                f"{r.failure_rate:.2%}",
                f"{r.availability:.1%}",
                r.preemptions,
            ]
            for name, r in reports.items()
        ],
    )
    print_header("Ablation: preemption warnings (SpotHedge, Spot Volatile)")
    print_rows(["variant", "fail", "availability", "preemptions"], rows)

    without = reports["no warning"]
    with_warn = reports["120s warning"]
    # Warnings help: fewer failures and at least equal availability.
    assert with_warn.failure_rate <= without.failure_rate + 1e-9
    assert with_warn.availability >= without.availability - 0.01
    # But they are not a silver bullet (§2.3): the warned deployment
    # still sees preemptions and nonzero failures.
    assert with_warn.preemptions > 0
