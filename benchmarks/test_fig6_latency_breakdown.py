"""Fig. 6: request processing dominates end-to-end latency.

(a) the latency breakdown of a Vicuna-13B request (20 input / 44 output
tokens): queueing/processing is seconds, network is milliseconds.
(b) inter-region RTTs: ~100 ms US<->EU, far below processing time.
"""

from conftest import print_header, print_rows, run_once

from repro.cloud import default_network
from repro.serving import vicuna_13b_profile
from repro.workloads import Request

REGIONS = ["us-east-2", "us-west-2", "eu-central-1", "us-central1", "europe-west4"]


def test_fig6a_latency_breakdown(benchmark):
    profile = vicuna_13b_profile()
    request = Request(0, 0.0, input_tokens=20, output_tokens=44)
    network = default_network()

    def compute():
        processing = profile.processing_time(request)
        ttft = profile.time_to_first_token(request)
        local_rtt = network.rtt("us-west-2", "us-west-2")
        remote_rtt = network.rtt("us-west-2", "eu-central-1")
        return processing, ttft, local_rtt, remote_rtt

    processing, ttft, local_rtt, remote_rtt = run_once(benchmark, compute)
    print_header("Fig. 6a: Vicuna-13B request latency breakdown (20 in / 44 out)")
    print_rows(
        ["component", "seconds"],
        [
            ["prefill (TTFT)", f"{ttft:.3f}"],
            ["decode + overhead", f"{processing - ttft:.3f}"],
            ["total processing", f"{processing:.3f}"],
            ["network RTT (same region)", f"{local_rtt:.3f}"],
            ["network RTT (US<->EU)", f"{remote_rtt:.3f}"],
        ],
    )
    # The §3.1 argument: processing is seconds, network is milliseconds.
    assert processing >= 1.0
    assert remote_rtt <= 0.15
    assert processing > 10 * remote_rtt


def test_fig6b_interregion_rtts(benchmark):
    network = default_network()

    def compute():
        rows = []
        for a in REGIONS:
            rows.append([a] + [f"{network.rtt(a, b) * 1000:.0f}ms" for b in REGIONS])
        return rows

    rows = run_once(benchmark, compute)
    print_header("Fig. 6b: round-trip latency between regions")
    print_rows(["from \\ to"] + REGIONS, rows)

    # Diagonal fast, US<->EU near 100 ms, symmetry.
    for region in REGIONS:
        assert network.rtt(region, region) < 0.01
    assert 0.05 <= network.rtt("us-east-2", "eu-central-1") <= 0.15
    for a in REGIONS:
        for b in REGIONS:
            assert network.rtt(a, b) == network.rtt(b, a)
