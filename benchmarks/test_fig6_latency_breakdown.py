"""Fig. 6: request processing dominates end-to-end latency.

(a) the latency breakdown of a Vicuna-13B request (20 input / 44 output
tokens): queueing/processing is seconds, network is milliseconds.
(b) inter-region RTTs: ~100 ms US<->EU, far below processing time.
"""

from conftest import print_header, print_rows, run_once

from repro.cloud import default_network
from repro.serving import vicuna_13b_profile
from repro.workloads import Request

REGIONS = ["us-east-2", "us-west-2", "eu-central-1", "us-central1", "europe-west4"]


def test_fig6a_latency_breakdown(benchmark):
    profile = vicuna_13b_profile()
    request = Request(0, 0.0, input_tokens=20, output_tokens=44)
    network = default_network()

    def compute():
        processing = profile.processing_time(request)
        ttft = profile.time_to_first_token(request)
        local_rtt = network.rtt("us-west-2", "us-west-2")
        remote_rtt = network.rtt("us-west-2", "eu-central-1")
        return processing, ttft, local_rtt, remote_rtt

    processing, ttft, local_rtt, remote_rtt = run_once(benchmark, compute)
    print_header("Fig. 6a: Vicuna-13B request latency breakdown (20 in / 44 out)")
    print_rows(
        ["component", "seconds"],
        [
            ["prefill (TTFT)", f"{ttft:.3f}"],
            ["decode + overhead", f"{processing - ttft:.3f}"],
            ["total processing", f"{processing:.3f}"],
            ["network RTT (same region)", f"{local_rtt:.3f}"],
            ["network RTT (US<->EU)", f"{remote_rtt:.3f}"],
        ],
    )
    # The §3.1 argument: processing is seconds, network is milliseconds.
    assert processing >= 1.0
    assert remote_rtt <= 0.15
    assert processing > 10 * remote_rtt


def test_fig6c_batched_decode_slowdown(benchmark):
    """Companion table: per-request decode time at rising continuous-
    batching occupancy (linear contention model, slope 0.08/stream).
    Occupancy 1 is exactly the fixed-rate model of Fig. 6a."""
    profile = vicuna_13b_profile(decode_batch_slope=0.08)
    request = Request(0, 0.0, input_tokens=20, output_tokens=44)

    def compute():
        ttft = profile.time_to_first_token(request)
        decode = profile.processing_time(request) - ttft
        return [
            [batch, profile.batch_factor(batch),
             decode * profile.batch_factor(batch)]
            for batch in (1, 2, 4, 8)
        ]

    rows = run_once(benchmark, compute)
    print_header("Fig. 6c: decode time vs batch occupancy (Vicuna-13B)")
    print_rows(
        ["batch", "decode factor", "decode seconds"],
        [[b, f"{f:.2f}", f"{s:.3f}"] for b, f, s in rows],
    )
    assert rows[0][1] == 1.0  # occupancy 1 is exactly the Fig. 6a model
    factors = [f for _, f, _ in rows]
    assert factors == sorted(factors) and factors[-1] > 1.0


def test_fig6b_interregion_rtts(benchmark):
    network = default_network()

    def compute():
        rows = []
        for a in REGIONS:
            rows.append([a] + [f"{network.rtt(a, b) * 1000:.0f}ms" for b in REGIONS])
        return rows

    rows = run_once(benchmark, compute)
    print_header("Fig. 6b: round-trip latency between regions")
    print_rows(["from \\ to"] + REGIONS, rows)

    # Diagonal fast, US<->EU near 100 ms, symmetry.
    for region in REGIONS:
        assert network.rtt(region, region) < 0.01
    assert 0.05 <= network.rtt("us-east-2", "eu-central-1") <= 0.15
    for a in REGIONS:
        for b in REGIONS:
            assert network.rtt(a, b) == network.rtt(b, a)
