"""Fig. 3: correlated spot preemptions within a region, independence
across regions.

(a)/(b): preemption co-occurrence on the 2-week V100 trace (AWS 1 is
single-region; cross-region pairs come from AWS 3).  (c): the full
pairwise Pearson matrix over the 2-month, multi-region trace, where the
paper bolds intra-region correlations >= 0.3 and finds near-zero
inter-region correlation.
"""

from conftest import print_header, print_rows, run_once

from repro.analysis import preemption_correlation


def test_fig3c_correlation_matrix(benchmark, trace_aws3):
    matrix = run_once(benchmark, lambda: preemption_correlation(trace_aws3))

    print_header("Fig. 3c: Pearson correlation of preemption events (AWS 3)")
    short = [z.split(":")[-1] for z in matrix.zone_ids]
    rows = []
    for i, name in enumerate(short):
        rows.append([name] + [f"{matrix.correlation[i, j]:+.2f}" for j in range(len(short))])
    print_rows([""] + short, rows)
    print(
        f"mean intra-region r = {matrix.mean_intra_region():.3f}, "
        f"mean inter-region r = {matrix.mean_inter_region():.3f}"
    )

    # Paper shape: intra-region pairs correlate (bolded at >= 0.3),
    # inter-region pairs do not.
    assert matrix.mean_intra_region() >= 0.25
    assert abs(matrix.mean_inter_region()) <= 0.10
    assert matrix.mean_intra_region() > matrix.mean_inter_region() + 0.2
    # A majority of intra-region pairs clear the paper's 0.3 bolding bar.
    strong = [r for r in matrix.intra_region_pairs if r >= 0.3]
    assert len(strong) >= len(matrix.intra_region_pairs) // 2


def test_fig3ab_simultaneous_preemptions(benchmark, trace_aws1, trace_aws3):
    """Fig. 3a/b: same-region zones lose capacity together far more often
    than different-region zones."""

    def co_occurrence(trace, zone_a, zone_b):
        a = trace.preemption_indicator(zone_a)
        b = trace.preemption_indicator(zone_b)
        window = 5  # within 5 minutes (§2.2's follow-on preemption window)
        n = len(a) // window
        aw = a[: n * window].reshape(n, window).max(axis=1)
        bw = b[: n * window].reshape(n, window).max(axis=1)
        if aw.sum() == 0:
            return 0.0
        return float((aw & bw).sum() / aw.sum())

    def compute():
        intra = co_occurrence(trace_aws1, trace_aws1.zone_ids[0], trace_aws1.zone_ids[1])
        # Cross-region pair from the multi-region trace.
        east = next(z for z in trace_aws3.zone_ids if "us-east-1" in z)
        west = next(z for z in trace_aws3.zone_ids if "us-west-2" in z)
        inter = co_occurrence(trace_aws3, east, west)
        return intra, inter

    intra, inter = run_once(benchmark, compute)
    print_header("Fig. 3a/b: co-occurring preemptions (same 5-minute window)")
    print_rows(
        ["pair", "P(other zone also preempts)"],
        [["same region", f"{intra:.1%}"], ["different regions", f"{inter:.1%}"]],
    )
    assert intra > inter
    assert intra >= 0.15  # §2.2: follow-on preemptions are the norm


def test_follow_on_preemption_statistics(benchmark, trace_aws2, trace_gcp1):
    """§2.2's quoted statistics: from the first preemption, 83-97% of
    the time another follows within 5 minutes (AWS, instance level);
    34-95% within 150 s in the same zone (GCP)."""
    from repro.analysis import follow_on_preemption_probability

    def compute():
        aws = follow_on_preemption_probability(
            trace_aws2, window=300.0, scope="region", instance_level=True
        )
        gcp = follow_on_preemption_probability(
            trace_gcp1, window=150.0, scope="zone", instance_level=True
        )
        return aws, gcp

    aws, gcp = run_once(benchmark, compute)
    print_header("SS2.2: follow-on preemption probability")
    rows = [
        [z.split(":")[-1], "AWS 2 / region / 5min", f"{p:.1%}"]
        for z, p in aws.items()
    ] + [
        [z.split(":")[-1], "GCP 1 / zone / 150s", f"{p:.1%}"]
        for z, p in gcp.items()
    ]
    print_rows(["zone", "setting", "P(follow-on)"], rows)

    aws_values = [v for v in aws.values() if v == v]
    gcp_values = [v for v in gcp.values() if v == v]
    # Paper bands: 83-97% (AWS) and 34-95% (GCP).
    assert min(aws_values) >= 0.75
    assert all(0.34 <= v <= 0.95 for v in gcp_values)
