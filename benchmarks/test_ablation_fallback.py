"""Ablation: Dynamic Fallback versus static on-demand pools.

§2.4's argument quantified: a static pool must choose between cost
(always-on on-demand replicas it rarely needs) and availability (no
fallback when spot vanishes).  Dynamic Fallback gets both: availability
comparable to a large static pool at cost comparable to a small one.
"""

import pytest
from conftest import print_header, print_rows, run_once

from repro.core import DynamicSpotPlacer, MixturePolicy, spothedge
from repro.experiments import ReplayConfig, TraceReplayer


def static_pool(zones, base_od):
    return MixturePolicy(
        DynamicSpotPlacer(zones),
        num_overprovision=2,
        dynamic_ondemand_fallback=False,
        base_ondemand_replicas=base_od,
        name=f"StaticOD{base_od}",
    )


@pytest.fixture(scope="module")
def results(trace_aws2):
    out = {}
    replayer = lambda: TraceReplayer(trace_aws2, ReplayConfig(n_tar=4, k=4.0))
    out["Dynamic Fallback"] = replayer().run(spothedge(trace_aws2.zone_ids))
    for base_od in (0, 1, 2, 4):
        out[f"static OD={base_od}"] = replayer().run(
            static_pool(trace_aws2.zone_ids, base_od)
        )
    return out


def test_ablation_dynamic_fallback(benchmark, results):
    rows = run_once(
        benchmark,
        lambda: [
            [name, f"{r.availability:.1%}", f"{r.relative_cost:.1%}"]
            for name, r in results.items()
        ],
    )
    print_header("Ablation: Dynamic Fallback vs static on-demand pools (AWS 2)")
    print_rows(["policy", "availability", "cost vs OD"], rows)

    dynamic = results["Dynamic Fallback"]
    no_pool = results["static OD=0"]
    full_pool = results["static OD=4"]

    # Without any on-demand, availability collapses on this trace
    # (AWS 2 has region-wide spot blackouts ~1/3 of the time).
    assert no_pool.availability < 0.75
    assert dynamic.availability > no_pool.availability + 0.2

    # A full static pool matches dynamic availability...
    assert full_pool.availability >= dynamic.availability - 0.02
    # ...but costs strictly more: it pays for 4 on-demand replicas even
    # while spot is healthy (§2.4's 1.56x observation).
    assert full_pool.relative_cost > dynamic.relative_cost * 1.15

    # Small static pools are cheaper but sacrifice availability
    # relative to Dynamic Fallback.
    one = results["static OD=1"]
    assert one.availability < dynamic.availability
