"""Ablation: cost-aware placement (Alg. 1's MIN-COST).

SkyServe's controller polls per-zone prices (§4) and SELECT-NEXT-ZONE
prefers cheaper zones.  With a cross-continent deployment (US zones at
the base price, EU zones ~10-30% above — Table 1 shows even larger
cross-cloud spreads), a cost-aware Dynamic Placer keeps the fleet in
cheap zones whenever capacity allows, while a cost-blind one fills
zones indifferently and pays the premium.

Measured finding worth recording: because SELECT-NEXT-ZONE prefers
*unused* zones first (failure diversity beats price), the price signal
only steers the surplus replicas beyond one-per-zone — so the saving is
a few percent at a ~30% regional spread, not the full spread.  Cost
awareness matters most when fleets are larger than the zone set.
"""

import pytest
from conftest import print_header, print_rows, run_once

from repro.cloud import HOUR, TraceZoneSpec, make_correlated_trace
from repro.core import DynamicSpotPlacer, MixturePolicy
from repro.experiments import ReplayConfig, TraceReplayer

# EU zones listed first so a cost-blind placer gravitates to them.
EU_ZONES = ["aws:eu-central-1:eu-central-1a", "aws:eu-central-1:eu-central-1b"]
US_ZONES = [
    "aws:us-east-1:us-east-1a",
    "aws:us-east-1:us-east-1b",
    "aws:us-east-2:us-east-2a",
]
PRICES = {z: 1.30 for z in EU_ZONES} | {z: 1.00 for z in US_ZONES}


def build_trace():
    specs = [
        TraceZoneSpec(z, mean_up=12 * HOUR, mean_down=1 * HOUR, capacity_up=6)
        for z in EU_ZONES + US_ZONES
    ]
    return make_correlated_trace(
        "cost-aware",
        specs,
        duration=7 * 24 * HOUR,
        region_shock_rate=1.0 / (24 * HOUR),
        seed=17,
    )


def build_policy(zones, costs, name):
    return MixturePolicy(
        DynamicSpotPlacer(zones, costs),
        num_overprovision=2,
        dynamic_ondemand_fallback=True,
        name=name,
    )


@pytest.fixture(scope="module")
def results():
    trace = build_trace()
    zones = trace.zone_ids
    # Fleet larger than the zone set, so surplus placement is in play.
    config = ReplayConfig(n_tar=6, k=4.0, zone_price_multipliers=PRICES)
    out = {}
    for label, costs in (
        ("cost-aware", PRICES),
        ("cost-blind", {z: 1.0 for z in zones}),
    ):
        replayer = TraceReplayer(trace, config)
        out[label] = replayer.run(build_policy(zones, costs, label))
    return out


def test_ablation_cost_aware_placement(benchmark, results):
    rows = run_once(
        benchmark,
        lambda: [
            [name, f"{r.spot_cost:.0f}", f"{r.availability:.1%}", f"{r.relative_cost:.1%}"]
            for name, r in results.items()
        ],
    )
    print_header("Ablation: MIN-COST placement under a regional price spread")
    print_rows(["placer", "spot bill", "availability", "cost vs OD"], rows)

    aware = results["cost-aware"]
    blind = results["cost-blind"]
    # Cost-aware placement trims the spot bill (the surplus replicas
    # pay US instead of EU prices)...
    assert aware.spot_cost < blind.spot_cost * 0.99
    # ...without giving up availability: both keep the multi-region
    # robustness (the EU zones are still used when the US is short).
    assert aware.availability >= blind.availability - 0.02
    assert aware.availability >= 0.95
