"""Fig. 14b: cost relative to an all-on-demand deployment, by trace and
policy.

Paper shapes: SpotHedge costs 45-58% of on-demand (a 42-55% saving);
Even Spread (16-29%) and Round Robin (33-39%) are cheaper only because
their preempted fleets serve far less (their availability collapses in
Fig. 14a).
"""

import pytest
from conftest import print_header, print_rows, run_once

from repro.core import even_spread_policy, round_robin_policy, spothedge
from repro.experiments import ReplayConfig, TraceReplayer

POLICIES = [
    ("SpotHedge", spothedge),
    ("RoundRobin", round_robin_policy),
    ("EvenSpread", even_spread_policy),
]


@pytest.fixture(scope="module")
def results(trace_aws1, trace_aws2, trace_aws3, trace_gcp1):
    out = {}
    for trace in (trace_aws1, trace_aws2, trace_aws3, trace_gcp1):
        replayer = TraceReplayer(trace, ReplayConfig(n_tar=4, k=4.0))
        for name, factory in POLICIES:
            out[(trace.name, name)] = replayer.run(factory(trace.zone_ids))
    return out


def test_fig14b_relative_cost(benchmark, results, trace_aws1, trace_aws2, trace_aws3, trace_gcp1):
    traces = [trace_aws1.name, trace_aws2.name, trace_aws3.name, trace_gcp1.name]

    def build_rows():
        rows = []
        for trace_name in traces:
            rows.append(
                [trace_name]
                + [
                    f"{results[(trace_name, p)].relative_cost:.1%}"
                    for p, _ in POLICIES
                ]
            )
        return rows

    rows = run_once(benchmark, build_rows)
    print_header("Fig. 14b: cost relative to all-on-demand (N_Tar = 4, k = 4)")
    print_rows(["trace"] + [p for p, _ in POLICIES], rows)

    for trace_name in traces:
        sky = results[(trace_name, "SpotHedge")]
        rr = results[(trace_name, "RoundRobin")]
        es = results[(trace_name, "EvenSpread")]
        # SpotHedge saves substantially vs on-demand (paper: 42-55%
        # cheaper; our AWS 2 variant is blacked out more, so allow up
        # to 75% of the on-demand cost).
        assert 0.30 <= sky.relative_cost <= 0.75, trace_name
        # The pure-spot placements are cheaper than SpotHedge — because
        # they hold fewer (often zero) replicas.
        assert es.relative_cost < sky.relative_cost, trace_name
        assert rr.relative_cost < sky.relative_cost, trace_name
        # But their cheapness comes with collapsed availability.
        assert es.availability < sky.availability, trace_name

    # Even Spread's fleet is the smallest of all (paper: 16-29%).
    for trace_name in traces:
        assert (
            results[(trace_name, "EvenSpread")].relative_cost
            <= results[(trace_name, "RoundRobin")].relative_cost + 0.05
        ), trace_name
