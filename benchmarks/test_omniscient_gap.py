"""§5.2 "Optimal": SpotHedge versus the Omniscient ILP bound.

The paper reports SpotHedge within 5-20% relative cost of the
Omniscient policy (which sees the whole future, does not overprovision,
and is infeasible online) at comparable availability.
"""

import pytest
from conftest import print_header, print_rows, run_once

from repro.cloud import DAY
from repro.core import solve_omniscient, spothedge
from repro.experiments import ReplayConfig, TraceReplayer

K = 4.0  # p3.2xlarge / a2-ultragpu spot ratios are 0.25-0.33
N_TAR = 4


def compare_on(trace, resample_step):
    replayer = TraceReplayer(trace, ReplayConfig(n_tar=N_TAR, k=K))
    online = replayer.run(spothedge(trace.zone_ids))
    offline = solve_omniscient(
        trace,
        N_TAR,
        k=K,
        cold_start=180.0,
        avail_target=min(online.availability, 0.99),
        resample_step=resample_step,
    )
    return online, offline


@pytest.fixture(scope="module")
def comparisons(trace_aws1, trace_gcp1):
    return {
        "AWS 1": compare_on(trace_aws1.window(0, 4 * DAY, name="AWS 1"), 1800.0),
        "GCP 1": compare_on(trace_gcp1, 600.0),
    }


def test_omniscient_gap(benchmark, comparisons):
    rows = run_once(
        benchmark,
        lambda: [
            [
                name,
                f"{online.relative_cost:.1%}",
                f"{offline.cost_relative_to_on_demand(N_TAR):.1%}",
                f"{online.availability:.1%}",
                f"{offline.availability:.1%}",
            ]
            for name, (online, offline) in comparisons.items()
        ],
    )
    print_header("SpotHedge vs Omniscient (cost relative to on-demand)")
    print_rows(
        ["trace", "SpotHedge", "Omniscient", "SH avail", "Omni avail"], rows
    )

    for name, (online, offline) in comparisons.items():
        omni_cost = offline.cost_relative_to_on_demand(N_TAR)
        # The offline optimum is a genuine lower bound.
        assert omni_cost <= online.relative_cost + 1e-9, name
        # SpotHedge lands within a modest factor of the bound at
        # comparable availability (paper: 5-20% relative difference;
        # the bound here is clairvoyant AND unbuffered, so allow 2x).
        assert online.relative_cost <= 2.0 * omni_cost + 0.10, name
        assert online.availability >= offline.availability - 0.05, name


def test_omniscient_greedy_all_traces(
    benchmark, trace_aws1, trace_aws2, trace_aws3, trace_gcp1
):
    """The scalable greedy clairvoyant bound over every *full* trace —
    including the two-month AWS 3 the ILP cannot handle."""
    from repro.core import solve_omniscient_greedy

    def compute():
        rows = []
        for trace in (trace_aws1, trace_aws2, trace_aws3, trace_gcp1):
            replayer = TraceReplayer(trace, ReplayConfig(n_tar=N_TAR, k=K))
            online = replayer.run(spothedge(trace.zone_ids))
            greedy = solve_omniscient_greedy(
                trace, N_TAR, k=K, resample_step=max(trace.step, 600.0)
            )
            rows.append(
                (
                    trace.name,
                    online.relative_cost,
                    greedy.cost_relative_to_on_demand(N_TAR),
                    online.availability,
                    greedy.availability,
                )
            )
        return rows

    rows = run_once(benchmark, compute)
    print_header("SpotHedge vs greedy clairvoyant bound (full traces)")
    print_rows(
        ["trace", "SpotHedge", "greedy bound", "SH avail", "bound avail"],
        [
            [name, f"{sh:.1%}", f"{greedy:.1%}", f"{a:.1%}", f"{b:.1%}"]
            for name, sh, greedy, a, b in rows
        ],
    )
    for name, sh_cost, greedy_cost, sh_avail, bound_avail in rows:
        # The bound is below the online policy everywhere...
        assert greedy_cost <= sh_cost + 1e-9, name
        # ...and SpotHedge stays within 2x of it (paper: 5-20% gap to
        # their less idealised Optimal).
        assert sh_cost <= 2.0 * greedy_cost + 0.10, name
