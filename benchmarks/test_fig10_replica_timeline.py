"""Fig. 10: number of ready replicas over time, per system.

Paper shapes: SkyServe holds its ready count at or above the target by
mixing spot and on-demand; ASG pins one on-demand replica throughout;
AWSSpot/MArk drop to zero ready replicas during spot droughts.
"""

import numpy as np
from conftest import E2E_DURATION, fig9_workload, print_header, print_rows, run_once

from repro.experiments import run_comparison


def sample_series(series, times):
    values = [series.value_at(t) for t in times]
    return [0 if np.isnan(v) else int(v) for v in values]


def test_fig10_ready_replica_timelines(benchmark):
    results = run_once(
        benchmark,
        lambda: run_comparison("volatile", fig9_workload(), E2E_DURATION, seed=6),
    )

    marks = np.linspace(600, E2E_DURATION - 1, 12)
    print_header("Fig. 10 (Spot Volatile): ready replicas over time")
    rows = []
    for name, result in results.items():
        spot = sample_series(result.ready_spot, marks)
        od = sample_series(result.ready_od, marks)
        rows.append([name, " ".join(f"{s}+{o}" for s, o in zip(spot, od))])
    print_rows(["system", "ready spot+od at 12 sample points"], rows)

    duration = E2E_DURATION
    # SkyServe: total ready stays at/above target most of the run.
    sky_total_ok = results["SkyServe"].report.availability
    assert sky_total_ok >= 0.90

    # ASG keeps exactly one on-demand replica ~always (the §5.1
    # observation driving its cost and its overload).
    asg_od = results["ASG"].ready_od
    od_one_fraction = asg_od.fraction_at_least(1, 600.0, duration)
    assert od_one_fraction >= 0.95
    asg_od_values = [asg_od.value_at(t) for t in marks]
    assert max(v for v in asg_od_values if not np.isnan(v)) <= 1

    # AWSSpot and MArk hit zero ready replicas during droughts.
    for name in ("AWSSpot", "MArk"):
        ready = results[name].ready_spot
        zero_time = 1.0 - ready.fraction_at_least(1, 600.0, duration)
        assert zero_time > 0.10, name

    # SkyServe's on-demand count is dynamic: nonzero during droughts,
    # zero when spot capacity suffices (never pinned like ASG).
    sky_od = results["SkyServe"].ready_od
    values = [sky_od.value_at(t) for t in np.linspace(600, duration - 1, 200)]
    values = [v for v in values if not np.isnan(v)]
    assert max(values) >= 1
    assert min(values) == 0
