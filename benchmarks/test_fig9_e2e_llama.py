"""Fig. 9: end-to-end service quality, failure rate, and cost —
Llama-2-70B on 8xA10G (g5.48xlarge), SkyServe vs ASG/AWSSpot/MArk.

Paper shapes reproduced:
* SkyServe keeps failures below 1% in both groups (paper 0.34-0.62%)
  while single-region spot systems fail 49-94% under volatility and ASG
  degrades on its lone on-demand replica (36%).
* SkyServe's P50/P90/P99 improve by about 2x under volatility.
* SkyServe costs ~half of an all-on-demand deployment (paper: 41-44%
  cheaper); ASG's cost is dominated by its always-on on-demand node
  (§2.4: ~52% of its total); MArk/AWSSpot can be cheaper under
  volatility only because they serve almost nothing.
"""

import pytest
from conftest import E2E_DURATION, fig9_workload, print_header, print_rows, run_once

from repro.cloud import default_catalog
from repro.experiments import run_comparison

OD_HOURLY = default_catalog().get("g5.48xlarge").on_demand_hourly
N_TAR = 4


def od_baseline_cost():
    return OD_HOURLY * N_TAR * E2E_DURATION / 3600.0


def run_group(scenario):
    workload = fig9_workload()
    return run_comparison(scenario, workload, E2E_DURATION, seed=6)


def report_rows(results):
    rows = []
    for name, result in results.items():
        r = result.report
        rows.append(
            [
                name,
                f"{r.failure_rate:.2%}",
                f"{r.latency.p50:.1f}s",
                f"{r.latency.p90:.1f}s",
                f"{r.latency.p99:.1f}s",
                f"{r.effective_percentile(50, 100.0):.1f}s",
                f"{r.total_cost / od_baseline_cost():.1%}",
                f"{r.od_cost / max(r.total_cost, 1e-9):.0%}",
            ]
        )
    return rows


HEADERS = [
    "system", "fail", "P50", "P90", "P99", "eff-P50", "cost vs OD", "OD share",
]


@pytest.fixture(scope="module")
def available():
    return run_group("available")


@pytest.fixture(scope="module")
def volatile():
    return run_group("volatile")


def test_fig9_spot_available(benchmark, available):
    rows = run_once(benchmark, lambda: report_rows(available))
    print_header("Fig. 9 (Spot Available): Llama-2-70B on g5.48xlarge")
    print_rows(HEADERS, rows)

    reports = {name: r.report for name, r in available.items()}
    # Everyone is mostly healthy when spot is obtainable...
    for name, report in reports.items():
        assert report.failure_rate < 0.10, name
    # ...but SkyServe still has the fewest failures.
    sky = reports["SkyServe"]
    assert sky.failure_rate <= min(r.failure_rate for r in reports.values()) + 1e-9
    # Cost: SkyServe saves ~half versus all-on-demand (paper: 41-44%).
    assert 0.35 <= sky.total_cost / od_baseline_cost() <= 0.70
    # SkyServe's cost is not above ASG's (paper: 20-24% cheaper).
    assert sky.total_cost <= reports["ASG"].total_cost * 1.10


def test_fig9_spot_volatile(benchmark, volatile):
    rows = run_once(benchmark, lambda: report_rows(volatile))
    print_header("Fig. 9 (Spot Volatile): Llama-2-70B on g5.48xlarge")
    print_rows(HEADERS, rows)

    reports = {name: r.report for name, r in volatile.items()}
    sky = reports["SkyServe"]

    # Failure rates: SkyServe < 3% (paper 0.34-0.62%); single-region
    # spot systems collapse (paper: AWSSpot 49-94%, MArk 6.8-79%).
    assert sky.failure_rate < 0.03
    assert reports["AWSSpot"].failure_rate > 0.40
    assert reports["MArk"].failure_rate > 0.40
    assert reports["ASG"].failure_rate > 0.10  # paper: 36%
    assert sky.failure_rate < min(
        reports[n].failure_rate for n in ("ASG", "AWSSpot", "MArk")
    ) / 10

    # Latency: completed-only percentiles are survivorship-biased when
    # a system fails most requests, so compare *effective* percentiles
    # (failed requests counted at the 100 s timeout).  Paper factors:
    # P50 vs ASG 1.1-1.6x, vs AWSSpot 2.6-3.9x; MArk in between.
    timeout = 100.0
    sky_p50 = sky.effective_percentile(50, timeout)
    sky_p90 = sky.effective_percentile(90, timeout)
    assert sky_p50 * 1.1 <= reports["ASG"].effective_percentile(50, timeout)
    assert sky_p50 * 2.0 <= reports["AWSSpot"].effective_percentile(50, timeout)
    assert sky_p50 * 2.0 <= reports["MArk"].effective_percentile(50, timeout)
    for name in ("ASG", "AWSSpot", "MArk"):
        # Any failure rate above ~1% saturates effective P99 at the
        # timeout, so the tail comparison happens at P90.
        assert sky_p90 < reports[name].effective_percentile(90, timeout), name
        assert sky.effective_percentile(99, timeout) <= reports[
            name
        ].effective_percentile(99, timeout), name

    # Cost: SkyServe saves >= 35% vs on-demand while staying available.
    assert sky.total_cost / od_baseline_cost() <= 0.65
    # ASG's cost is dominated by the always-on on-demand replica
    # (§5.1: 97% of its cost under volatility; §2.4: >= half).
    asg = reports["ASG"]
    assert asg.od_cost / asg.total_cost >= 0.5
    # MArk/AWSSpot end up cheaper only because they barely serve.
    for name in ("AWSSpot", "MArk"):
        assert reports[name].total_cost < sky.total_cost
        assert reports[name].failure_rate > 10 * sky.failure_rate


def test_fig9_availability_ordering(benchmark, volatile):
    reports = run_once(
        benchmark, lambda: {name: r.report for name, r in volatile.items()}
    )
    sky = reports["SkyServe"]
    for name in ("ASG", "AWSSpot", "MArk"):
        assert sky.availability >= reports[name].availability
    assert sky.availability >= 0.90
