"""Fig. 14d: latency sensitivity to the cold-start delay d, under the
Poisson workload.

Paper shape: a larger cold start moderately increases tail latency —
the overprovisioned buffer and on-demand fallback absorb most of it.
"""

import numpy as np
from conftest import print_header, print_rows, run_once

from repro.core import spothedge
from repro.experiments import ReplayConfig, TraceReplayer, estimate_latency
from repro.workloads import poisson_workload

COLD_STARTS = [60.0, 180.0, 360.0, 600.0, 1200.0]


def test_fig14d_coldstart_sensitivity(benchmark, trace_gcp1):
    workload = poisson_workload(trace_gcp1.duration, rate=0.15, seed=15)

    def compute():
        stats = {}
        for d in COLD_STARTS:
            replayer = TraceReplayer(trace_gcp1, ReplayConfig(n_tar=4, k=3.0, cold_start=d))
            result = replayer.run(spothedge(trace_gcp1.zone_ids))
            latencies = estimate_latency(
                result, workload, service_time=8.0, timeout=100.0
            )
            stats[d] = (
                float(np.mean(latencies)),
                float(np.percentile(latencies, 99)),
                result.availability,
            )
        return stats

    stats = run_once(benchmark, compute)
    print_header("Fig. 14d: sensitivity to cold-start delay d (GCP 1, Poisson)")
    print_rows(
        ["d (s)", "mean lat", "P99 lat", "availability"],
        [
            [int(d), f"{m:.2f}s", f"{p99:.1f}s", f"{a:.1%}"]
            for d, (m, p99, a) in stats.items()
        ],
    )

    # Longer cold starts hurt, but moderately: availability decreases
    # monotonically-ish with d, and the 20-minute cold start is still
    # a serviceable deployment thanks to the buffer + fallback.
    assert stats[1200.0][2] <= stats[60.0][2] + 1e-9
    assert stats[1200.0][2] >= 0.80
    # Tail latency grows with d but stays below half the timeout.
    assert stats[1200.0][1] >= stats[60.0][1] - 1e-9
    assert stats[180.0][1] <= 50.0
    # Mean latency moves only moderately across a 20x cold-start range.
    assert stats[1200.0][0] <= 3.0 * max(stats[60.0][0], 1.0)
