"""Ablation: Dynamic Placement alone (fallback disabled).

Isolates §3.1 from §3.2: with no on-demand fallback and no
overprovisioning, how much does preemption-aware placement alone help
over Even Spread and Round Robin?  Expected: fewer preemptions and
higher availability, but far short of full SpotHedge — the components
are complementary.
"""

import pytest
from conftest import print_header, print_rows, run_once

from repro.core import (
    DynamicSpotPlacer,
    MixturePolicy,
    even_spread_policy,
    round_robin_policy,
    spothedge,
)
from repro.experiments import ReplayConfig, TraceReplayer


def dynamic_only(zones):
    return MixturePolicy(
        DynamicSpotPlacer(zones),
        num_overprovision=0,
        dynamic_ondemand_fallback=False,
        name="DynamicOnly",
    )


@pytest.fixture(scope="module")
def results(trace_aws3):
    replayer_factory = lambda: TraceReplayer(trace_aws3, ReplayConfig(n_tar=4, k=4.0))
    out = {}
    for name, factory in [
        ("DynamicOnly", dynamic_only),
        ("EvenSpread", even_spread_policy),
        ("RoundRobin", round_robin_policy),
        ("SpotHedge", spothedge),
    ]:
        out[name] = replayer_factory().run(factory(trace_aws3.zone_ids))
    return out


def test_ablation_placement_only(benchmark, results):
    rows = run_once(
        benchmark,
        lambda: [
            [name, f"{r.availability:.1%}", r.preemptions, f"{r.relative_cost:.1%}"]
            for name, r in results.items()
        ],
    )
    print_header("Ablation: placement policy alone (AWS 3, no fallback)")
    print_rows(["policy", "availability", "preemptions", "cost vs OD"], rows)

    dyn = results["DynamicOnly"]
    es = results["EvenSpread"]
    rr = results["RoundRobin"]
    full = results["SpotHedge"]

    # Placement alone already crushes the static even spread.
    assert dyn.availability > es.availability + 0.3
    # It is in Round Robin's band (each trades off differently: Dynamic
    # avoids hot zones but concentrates more; RR spreads blindly).
    assert dyn.availability >= rr.availability - 0.05
    # Preemption-awareness reduces preemptions vs Round Robin, which
    # keeps walking back into hot zones.
    assert dyn.preemptions <= rr.preemptions
    # But the full policy (overprovision + fallback) is still clearly
    # better: placement alone cannot ride out region-wide droughts.
    assert full.availability > dyn.availability
