"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these keep the simulator fast enough that the
paper-scale experiments (22 hours of serving, two-month traces) run in
seconds.  Regressions here multiply into every other benchmark.
"""

import time

import numpy as np

from repro.cloud import SpotTrace
from repro.core import spothedge
from repro.experiments import ReplayConfig, TraceReplayer
from repro.sim import SimulationEngine
from repro.telemetry import EventBus, RingBufferSink

ZONES = ["aws:r1:a", "aws:r1:b", "aws:r2:a"]


def test_engine_event_throughput(benchmark):
    """Raw event loop: schedule + dispatch 100k events."""

    def run():
        engine = SimulationEngine()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(100_000):
            engine.call_at(float(i % 1000), tick)
        engine.run()
        return count

    count = benchmark(run)
    assert count == 100_000


def test_recurring_timer_throughput(benchmark):
    """A 10 s control loop over a simulated day — the controller's
    reconcile cadence."""

    def run():
        engine = SimulationEngine()
        ticks = []
        engine.call_every(10.0, lambda: ticks.append(None))
        engine.run_until(86_400.0)
        return len(ticks)

    count = benchmark(run)
    assert count == 8640


def test_replay_throughput(benchmark):
    """Replaying a week-long three-zone trace with SpotHedge."""
    rng = np.random.default_rng(0)
    capacity = rng.integers(0, 5, size=(3, 7 * 24 * 60))
    trace = SpotTrace("perf", ZONES, 60.0, capacity)

    def run():
        replayer = TraceReplayer(trace, ReplayConfig(n_tar=4))
        return replayer.run(spothedge(ZONES))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.ready_series.shape[0] == trace.n_steps


def test_telemetry_overhead(benchmark):
    """Telemetry ON vs OFF on the replay path, asserting the bus's
    zero-overhead-when-disabled design: a fully instrumented run stays
    within 10% of the untelemetered one.

    Interleaved min-of-runs: alternating off/on samples cancels drift
    (thermal, cache, background load) and ``min`` discards scheduler
    noise, so the ratio measures the instrumentation itself.

    Capacity shifts every ~10 minutes — the churn scale of the paper's
    real traces (§2.2) — rather than every step, so the event rate is
    representative of an actual replay instead of pure noise.
    """
    rng = np.random.default_rng(0)
    capacity = np.repeat(
        rng.integers(0, 5, size=(3, 7 * 24 * 6)), 10, axis=1
    )
    trace = SpotTrace("perf", ZONES, 60.0, capacity)
    config = ReplayConfig(n_tar=4)

    def replay(telemetry):
        replayer = TraceReplayer(trace, config, telemetry=telemetry)
        return replayer.run(spothedge(ZONES))

    def sample(telemetry):
        start = time.perf_counter()
        replay(telemetry)
        return time.perf_counter() - start

    replay(None)  # warm caches before timing
    off_times, on_times = [], []
    events = 0
    for _ in range(5):
        off_times.append(sample(None))
        sink = RingBufferSink()
        on_times.append(sample(EventBus([sink])))
        events = len(sink)

    off, on = min(off_times), min(on_times)
    overhead = on / off - 1.0
    print(f"\ntelemetry off {off * 1e3:.1f}ms, on {on * 1e3:.1f}ms "
          f"({overhead:+.1%}, {events} events)")
    assert events > 0  # the instrumented run actually collected events
    benchmark.pedantic(lambda: replay(None), rounds=1, iterations=1)
    assert overhead < 0.10
