"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these keep the simulator fast enough that the
paper-scale experiments (22 hours of serving, two-month traces) run in
seconds.  Regressions here multiply into every other benchmark.

``REPRO_BENCH_SMOKE=1`` shrinks the workloads so the whole module runs
in a few seconds — the CI perf-smoke step uses it to catch gross
regressions on every PR.  The replay/latency/sweep cases append their
timings to ``benchmarks/BENCH_replay.json`` (gitignored) so runs can be
compared against a recorded baseline.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.cloud import SpotTrace, TraceZoneSpec, make_correlated_trace
from repro.core import spothedge
from repro.experiments import (
    ReplayConfig,
    TraceReplayer,
    estimate_latency,
    grid_sweep,
)
from repro.sim import SimulationEngine
from repro.telemetry import EventBus, RingBufferSink
from repro.workloads import poisson_workload

ZONES = ["aws:r1:a", "aws:r1:b", "aws:r2:a"]

#: Smoke mode: much smaller inputs, same code paths.
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Trace length in minutes (steps) for the replay-path benchmarks.
REPLAY_STEPS = 24 * 60 if SMOKE else 7 * 24 * 60

_ARTIFACT = Path(__file__).parent / "BENCH_replay.json"


def record_baseline(entry: str, **values) -> None:
    """Merge one benchmark's numbers into the BENCH_replay.json artifact."""
    data = {}
    if _ARTIFACT.exists():
        try:
            data = json.loads(_ARTIFACT.read_text())
        except ValueError:
            data = {}
    values["smoke"] = SMOKE
    data[entry] = values
    _ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True))


def perf_trace() -> SpotTrace:
    """The week-long (day-long in smoke mode) three-zone replay trace."""
    rng = np.random.default_rng(0)
    capacity = rng.integers(0, 5, size=(3, REPLAY_STEPS))
    return SpotTrace("perf", ZONES, 60.0, capacity)


def realistic_trace() -> SpotTrace:
    """A week-long (day-long in smoke mode) three-zone trace with
    *realistic* capacity dynamics: Markov up/down holding times of
    hours, not per-minute noise (the paper's real traces shift on
    ~10-minute-to-hour scales, §2.2).  This is the regime the hybrid
    engine's fluid fast-forward targets; :func:`perf_trace` flips
    capacity every step and is the adversarial churn case."""
    hour = 3600.0
    duration = REPLAY_STEPS * 60.0
    specs = [
        TraceZoneSpec(z, mean_up=8 * hour, mean_down=1 * hour, capacity_up=6)
        for z in ZONES
    ]
    return make_correlated_trace(
        "week3z", specs, duration, step=60.0, seed=11
    )


def test_engine_event_throughput(benchmark):
    """Raw event loop: schedule + dispatch 100k events."""

    def run():
        engine = SimulationEngine()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(100_000):
            engine.call_at(float(i % 1000), tick)
        engine.run()
        return count

    count = benchmark(run)
    assert count == 100_000


def test_recurring_timer_throughput(benchmark):
    """A 10 s control loop over a simulated day — the controller's
    reconcile cadence."""

    def run():
        engine = SimulationEngine()
        ticks = []
        engine.call_every(10.0, lambda: ticks.append(None))
        engine.run_until(86_400.0)
        return len(ticks)

    count = benchmark(run)
    assert count == 8640


def test_replay_throughput(benchmark):
    """Replaying a week-long three-zone trace with SpotHedge."""
    trace = perf_trace()

    def run():
        replayer = TraceReplayer(trace, ReplayConfig(n_tar=4))
        return replayer.run(spothedge(ZONES))

    run()  # warm caches
    times = []
    for _ in range(3):
        start = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - start)
    steps_per_second = trace.n_steps / min(times)
    print(f"\nreplay: {min(times) * 1e3:.0f}ms for {trace.n_steps} steps "
          f"({steps_per_second:,.0f} steps/s)")
    record_baseline(
        "replay", seconds=min(times), steps=trace.n_steps,
        steps_per_second=steps_per_second,
    )
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ready_series.shape[0] == trace.n_steps
    # The incremental-state rewrite replays >25k steps/s even on slow
    # CI runners (the pre-rewrite loop managed ~19k on fast hardware).
    assert steps_per_second > 25_000


def test_vectorized_replay_throughput(benchmark):
    """The numpy fastpath on the realistic week-long three-zone trace.

    Three pins: (1) the vectorized engine reproduces the discrete
    oracle byte-for-byte on this trace (the property suite covers the
    general case; this keeps the perf benchmark honest); (2) it clears
    1M steps/s in full mode — the million-user-scale sweep target
    (~2.9M on dev hardware, ~10x the discrete loop); (3) the number is
    recorded as ``replay_vectorized`` for the perfreg gate."""
    trace = realistic_trace()
    config = ReplayConfig(n_tar=4)

    def run(engine):
        replayer = TraceReplayer(trace, config, engine=engine)
        return replayer.run(spothedge(ZONES))

    ref = run("discrete")
    fast = run("vectorized")
    assert fast.availability == ref.availability
    assert fast.spot_cost == ref.spot_cost
    assert fast.od_cost == ref.od_cost
    assert fast.preemptions == ref.preemptions
    np.testing.assert_array_equal(fast.ready_series, ref.ready_series)

    times = []
    for _ in range(3):
        start = time.perf_counter()
        run("vectorized")
        times.append(time.perf_counter() - start)
    steps_per_second = trace.n_steps / min(times)
    print(f"\nvectorized replay: {min(times) * 1e3:.1f}ms for "
          f"{trace.n_steps} steps ({steps_per_second:,.0f} steps/s)")
    record_baseline(
        "replay_vectorized", seconds=min(times), steps=trace.n_steps,
        steps_per_second=steps_per_second,
    )
    benchmark.pedantic(lambda: run("vectorized"), rounds=1, iterations=1)
    # Fluid fast-forward turns quiescent hours into O(1) slice fills;
    # the full week-long trace replays at ~2.9M steps/s on dev
    # hardware.  Smoke mode's day-long trace amortises the fixed array
    # setup over 7x fewer steps, so the floor is proportionally lower.
    assert steps_per_second > (150_000 if SMOKE else 1_000_000)


def test_hetero_replay_throughput(benchmark):
    """Capacity-weighted replay over (zone × instance-type) pools.

    Expands the realistic trace into two GPU generations (6 pools),
    runs the fleet policy with effective-capacity tracking, and records
    ``replay_hetero`` for the perfreg gate.  This path is pinned to the
    discrete engine (the fastpath rejects capacity weights), so the
    floor protects the weighted per-step accounting from regressing."""
    from repro.cloud import PriceBook, hetero_catalog, make_hetero_trace
    from repro.cloud.gpus import (
        pool_capacity_weights,
        pool_price_multipliers,
        pool_spot_costs,
    )
    from repro.core import hetero_spothedge

    catalog = hetero_catalog()
    types = ["g5.48xlarge", "p4d.24xlarge"]
    trace = make_hetero_trace(realistic_trace(), types, catalog, seed=0)
    book = PriceBook(catalog)
    ref = catalog.get("g5.48xlarge")
    pools = trace.zone_ids
    config = ReplayConfig(
        n_tar=4,
        k=ref.on_demand_hourly / ref.spot_hourly,
        zone_price_multipliers=pool_price_multipliers(
            pools, book, reference_price=ref.spot_hourly
        ),
        zone_capacity_weights=pool_capacity_weights(pools, catalog),
    )

    def run():
        policy = hetero_spothedge(
            pools,
            pool_costs=pool_spot_costs(pools, book),
            pool_weights=config.zone_capacity_weights,
        )
        return TraceReplayer(trace, config, engine="discrete").run(policy)

    run()  # warm caches
    times = []
    for _ in range(3):
        start = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - start)
    steps_per_second = trace.n_steps / min(times)
    print(f"\nhetero replay: {min(times) * 1e3:.0f}ms for {trace.n_steps} "
          f"steps x {len(pools)} pools ({steps_per_second:,.0f} steps/s)")
    record_baseline(
        "replay_hetero", seconds=min(times), steps=trace.n_steps,
        steps_per_second=steps_per_second,
    )
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.eff_availability is not None
    # Twice the pools plus weighted planning/accounting: the discrete
    # loop still clears a healthy fraction of its homogeneous floor.
    assert steps_per_second > 10_000


def test_hybrid_sweep_speedup(benchmark):
    """End-to-end ``grid_sweep`` with the hybrid engine vs discrete.

    The sweep harness is the consumer the fastpath was built for: a
    16-point (n_tar x cold_start) grid over the realistic week trace.
    Records ``hybrid_sweep`` (points/s, both engine timings, speedup)
    for the perfreg gate; asserts identical sweep results and a real
    wall-clock win in full mode."""
    import functools

    trace = realistic_trace()
    grid = {
        "n_tar": [2, 3, 4, 5],
        "cold_start": [0.0, 60.0, 120.0, 180.0],
    }

    def point(n_tar, cold_start, engine):
        replayer = TraceReplayer(
            trace, ReplayConfig(n_tar=n_tar, cold_start=cold_start),
            engine=engine,
        )
        result = replayer.run(spothedge(ZONES))
        return (result.availability, result.relative_cost,
                result.preemptions)

    n_points = len(grid["n_tar"]) * len(grid["cold_start"])
    timings = {}
    results = {}
    for engine in ("discrete", "hybrid"):
        run = functools.partial(point, engine=engine)
        run(4, 60.0)  # warm caches
        start = time.perf_counter()
        results[engine] = grid_sweep(run, grid, workers=1)
        timings[engine] = time.perf_counter() - start

    assert [p.params for p in results["discrete"]] == \
        [p.params for p in results["hybrid"]]
    assert [p.result for p in results["discrete"]] == \
        [p.result for p in results["hybrid"]]
    speedup = timings["discrete"] / timings["hybrid"]
    points_per_second = n_points / timings["hybrid"]
    print(f"\nhybrid sweep: {n_points} points, discrete "
          f"{timings['discrete']:.2f}s, hybrid {timings['hybrid']:.2f}s "
          f"({speedup:.1f}x, {points_per_second:,.1f} points/s)")
    record_baseline(
        "hybrid_sweep", discrete_seconds=timings["discrete"],
        hybrid_seconds=timings["hybrid"], points=n_points,
        points_per_second=points_per_second, speedup=speedup,
    )
    benchmark.pedantic(lambda: point(4, 60.0, "hybrid"),
                       rounds=1, iterations=1)
    if not SMOKE:
        assert speedup >= 3.0


def test_batched_replay_perf_smoke(benchmark):
    """CI perf-smoke: continuous batching must not regress the hot
    paths.  Two checks: (1) a saturated batched ``InferenceServer``
    (every admit/finish reprices the whole batch) clears a generous
    requests/s floor; (2) the trace-replay path, re-timed in the same
    process as the batched engine, stays within 15% of the ``replay``
    baseline that ``test_replay_throughput`` recorded into
    ``BENCH_replay.json`` moments earlier — a same-machine, same-mode
    comparison."""
    import pytest

    from repro.serving import InferenceServer, ModelProfile
    from repro.workloads import Request

    def drive(n):
        engine = SimulationEngine()
        profile = ModelProfile(
            "m", overhead=0.1, prefill_per_token=0.001,
            decode_per_token=0.01, max_concurrency=8,
            decode_batch_slope=0.1,
        )
        server = InferenceServer(engine, profile)
        done = []
        for i in range(n):
            server.submit(Request(i, 0.0, 20, 40), done.append,
                          lambda r: None)
        engine.run()
        return len(done)

    n_requests = 2_000 if SMOKE else 20_000
    drive(n_requests // 10)  # warm caches
    times = []
    for _ in range(3):
        start = time.perf_counter()
        completed = drive(n_requests)
        times.append(time.perf_counter() - start)
    assert completed == n_requests
    requests_per_second = n_requests / min(times)
    print(f"\nbatched inference: {min(times) * 1e3:.0f}ms for "
          f"{n_requests} requests ({requests_per_second:,.0f} req/s)")
    record_baseline(
        "batched_inference", seconds=min(times), requests=n_requests,
        requests_per_second=requests_per_second,
    )
    # Repricing is O(batch) per admit/finish; even slow CI runners
    # clear this with a wide margin (~100k req/s on dev hardware).
    assert requests_per_second > 10_000

    baseline = {}
    if _ARTIFACT.exists():
        try:
            baseline = json.loads(_ARTIFACT.read_text()).get("replay", {})
        except ValueError:
            baseline = {}
    benchmark.pedantic(lambda: drive(n_requests // 10), rounds=1, iterations=1)
    if not baseline or baseline.get("smoke") != SMOKE:
        pytest.skip("no same-mode replay baseline recorded in this run")
    trace = perf_trace()

    def replay():
        replayer = TraceReplayer(trace, ReplayConfig(n_tar=4))
        return replayer.run(spothedge(ZONES))

    replay()  # warm caches
    replay_times = []
    for _ in range(3):
        start = time.perf_counter()
        replay()
        replay_times.append(time.perf_counter() - start)
    steps_per_second = trace.n_steps / min(replay_times)
    ratio = steps_per_second / baseline["steps_per_second"]
    print(f"replay with batched engine resident: {steps_per_second:,.0f} "
          f"steps/s ({ratio:.2f}x of recorded baseline)")
    assert ratio >= 0.85


def test_latency_estimation_throughput(benchmark):
    """Vectorised estimate_latency over a dense workload.

    The fast path is O(steps + requests); the scalar reference walked
    every request through the downtime scan (O(requests × steps) on
    blackout-heavy series).  Property tests assert numerical equality;
    this case pins throughput.
    """
    trace = perf_trace()
    replayer = TraceReplayer(trace, ReplayConfig(n_tar=4))
    result = replayer.run(spothedge(ZONES))
    rate = 5.0 if SMOKE else 20.0
    workload = poisson_workload(trace.duration, rate=rate, seed=3)
    n_requests = len(workload)

    def run():
        return estimate_latency(result, workload)

    run()  # warm caches
    start = time.perf_counter()
    latencies = run()
    elapsed = time.perf_counter() - start
    requests_per_second = n_requests / elapsed
    print(f"\nestimate_latency: {elapsed * 1e3:.1f}ms for {n_requests} requests "
          f"({requests_per_second:,.0f} req/s)")
    record_baseline(
        "latency_estimation", seconds=elapsed, requests=n_requests,
        requests_per_second=requests_per_second,
    )
    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(latencies) == n_requests
    assert np.isfinite(latencies).all()
    # Vectorised binning should clear 1M requests/s with ease; the
    # scalar implementation was ~100x slower on downtime-heavy series.
    assert requests_per_second > 1_000_000


def _sweep_point(n_tar, cold_start, trace=None):
    replayer = TraceReplayer(trace, ReplayConfig(n_tar=n_tar, cold_start=cold_start))
    result = replayer.run(spothedge(ZONES))
    return (result.availability, result.relative_cost, result.preemptions)


def test_parallel_sweep_speedup(benchmark):
    """A 16-point grid, serial vs four workers.

    Results must be identical for any worker count (the determinism
    contract); the ≥2x wall-clock assertion only makes sense with real
    cores to run on, so it is skipped on 1-3 core machines (the
    process pool cannot beat serial on a single CPU).
    """
    import functools

    trace = perf_trace()
    run = functools.partial(_sweep_point, trace=trace)
    grid = {
        "n_tar": [2, 3, 4, 5],
        "cold_start": [0.0, 60.0, 120.0, 180.0],
    }

    start = time.perf_counter()
    serial = grid_sweep(run, grid, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = grid_sweep(run, grid, workers=4)
    parallel_s = time.perf_counter() - start

    assert [p.params for p in serial] == [p.params for p in parallel]
    assert [p.result for p in serial] == [p.result for p in parallel]
    speedup = serial_s / parallel_s
    cores = os.cpu_count() or 1
    print(f"\nsweep 16 points: serial {serial_s:.2f}s, 4 workers {parallel_s:.2f}s "
          f"({speedup:.2f}x on {cores} cores)")
    # On a single-core runner the pool cannot beat serial, so the
    # timing is pure process-spawn overhead — don't record it where a
    # trajectory reader would mistake it for a regression.
    if cores > 1:
        record_baseline(
            "parallel_sweep", serial_seconds=serial_s,
            parallel_seconds=parallel_s, speedup=speedup, cores=cores,
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if cores >= 4 and not SMOKE:
        assert speedup >= 2.0


def test_telemetry_overhead(benchmark):
    """Telemetry ON vs OFF on the replay path, asserting the bus's
    zero-overhead-when-disabled design: a fully instrumented run stays
    within 25% of the untelemetered one.  (The bound was 10% of the
    pre-optimization loop; the incremental-state rewrite made the OFF
    baseline ~3x faster, so the same absolute per-event cost is a
    larger fraction — ~25% of the new baseline equals ~8% of the old.)

    Interleaved min-of-runs: alternating off/on samples cancels drift
    (thermal, cache, background load) and ``min`` discards scheduler
    noise, so the ratio measures the instrumentation itself.

    Capacity shifts every ~10 minutes — the churn scale of the paper's
    real traces (§2.2) — rather than every step, so the event rate is
    representative of an actual replay instead of pure noise.
    """
    rng = np.random.default_rng(0)
    capacity = np.repeat(
        rng.integers(0, 5, size=(3, REPLAY_STEPS // 10)), 10, axis=1
    )
    trace = SpotTrace("perf", ZONES, 60.0, capacity)
    config = ReplayConfig(n_tar=4)

    def replay(telemetry):
        replayer = TraceReplayer(trace, config, telemetry=telemetry)
        return replayer.run(spothedge(ZONES))

    def sample(telemetry):
        start = time.perf_counter()
        replay(telemetry)
        return time.perf_counter() - start

    replay(None)  # warm caches before timing
    off_times, on_times = [], []
    events = 0
    for _ in range(5):
        off_times.append(sample(None))
        sink = RingBufferSink()
        on_times.append(sample(EventBus([sink])))
        events = len(sink)

    off, on = min(off_times), min(on_times)
    overhead = on / off - 1.0
    print(f"\ntelemetry off {off * 1e3:.1f}ms, on {on * 1e3:.1f}ms "
          f"({overhead:+.1%}, {events} events)")
    assert events > 0  # the instrumented run actually collected events
    benchmark.pedantic(lambda: replay(None), rounds=1, iterations=1)
    assert overhead < 0.25


def test_profiler_overhead_and_phases(benchmark):
    """The stride-sampled phase profiler on the replay hot path.

    Two pins: (1) profiling enabled slows the replay by <5% (the
    stride-16 sampling means one clock-read pair per 16 steps per
    phase); (2) the recorded phase totals land in BENCH_replay.json as
    ``replay_phases`` so the perf-regression trajectory
    (``python -m repro.devtools.perfreg``) carries hot-phase timings.

    Interleaved min-of-5, like ``test_telemetry_overhead``: alternating
    samples cancel drift and ``min`` discards scheduler noise.
    """
    from repro.telemetry import PhaseProfiler

    trace = perf_trace()
    config = ReplayConfig(n_tar=4)

    def replay(profiler):
        replayer = TraceReplayer(trace, config, profiler=profiler)
        return replayer.run(spothedge(ZONES))

    def sample(profiler):
        start = time.perf_counter()
        replay(profiler)
        return time.perf_counter() - start

    replay(None)  # warm caches before timing
    off_times, on_times = [], []
    profiler = None
    for _ in range(5):
        off_times.append(sample(None))
        profiler = PhaseProfiler()
        on_times.append(sample(profiler))

    off, on = min(off_times), min(on_times)
    overhead = on / off - 1.0
    phases = profiler.stats()
    print(f"\nprofiler off {off * 1e3:.1f}ms, on {on * 1e3:.1f}ms "
          f"({overhead:+.1%}, stride {profiler.stride})")
    for stats in profiler.top(8):
        print(f"  {stats.name}: {stats.calls} samples, "
              f"{stats.total_s * 1e3:.2f}ms total")
    # All five replay phases were observed through the sampled stride.
    assert set(phases) == {
        "replay.promote", "replay.preempt", "replay.policy",
        "replay.reconcile", "replay.accrue",
    }
    assert all(s.calls > 0 for s in phases.values())
    record_baseline(
        "replay_phases", **{s.name: s.total_s for s in phases.values()}
    )
    benchmark.pedantic(lambda: replay(None), rounds=1, iterations=1)
    assert overhead < 0.05


def test_metrics_sink_overhead(benchmark):
    """Aggregating metrics in-line (MetricsSink) vs plain buffering
    (RingBufferSink) on a fully instrumented replay: the registry's
    per-event dispatch must stay a small fraction of the bus cost."""
    from repro.telemetry import MetricsSink

    rng = np.random.default_rng(0)
    capacity = np.repeat(
        rng.integers(0, 5, size=(3, REPLAY_STEPS // 10)), 10, axis=1
    )
    trace = SpotTrace("perf", ZONES, 60.0, capacity)
    config = ReplayConfig(n_tar=4)

    def replay(telemetry):
        replayer = TraceReplayer(trace, config, telemetry=telemetry)
        return replayer.run(spothedge(ZONES))

    def sample(sink):
        start = time.perf_counter()
        replay(EventBus([sink]))
        return time.perf_counter() - start

    replay(None)  # warm caches before timing
    ring_times, metrics_times = [], []
    sink = None
    for _ in range(5):
        ring_times.append(sample(RingBufferSink()))
        sink = MetricsSink()
        metrics_times.append(sample(sink))

    ring, metrics = min(ring_times), min(metrics_times)
    overhead = metrics / ring - 1.0
    family = sink.registry.counter("events_total", labels=("kind",))
    events = int(sum(c.value for c in family.children().values()))
    print(f"\nring sink {ring * 1e3:.1f}ms, metrics sink "
          f"{metrics * 1e3:.1f}ms ({overhead:+.1%}, {events} events)")
    assert events > 0
    benchmark.pedantic(lambda: replay(None), rounds=1, iterations=1)
    # Aggregation (kind dispatch + dict lookup + int/float adds per
    # event) costs at most as much again as plain buffering — and since
    # the bus itself is bounded at 25% of an untelemetered replay, the
    # fully aggregated run stays well under 2x the plain one.
    assert overhead < 1.0


def test_disabled_instrumentation_zero_alloc(benchmark):
    """When profiling and telemetry are disabled, the per-step guard
    path allocates exactly zero additional live blocks — the disabled
    instrumentation is attribute loads and int tests only.

    Measured with ``sys.getallocatedblocks`` across two loop sizes: any
    per-step allocation would scale the block count with the step
    count."""
    import gc
    import sys

    from repro.telemetry import NULL_PROFILER, PhaseProfiler
    from repro.telemetry.events import NULL_BUS

    # The disabled phase() context manager is one shared instance.
    prof_a, prof_b = PhaseProfiler(enabled=False), PhaseProfiler(enabled=False)
    assert prof_a.phase("promote") is prof_b.phase("accrue")

    prof = NULL_PROFILER
    bus = NULL_BUS

    def guards(n):
        # The exact per-step guard sequence from TraceReplayer.run().
        prof_enabled = prof.enabled
        bus_enabled = bus.enabled
        mask = 31
        hits = 0
        for k in range(n):
            if prof_enabled and (k & mask) == 0:
                hits += 1
            if bus_enabled:
                hits += 1
        return hits

    assert guards(1024) == 0  # warm: code objects, caches, interning
    gc.collect()
    gc.disable()
    try:
        before = sys.getallocatedblocks()
        guards(4_096)
        small = sys.getallocatedblocks() - before
        before = sys.getallocatedblocks()
        guards(65_536)
        large = sys.getallocatedblocks() - before
    finally:
        gc.enable()
    print(f"\nalloc growth: {small} blocks @4k steps, {large} @64k steps")
    # Zero allocations *per step*: 16x the steps must add zero blocks
    # over the smaller run (the odd ±1 constant block is measurement
    # noise from the probe itself, not per-step state).
    assert large <= small
    assert large <= 1
    benchmark.pedantic(lambda: guards(1024), rounds=1, iterations=1)
