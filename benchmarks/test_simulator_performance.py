"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these keep the simulator fast enough that the
paper-scale experiments (22 hours of serving, two-month traces) run in
seconds.  Regressions here multiply into every other benchmark.
"""

import numpy as np

from repro.cloud import SpotTrace
from repro.core import spothedge
from repro.experiments import ReplayConfig, TraceReplayer
from repro.sim import SimulationEngine

ZONES = ["aws:r1:a", "aws:r1:b", "aws:r2:a"]


def test_engine_event_throughput(benchmark):
    """Raw event loop: schedule + dispatch 100k events."""

    def run():
        engine = SimulationEngine()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(100_000):
            engine.call_at(float(i % 1000), tick)
        engine.run()
        return count

    count = benchmark(run)
    assert count == 100_000


def test_recurring_timer_throughput(benchmark):
    """A 10 s control loop over a simulated day — the controller's
    reconcile cadence."""

    def run():
        engine = SimulationEngine()
        ticks = []
        engine.call_every(10.0, lambda: ticks.append(None))
        engine.run_until(86_400.0)
        return len(ticks)

    count = benchmark(run)
    assert count == 8640


def test_replay_throughput(benchmark):
    """Replaying a week-long three-zone trace with SpotHedge."""
    rng = np.random.default_rng(0)
    capacity = rng.integers(0, 5, size=(3, 7 * 24 * 60))
    trace = SpotTrace("perf", ZONES, 60.0, capacity)

    def run():
        replayer = TraceReplayer(trace, ReplayConfig(n_tar=4))
        return replayer.run(spothedge(ZONES))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.ready_series.shape[0] == trace.n_steps
