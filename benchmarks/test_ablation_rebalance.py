"""Ablation: Alg. 1's zone-rebalancing trigger (|Z_A| < 2).

Without rebalancing, successive preemptions drain Z_A until every new
replica targets the single remaining "available" zone.  Measured effect
on AWS 3: availability is similar either way (successful launches also
rehabilitate zones), but the trigger dramatically cuts *wasted launch
attempts* — without it, the drained variant hammers its shrunken zone
list with requests that fail on capacity.
"""

import pytest
from conftest import print_header, print_rows, run_once

from repro.core import DynamicSpotPlacer, MixturePolicy
from repro.experiments import ReplayConfig, TraceReplayer
from repro.telemetry import PolicyAuditLog


class _NoRebalancePlacer(DynamicSpotPlacer):
    """Dynamic placement with the |Z_A| < 2 rebalance removed: Z_A may
    drain to a single zone (or to empty, at which point we must reuse
    whatever zone remains enabled)."""

    name = "dynamic-no-rebalance"

    def _move_to_preempting(self, zone: str) -> None:
        if zone in self.active_zones and len(self.active_zones) > 1:
            self.active_zones.remove(zone)
            self.preempting_zones.append(zone)


def with_rebalance(zones):
    return MixturePolicy(
        DynamicSpotPlacer(zones),
        num_overprovision=2,
        dynamic_ondemand_fallback=False,
        name="rebalance-on",
    )


def without_rebalance(zones):
    return MixturePolicy(
        _NoRebalancePlacer(zones),
        num_overprovision=2,
        dynamic_ondemand_fallback=False,
        name="rebalance-off",
    )


@pytest.fixture(scope="module")
def results(trace_aws3):
    out = {}
    audits = {}
    for name, factory in (
        ("rebalance on", with_rebalance),
        ("rebalance off", without_rebalance),
    ):
        replayer = TraceReplayer(trace_aws3, ReplayConfig(n_tar=4, k=4.0))
        policy = factory(trace_aws3.zone_ids)
        policy.attach_audit(PolicyAuditLog(policy=policy.name))
        audits[name] = policy.audit
        out[name] = replayer.run(policy)
    return out, audits


def _max_zone_concentration(result):
    """Peak fraction of the fleet placed in one zone is not directly
    recorded; use preemption count as the observable proxy — a drained
    Z_A concentrates replicas and eats correlated preemptions."""
    return result.preemptions


def test_ablation_zone_rebalancing(benchmark, results):
    results, _ = results
    rows = run_once(
        benchmark,
        lambda: [
            [name, f"{r.availability:.1%}", r.preemptions, r.launch_failures]
            for name, r in results.items()
        ],
    )
    print_header("Ablation: Alg. 1 zone rebalancing (AWS 3, no OD fallback)")
    print_rows(["variant", "availability", "preemptions", "launch failures"], rows)

    on = results["rebalance on"]
    off = results["rebalance off"]
    # The trigger's measurable benefit on this trace: far fewer wasted
    # launch attempts against the drained zone list.
    assert on.launch_failures < off.launch_failures * 0.85
    # Availability lands in the same band for both variants (successful
    # launches rehabilitate zones either way).
    assert abs(on.availability - off.availability) <= 0.08
    assert on.availability >= 0.85


def test_rebalance_decisions_in_audit_log(results):
    """Assert the *mechanism*, not just the outcome: the audit log shows
    the |Z_A| < 2 trigger actually firing and restoring Z_P zones."""
    _, audits = results
    on = audits["rebalance on"]
    off = audits["rebalance off"]

    rebalances = on.records("rebalance")
    assert rebalances, "AWS 3 drains Z_A; the trigger must fire at least once"
    for record in rebalances:
        restored = record.data["restored"]
        active_after = record.data["active"]
        # The trigger condition: before restoring, Z_A had < 2 zones.
        assert len(active_after) - len(restored) < 2
        assert restored  # only non-empty restores are recorded

    # Every rebalance is preceded by Z_A -> Z_P drains.
    assert on.count("zone_to_preempting") >= len(rebalances)
    # The ablated placer never rebalances (its override records nothing).
    assert off.count("rebalance") == 0
    print(
        f"\nrebalance-on audit: {len(on)} records "
        f"({len(rebalances)} rebalances, "
        f"{on.count('zone_to_preempting')} zone drains, "
        f"{on.count('zone_to_active')} zone restores)"
    )
