"""Table 1: spot GPU price as a percentage of on-demand, per cloud x GPU.

Regenerates the paper's pricing table from the catalog and checks the
economic premise: spot GPUs cost 8-50% of on-demand everywhere.
"""

from conftest import print_header, print_rows, run_once

from repro.cloud import SPOT_DISCOUNT_TABLE, default_catalog

GPUS = ["A100", "V100", "T4", "K80"]
CLOUDS = ["aws", "azure", "gcp"]


def build_table():
    catalog = default_catalog()
    rows = []
    for cloud in CLOUDS:
        cells = []
        for gpu in GPUS:
            low, high = catalog.spot_discount(cloud, gpu)
            if low == high:
                cells.append(f"{low:.0%}")
            else:
                cells.append(f"{low:.0%}-{high:.0%}")
        rows.append([cloud.upper()] + cells)
    return rows


def test_table1_spot_discounts(benchmark):
    rows = run_once(benchmark, build_table)
    print_header("Table 1: Cost of spot GPU instances (% of on-demand)")
    print_rows(["Cloud"] + GPUS, rows)

    # Shape assertions from the paper's Table 1.
    catalog = default_catalog()
    # Every cell within the 8-50% economic band.
    for (cloud, gpu), (low, high) in SPOT_DISCOUNT_TABLE.items():
        assert 0.08 <= low <= high <= 0.50, (cloud, gpu)
    # Headline cells reproduced exactly.
    assert catalog.spot_discount("aws", "A100") == (0.10, 0.10)
    assert catalog.spot_discount("azure", "A100") == (0.50, 0.50)
    assert catalog.spot_discount("gcp", "A100") == (0.33, 0.33)
    assert catalog.spot_discount("aws", "V100") == (0.08, 0.25)
    # AWS offers the deepest A100 discount; Azure the shallowest.
    aws_a100 = catalog.spot_discount("aws", "A100")[1]
    azure_a100 = catalog.spot_discount("azure", "A100")[0]
    assert aws_a100 < azure_a100
