"""Ablation: width of the spot search space.

§3.1's expansion argument at the policy level: run SpotHedge restricted
to one zone, one region, and all regions of AWS 3, with fallback
disabled so the effect of the search space itself is visible.
"""

import pytest
from conftest import print_header, print_rows, run_once

from repro.core import DynamicSpotPlacer, MixturePolicy
from repro.experiments import ReplayConfig, TraceReplayer


def spot_only(zones, name):
    return MixturePolicy(
        DynamicSpotPlacer(zones),
        num_overprovision=2,
        dynamic_ondemand_fallback=False,
        name=name,
    )


@pytest.fixture(scope="module")
def results(trace_aws3):
    zones = trace_aws3.zone_ids
    one_zone = zones[:1]
    one_region = [z for z in zones if z.rsplit(":", 1)[0] == "aws:us-east-1"]
    scopes = {
        "1 zone": one_zone,
        "1 region": one_region,
        "3 regions": list(zones),
    }
    out = {}
    for name, scope in scopes.items():
        replayer = TraceReplayer(trace_aws3, ReplayConfig(n_tar=4, k=4.0))
        out[name] = replayer.run(spot_only(scope, name), spot_zones=zones)
    return out


def test_ablation_search_space(benchmark, results):
    rows = run_once(
        benchmark,
        lambda: [
            [name, f"{r.availability:.1%}", r.preemptions]
            for name, r in results.items()
        ],
    )
    print_header("Ablation: spot search-space width (AWS 3, no OD fallback)")
    print_rows(["search space", "availability", "preemptions"], rows)

    one_zone = results["1 zone"].availability
    one_region = results["1 region"].availability
    all_regions = results["3 regions"].availability

    # Availability grows with the search space (Fig. 5's effect as seen
    # by an actual policy rather than a trace union).
    assert one_zone < one_region <= all_regions + 1e-9
    assert all_regions > one_zone + 0.25
    # A single zone cannot host 4 replicas most of the time.
    assert one_zone < 0.60
