"""Autoscaled end-to-end comparison: the four systems with the QPS
autoscaler live (no pinned N_Tar).

The paper's §5.1 experiments fix the target; this companion experiment
lets every system's target follow the load through a strong diurnal
swing (the production mode of Listing 1, `target_qps_per_replica`).
MArk's proactive trend extrapolation finally matters here.  Shapes:
SkyServe tracks the load at the lowest failure rate; everyone scales
up through the daytime peak.
"""

import numpy as np
import pytest
from conftest import print_header, print_rows, run_once

from repro.cloud import HOUR, default_catalog
from repro.experiments import e2e_trace, run_system, standard_policies
from repro.experiments.endtoend import SINGLE_REGION, SKYSERVE_REGIONS
from repro.serving import (
    DomainFilter,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
    llama2_70b_profile,
)
from repro.workloads import arena_workload

DURATION = 6 * HOUR


def autoscaled_spec(name, any_of):
    return ServiceSpec(
        name=f"auto-{name}",
        replica_policy=ReplicaPolicyConfig(
            target_qps_per_replica=0.5,
            min_replicas=1,
            max_replicas=12,
            num_overprovision=2,
            qps_window=60.0,
            upscale_delay=180.0,
            downscale_delay=480.0,
        ),
        resources=ResourceSpec(accelerator="A10G", any_of=any_of),
        request_timeout=100.0,
    )


@pytest.fixture(scope="module")
def results():
    trace = e2e_trace("available", duration=DURATION, seed=9)
    workload = arena_workload(
        DURATION,
        base_rate=1.2,
        diurnal_amplitude=0.8,
        burst_rate_per_hour=0.2,
        burst_multiplier=1.5,
        max_output_tokens=800,
        seed=9,
    )
    policies = standard_policies(trace)
    out = {}
    for name, policy in policies.items():
        if name == "SkyServe":
            any_of = tuple(
                DomainFilter(cloud=r.split(":")[0], region=r.split(":")[1])
                for r in SKYSERVE_REGIONS
            )
        else:
            cloud, region = SINGLE_REGION.split(":")
            any_of = (DomainFilter(cloud=cloud, region=region),)
        out[name] = run_system(
            policy,
            trace,
            workload,
            DURATION,
            spec=autoscaled_spec(name, any_of),
            profile=llama2_70b_profile(),
            seed=9,
        )
    return out, workload


def test_autoscaled_comparison(benchmark, results):
    systems, workload = results

    def build_rows():
        od_hourly = default_catalog().get("g5.48xlarge").on_demand_hourly
        rows = []
        for name, result in systems.items():
            r = result.report
            # Peak ready replicas reached during the daytime swing.
            peak = max(
                v
                for v in (
                    result.ready_spot.value_at(t) + result.ready_od.value_at(t)
                    for t in np.linspace(600, DURATION - 1, 200)
                )
                if not np.isnan(v)
            )
            rows.append(
                [
                    name,
                    f"{r.failure_rate:.2%}",
                    f"{r.latency.p50:.1f}s",
                    int(peak),
                    f"${r.total_cost:.0f}",
                ]
            )
        return rows

    rows = run_once(benchmark, build_rows)
    print_header("Autoscaled comparison (diurnal Arena load, Spot Available)")
    print_rows(["system", "fail", "P50", "peak replicas", "cost"], rows)

    reports = {name: r.report for name, r in systems.items()}
    sky = reports["SkyServe"]
    # SkyServe has the fewest failures while autoscaling.
    assert sky.failure_rate <= min(r.failure_rate for r in reports.values()) + 0.01
    assert sky.failure_rate < 0.10
    # Every system scaled up past its starting single replica.
    for name, result in systems.items():
        values = [
            result.ready_spot.value_at(t) + result.ready_od.value_at(t)
            for t in np.linspace(600, DURATION - 1, 200)
        ]
        values = [v for v in values if not np.isnan(v)]
        assert max(values) >= 3, name
