"""Fig. 14c: latency sensitivity to the number of overprovisioned spot
replicas N_Extra, under the Poisson workload.

Paper shape: a small N_Extra already removes most of the preemption-
induced tail; returns diminish quickly beyond ~2.
"""

import numpy as np
from conftest import print_header, print_rows, run_once

from repro.core import spothedge
from repro.experiments import ReplayConfig, TraceReplayer, estimate_latency
from repro.workloads import poisson_workload

N_EXTRAS = [0, 1, 2, 3, 4]


def test_fig14c_nextra_sensitivity(benchmark, trace_gcp1):
    workload = poisson_workload(trace_gcp1.duration, rate=0.15, seed=14)

    def compute():
        stats = {}
        for n_extra in N_EXTRAS:
            replayer = TraceReplayer(trace_gcp1, ReplayConfig(n_tar=4, k=3.0))
            result = replayer.run(
                spothedge(trace_gcp1.zone_ids, num_overprovision=n_extra)
            )
            latencies = estimate_latency(
                result, workload, service_time=8.0, timeout=100.0
            )
            stats[n_extra] = (
                float(np.mean(latencies)),
                float(np.percentile(latencies, 99)),
                result.availability,
                result.relative_cost,
            )
        return stats

    stats = run_once(benchmark, compute)
    print_header("Fig. 14c: sensitivity to N_Extra (GCP 1, Poisson)")
    print_rows(
        ["N_Extra", "mean lat", "P99 lat", "availability", "cost vs OD"],
        [
            [n, f"{m:.2f}s", f"{p99:.1f}s", f"{a:.1%}", f"{c:.1%}"]
            for n, (m, p99, a, c) in stats.items()
        ],
    )

    # Overprovisioning helps: N_Extra = 2 beats N_Extra = 0 on tail
    # latency and availability.
    assert stats[2][1] <= stats[0][1] + 1e-9
    assert stats[2][2] >= stats[0][2]
    # Diminishing returns: going from 2 to 4 changes mean latency far
    # less than going from 0 to 2 ("a small N_Extra is sufficient").
    gain_0_2 = stats[0][0] - stats[2][0]
    gain_2_4 = stats[2][0] - stats[4][0]
    assert gain_2_4 <= max(gain_0_2, 0.05)
    # But extra replicas cost money: cost grows with N_Extra.
    assert stats[4][3] > stats[0][3]
