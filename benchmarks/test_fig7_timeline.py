"""Fig. 7: the SpotHedge illustration timeline.

A scripted three-zone scenario: zone 2 is initially unavailable, zone 3
then fails, zone 1 then fails, and finally all zones lose availability.
SpotHedge must (1) launch on-demand fallback while spot warms up, then
scale it to zero; (2) avoid the dead zone; (3) migrate replicas as zones
fail; (4) fall back to on-demand in the final blackout.
"""

import numpy as np
from conftest import print_header, print_rows, run_once

from repro.cloud import SpotTrace
from repro.core import spothedge
from repro.experiments import ReplayConfig, TraceReplayer

Z1, Z2, Z3 = "aws:r1:z1", "aws:r2:z2", "aws:r3:z3"
STEP = 60.0
N = 120  # two hours


def scripted_trace():
    z1 = np.zeros(N, dtype=int)
    z2 = np.zeros(N, dtype=int)
    z3 = np.zeros(N, dtype=int)
    z1[0:60] = 4      # zone 1 up for the first hour
    z2[0:10] = 0      # zone 2 down at the start (launch fails there)
    z2[30:90] = 4     # zone 2 recovers mid-experiment
    z3[0:40] = 4      # zone 3 up early, fails at t=40min
    z3[55:90] = 4     # zone 3 recovers when zone 1 fails
    # After step 90: full blackout in every zone.
    return SpotTrace("fig7", [Z1, Z2, Z3], STEP, np.stack([z1, z2, z3]))


def test_fig7_spothedge_timeline(benchmark):
    trace = scripted_trace()

    def run():
        replayer = TraceReplayer(trace, ReplayConfig(n_tar=4, cold_start=120.0, k=3.0))
        policy = spothedge([Z1, Z2, Z3], num_overprovision=0)
        return replayer.run(policy)

    result = run_once(benchmark, run)

    print_header("Fig. 7: SpotHedge timeline (4 spot replicas, 3 zones)")
    marks = [0, 5, 20, 45, 70, 100, 119]
    print_rows(
        ["t (min)", "ready replicas"],
        [[m, int(result.ready_series[m])] for m in marks],
    )

    # Early phase: spot replicas come up in zones 1/3 (zone 2 dead), and
    # the target is met shortly after one cold start.
    assert result.ready_series[5:20].max() >= 4
    # Mid-experiment churn: SpotHedge keeps the service near target.
    assert result.ready_series[30:85].min() >= 2
    # Final blackout: on-demand fallback carries the service.
    assert result.ready_series[100:].min() >= 4
    assert result.od_cost > 0
    # And the whole run stays mostly available despite three zone failures.
    assert result.availability >= 0.85
