"""Fig. 5: service availability improves as the search space grows from
one zone to many regions.

Paper: GCP 1 (A100) climbs 29.9% -> 95.8% over 6 zones / 5 regions;
AWS 3 (V100) climbs 68.2% -> 99.2% over 9 zones / 3 regions.
"""

from conftest import print_header, print_rows, run_once

from repro.analysis import availability_by_search_space


def test_fig5a_gcp_a100(benchmark, trace_gcp1):
    curve = run_once(benchmark, lambda: availability_by_search_space(trace_gcp1))
    print_header("Fig. 5a: availability vs search space (GCP 1, A100)")
    print_rows(
        ["search space", "availability"],
        [[label, f"{a:.1%}"] for label, a in zip(curve.labels, curve.availability)],
    )
    # Shape: large climb from one zone to all regions; ends near the
    # paper's 95.8%.
    assert curve.availability[0] < 0.80
    assert curve.availability[-1] >= 0.93
    assert curve.availability[-1] - curve.availability[0] >= 0.25
    # Monotone non-decreasing: pooling zones never hurts.
    for earlier, later in zip(curve.availability, curve.availability[1:]):
        assert later >= earlier - 1e-12


def test_fig5b_aws_v100(benchmark, trace_aws3):
    curve = run_once(benchmark, lambda: availability_by_search_space(trace_aws3))
    print_header("Fig. 5b: availability vs search space (AWS 3, V100)")
    print_rows(
        ["search space", "availability"],
        [[label, f"{a:.1%}"] for label, a in zip(curve.labels, curve.availability)],
    )
    assert curve.zone_counts == list(range(1, 10))
    assert curve.availability[-1] >= 0.97  # paper: 99.2%
    assert curve.availability[-1] - curve.availability[0] >= 0.2
    # Adding a whole new region gives a visible jump over the
    # single-region plateau: all-zones beats the first region's pool.
    first_region_zones = 4  # us-east-1 has 4 zones in the topology
    assert curve.availability[-1] > curve.availability[first_region_zones - 1]
