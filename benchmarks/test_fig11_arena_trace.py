"""Fig. 11: the Arena workload's arrival pattern and interarrival
distribution.

Paper shapes: (a) bursty request-rate series with spikes well above the
base load; (b) a heavy-tailed interarrival distribution — most gaps are
short, with a long tail (CV > 1, unlike Poisson's CV = 1).
"""

import numpy as np
from conftest import print_header, print_rows, run_once

from repro.cloud import HOUR
from repro.workloads import arena_workload, poisson_workload


def test_fig11_arena_arrival_pattern(benchmark):
    workload = run_once(benchmark, lambda: arena_workload(24 * HOUR, seed=11))

    times, rates = workload.rate_series(bin_seconds=600.0)
    print_header("Fig. 11a: Arena request arrival pattern (10-min bins)")
    marks = np.linspace(0, len(rates) - 1, 12).astype(int)
    print_rows(
        ["hour", "req/s"],
        [[f"{times[m] / 3600:.1f}", f"{rates[m]:.3f}"] for m in marks],
    )

    gaps = workload.interarrival_times()
    print_header("Fig. 11b: interarrival distribution")
    print_rows(
        ["percentile", "gap (s)"],
        [
            [f"P{q}", f"{np.percentile(gaps, q):.2f}"]
            for q in (10, 50, 90, 99)
        ],
    )
    print(f"interarrival CV = {workload.burstiness():.2f} (Poisson = 1.0)")

    # Bursty rate series: spikes well above the typical level.
    assert rates.max() > 3 * np.median(rates)
    # Heavy-tailed interarrivals: CV above Poisson.
    poisson = poisson_workload(24 * HOUR, rate=workload.mean_rate(), seed=11)
    assert workload.burstiness() > poisson.burstiness() + 0.3
    assert workload.burstiness() > 1.2
    # Long tail: P99 gap far above the median gap.
    assert np.percentile(gaps, 99) > 10 * np.percentile(gaps, 50)
