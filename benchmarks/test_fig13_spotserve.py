"""Fig. 13: SpotServe (OPT-6.7B on 4xT4 g4dn.12xlarge, 20 s timeout)
running together with each provisioning system.

SpotServe is the inference layer here — it "does not consider or
implement instance provisioning" — so, as in the paper, each compared
system provides the fleet management under the identical SpotServe
endpoint.  Paper shapes: SkyServe keeps failures at 0.05-0.4% while the
others reach 52-95% under volatility; latency improves ~1.6-3.1x.
"""

import pytest
from conftest import E2E_DURATION, fig13_workload, print_header, print_rows, run_once

from repro.cloud import default_catalog
from repro.experiments import run_comparison
from repro.serving import opt_6_7b_profile

OD_HOURLY = default_catalog().get("g4dn.12xlarge").on_demand_hourly
N_TAR = 4


def run_group(scenario):
    return run_comparison(
        scenario,
        fig13_workload(),
        E2E_DURATION,
        accelerator="T4",
        profile=opt_6_7b_profile(),
        request_timeout=20.0,
        seed=6,
    )


def od_baseline_cost():
    return OD_HOURLY * N_TAR * E2E_DURATION / 3600.0


def rows_for(results):
    rows = []
    for name, result in results.items():
        r = result.report
        rows.append(
            [
                name,
                f"{r.failure_rate:.2%}",
                f"{r.latency.p50:.1f}s",
                f"{r.latency.p90:.1f}s",
                f"{r.latency.p99:.1f}s",
                f"{r.total_cost / od_baseline_cost():.1%}",
            ]
        )
    return rows


HEADERS = ["system", "fail", "P50", "P90", "P99", "cost vs OD"]


@pytest.fixture(scope="module")
def volatile():
    return run_group("volatile")


@pytest.fixture(scope="module")
def available():
    return run_group("available")


def test_fig13_spot_volatile(benchmark, volatile):
    rows = run_once(benchmark, lambda: rows_for(volatile))
    print_header("Fig. 13 (Spot Volatile): OPT-6.7B with SpotServe engine")
    print_rows(HEADERS, rows)

    reports = {name: r.report for name, r in volatile.items()}
    sky = reports["SkyServe"]
    # Paper: SkyServe 0.05-0.4% vs 52-95% for everything else.
    assert sky.failure_rate < 0.05
    for name in ("ASG", "AWSSpot", "MArk"):
        assert reports[name].failure_rate > 0.25, name
    # Latency improvements (paper: P50 ~3.1x, P99 ~1.6x), compared on
    # effective percentiles (failures at the 20 s timeout) so that the
    # survivorship bias of mostly-failing systems cannot flatter them.
    timeout = 20.0
    sky_p50 = sky.effective_percentile(50, timeout)
    sky_p99 = sky.effective_percentile(99, timeout)
    for name in ("ASG", "AWSSpot", "MArk"):
        assert sky_p50 < reports[name].effective_percentile(50, timeout), name
        assert sky_p99 <= reports[name].effective_percentile(99, timeout), name


def test_fig13_spot_available(benchmark, available):
    rows = run_once(benchmark, lambda: rows_for(available))
    print_header("Fig. 13 (Spot Available): OPT-6.7B with SpotServe engine")
    print_rows(HEADERS, rows)

    reports = {name: r.report for name, r in available.items()}
    sky = reports["SkyServe"]
    # Healthy group: SkyServe matches or beats everyone on failures and
    # tail latency (paper: similar P50/P90 to MArk, 2.2x better P99).
    assert sky.failure_rate <= min(r.failure_rate for r in reports.values()) + 0.01
    assert sky.latency.p99 <= reports["MArk"].latency.p99 * 1.10
    # Cost: SkyServe halves the all-on-demand bill (paper: 10-20%
    # cheaper than ASG/AWSSpot with far better service).
    assert sky.total_cost / od_baseline_cost() <= 0.70
