"""Fig. 12: MArk and AWSSpot over-request instances under spot
unavailability.

Both systems assume CPU-era fast readiness and keep firing launch
requests while earlier ones are still provisioning; the paper observes
up to 14 replicas in provisioning state for a target of ~4.  SkyServe
counts its in-flight launches and never over-requests.
"""

import numpy as np
from conftest import E2E_DURATION, fig9_workload, print_header, print_rows, run_once

from repro.experiments import run_comparison

N_TAR = 4


def test_fig12_provisioning_overrequest(benchmark):
    results = run_once(
        benchmark,
        lambda: run_comparison("volatile", fig9_workload(), E2E_DURATION, seed=6),
    )

    print_header("Fig. 12 (Spot Volatile): replicas in provisioning state")
    rows = []
    peaks = {}
    for name, result in results.items():
        series = result.provisioning_spot
        values = [
            series.value_at(t)
            for t in np.linspace(0, E2E_DURATION - 1, 500)
        ]
        values = [v for v in values if not np.isnan(v)]
        peaks[name] = max(values)
        rows.append([name, int(max(values)), f"{float(np.mean(values)):.2f}"])
    print_rows(["system", "peak provisioning", "mean provisioning"], rows)

    # MArk and AWSSpot over-request: provisioning count well above the
    # target (paper: up to 14 for a target of 4).
    for name in ("MArk", "AWSSpot"):
        assert peaks[name] > N_TAR + 2, name
    # SkyServe's launched-replica accounting bounds its in-flight
    # launches by target + overprovision.
    assert peaks["SkyServe"] <= N_TAR + 2
    # The over-requesters exceed SkyServe's in-flight peak.
    assert max(peaks["MArk"], peaks["AWSSpot"]) > peaks["SkyServe"]
