"""§2.2's SpotServe observation: a single-zone deployment's failure rate
depends entirely on where it happens to be deployed.

The paper measures SpotServe failure rates of 2.0-75.9% depending on
the region, because "naively placing spot replicas in a single region
can lead to limited availability".  This bench deploys the same
SpotServe-engine service pinned to each zone of the volatile scenario,
plus SkyServe over all of them, and shows the spread.
"""

import pytest
from conftest import E2E_DURATION, fig13_workload, print_header, print_rows, run_once

from repro.baselines import SingleZonePolicy
from repro.core import spothedge
from repro.experiments import e2e_trace, run_system
from repro.serving import (
    DomainFilter,
    ReplicaPolicyConfig,
    ResourceSpec,
    ServiceSpec,
    opt_6_7b_profile,
)


def spec_for(zone_or_all):
    if zone_or_all == "all":
        any_of = ()
    else:
        cloud, region, _ = zone_or_all.split(":")
        any_of = (DomainFilter(cloud=cloud, region=region),)
    return ServiceSpec(
        name="single-zone",
        replica_policy=ReplicaPolicyConfig(fixed_target=4, num_overprovision=2),
        resources=ResourceSpec(accelerator="T4", any_of=any_of),
        request_timeout=20.0,
    )


@pytest.fixture(scope="module")
def results():
    trace = e2e_trace("volatile", duration=E2E_DURATION, seed=6)
    workload = fig13_workload()
    out = {}
    # One pinned deployment per zone (sampled: the first zone of each
    # region keeps the run time modest).
    regions_seen = set()
    for zone in trace.zone_ids:
        region = zone.rsplit(":", 1)[0]
        if region in regions_seen:
            continue
        regions_seen.add(region)
        out[zone] = run_system(
            SingleZonePolicy(zone),
            trace,
            workload,
            E2E_DURATION,
            spec=spec_for(zone),
            profile=opt_6_7b_profile(),
            seed=6,
        )
    out["SkyServe (all zones)"] = run_system(
        spothedge(list(trace.zone_ids)),
        trace,
        workload,
        E2E_DURATION,
        spec=spec_for("all"),
        profile=opt_6_7b_profile(),
        seed=6,
    )
    return out


def test_single_zone_failure_spread(benchmark, results):
    rows = run_once(
        benchmark,
        lambda: [
            [name, f"{r.report.failure_rate:.1%}", f"{r.report.availability:.1%}"]
            for name, r in results.items()
        ],
    )
    print_header("SS2.2: SpotServe pinned to one zone vs SkyServe")
    print_rows(["deployment", "fail", "availability"], rows)

    single = {
        name: r.report.failure_rate
        for name, r in results.items()
        if name != "SkyServe (all zones)"
    }
    sky = results["SkyServe (all zones)"].report.failure_rate
    # The paper's spread: failure rates range widely by zone (2-76%).
    assert max(single.values()) > 0.3
    assert max(single.values()) - min(single.values()) > 0.15
    # SkyServe beats every pinned deployment.
    assert sky < min(single.values())
    assert sky < 0.05
