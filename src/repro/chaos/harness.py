"""Robustness harness: a policy × scenario matrix with a scorecard.

``repro chaos run`` (and :func:`run_matrix` programmatically) replays
every requested policy against every requested scenario — plus one
fault-free baseline run per policy — and condenses the outcomes into a
:class:`ChaosScorecard`:

* ``availability`` / ``availability_under_injection`` — overall and
  restricted to steps covered by an injection window (how the policy
  held up *during* the storm);
* ``recovery_seconds`` — time from the end of the last injection window
  until the fleet is back at ≥ N_Tar ready replicas (``None`` if it
  never recovers within the trace);
* ``slo_violation_minutes`` — total minutes below N_Tar ready;
* ``cost_overshoot`` — relative cost minus the same policy's fault-free
  baseline relative cost (what the chaos *added* to the bill);
* ``od_peak`` — the largest on-demand fleet the policy fell back to.

The matrix fans out through :func:`~repro.experiments.sweep.grid_sweep`
(process-pool parallel, deterministic ordering) and individual replays
go through the content-addressed
:class:`~repro.experiments.results.ReplayCache` — chaos runs key
differently from fault-free runs because the compiled trace carries the
scenario digest.  Every point uses the *same* seed, so all policies
face the identical storm realisation, mirroring the paper's concurrent
baseline deployments.  The scorecard JSON is canonical (sorted keys and
rows, plain Python scalars): the same matrix twice produces
byte-identical output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from repro.chaos.overlay import compile_scenario
from repro.chaos.spec import ScenarioSpec
from repro.cloud.traces import SpotTrace
from repro.core import (
    OnDemandOnlyPolicy,
    even_spread_policy,
    round_robin_policy,
    spothedge,
)
from repro.experiments.replay import ReplayConfig, ReplayResult, TraceReplayer
from repro.experiments.results import ReplayCache
from repro.experiments.sweep import grid_sweep
from repro.telemetry.events import EventBus

__all__ = [
    "BASELINE",
    "POLICY_FACTORIES",
    "ChaosScorecard",
    "run_matrix",
    "score_run",
]

#: Reserved scenario name for the fault-free reference runs.
BASELINE = "baseline"

#: Replay policy factories by harness name (the ``repro sweep`` names).
POLICY_FACTORIES: dict[str, Callable[..., Any]] = {
    "SpotHedge": spothedge,
    "RoundRobin": round_robin_policy,
    "EvenSpread": even_spread_policy,
    "OnDemand": OnDemandOnlyPolicy,
}


def _matrix_point(
    trace: SpotTrace,
    scenarios: Mapping[str, ScenarioSpec],
    config: ReplayConfig,
    use_cache: bool,
    seed: int,
    engine: str = "discrete",
    *,
    scenario: str,
    policy: str,
) -> ReplayResult:
    """One matrix cell.  Module-level (fixed arguments bound via
    ``functools.partial``) so parallel matrices can pickle it.

    ``seed`` is bound, not grid-derived: baseline and chaos cells of a
    policy share it, and so do all policies of a scenario — the storm
    realisation and replay draws are identical across the comparison.
    """
    cold_start = None
    prices = None
    effective = trace
    if scenario != BASELINE:
        compiled = compile_scenario(scenarios[scenario], trace, root_seed=seed)
        effective = compiled.trace
        cold_start = compiled.cold_start_factors
        prices = compiled.price_factors
    cache = ReplayCache() if use_cache else None
    if cache is not None:
        # The compiled trace's digest folds in the scenario digest, so
        # chaos cells never hit a fault-free entry (and vice versa).
        key = ReplayCache.key(effective, policy, None, config, seed)
        hit = cache.get(key)
        if hit is not None:
            return hit
    replayer = TraceReplayer(
        effective,
        config,
        seed=seed,
        cold_start_factors=cold_start,
        zone_price_factors=prices,
        engine=engine,
    )
    result = replayer.run(POLICY_FACTORIES[policy](effective.zone_ids))
    if cache is not None:
        cache.put(key, result)
    return result


#: Buckets in the scorecard's downsampled metric series.
_TIMELINE_BUCKETS = 32


def _downsample(series: np.ndarray, buckets: int = _TIMELINE_BUCKETS) -> list[float]:
    """Bucket means of a per-step series, as rounded plain floats.

    Deterministic and canonical-JSON-safe; series shorter than
    ``buckets`` pass through unchanged.
    """
    n = len(series)
    if n == 0:
        return []
    values = np.asarray(series, dtype=float)
    if n <= buckets:
        return [float(round(v, 4)) for v in values]
    edges = np.linspace(0, n, buckets + 1).astype(int)
    return [
        float(round(float(values[a:b].mean()), 4))
        for a, b in zip(edges[:-1], edges[1:])
        if b > a
    ]


def score_run(
    scenario: ScenarioSpec,
    result: ReplayResult,
    baseline: Optional[ReplayResult],
    config: ReplayConfig,
) -> dict[str, Any]:
    """Scorecard metrics for one chaos replay (plain Python scalars)."""
    step = result.step
    ready = result.ready_series
    n = len(ready)
    n_tar = config.n_tar

    mask = np.zeros(n, dtype=bool)
    for start, end in scenario.windows():
        first = max(int(start // step), 0)
        last = min(int(np.ceil(end / step)), n)
        if last > first:
            mask[first:last] = True
    under = float((ready[mask] >= n_tar).mean()) if mask.any() else None

    start_idx = min(int(np.ceil(scenario.last_end / step)), n)
    recovered = np.nonzero(ready[start_idx:] >= n_tar)[0]
    recovery = (
        float((start_idx + int(recovered[0])) * step - scenario.last_end)
        if recovered.size
        else None
    )

    od_peak = None
    if result.od_series is not None and len(result.od_series):
        od_peak = int(result.od_series.max())

    score: dict[str, Any] = {
        "availability": float(result.availability),
        "availability_under_injection": under,
        "recovery_seconds": recovery,
        "slo_violation_minutes": float((ready < n_tar).sum()) * step / 60.0,
        "preemptions": int(result.preemptions),
        "launch_failures": int(result.launch_failures),
        "relative_cost": float(result.relative_cost),
        "od_peak": od_peak,
        # Downsampled metric series (bucket means over the trace) so
        # scorecards carry the availability/fallback *shape*, not just
        # end-of-run scalars — the Fig. 7/10 timeline view per cell.
        "ready_timeline": _downsample(ready),
        "od_timeline": (
            _downsample(result.od_series)
            if result.od_series is not None
            else None
        ),
    }
    if baseline is not None:
        score["baseline_relative_cost"] = float(baseline.relative_cost)
        score["cost_overshoot"] = float(
            result.relative_cost - baseline.relative_cost
        )
    return score


@dataclass(frozen=True)
class ChaosScorecard:
    """Deterministic summary of one policy × scenario matrix."""

    trace: str
    trace_digest: str
    seed: int
    n_tar: int
    policies: tuple[str, ...]
    scenarios: tuple[str, ...]
    #: Fault-free reference metrics per policy.
    baselines: dict[str, dict[str, float]]
    #: One row per (scenario, policy) cell.
    scores: tuple[dict[str, Any], ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace": self.trace,
            "trace_digest": self.trace_digest,
            "seed": self.seed,
            "n_tar": self.n_tar,
            "policies": list(self.policies),
            "scenarios": list(self.scenarios),
            "baselines": {k: dict(v) for k, v in sorted(self.baselines.items())},
            "scores": sorted(
                (dict(s) for s in self.scores),
                key=lambda s: (s["scenario"], s["policy"]),
            ),
        }

    def to_json(self) -> str:
        """Canonical JSON: byte-identical for identical inputs."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    def cell(self, scenario: str, policy: str) -> dict[str, Any]:
        for score in self.scores:
            if score["scenario"] == scenario and score["policy"] == policy:
                return score
        raise KeyError(f"no cell ({scenario!r}, {policy!r}) in scorecard")


def run_matrix(
    trace: SpotTrace,
    scenarios: Sequence[ScenarioSpec],
    policies: Sequence[str] = ("SpotHedge", "EvenSpread"),
    *,
    config: Optional[ReplayConfig] = None,
    seed: int = 0,
    workers: int = 1,
    use_cache: bool = True,
    telemetry: Optional[EventBus] = None,
    engine: str = "discrete",
) -> ChaosScorecard:
    """Replay every policy × (baseline + scenarios) cell and score it.

    ``telemetry`` receives the usual per-point
    :class:`~repro.telemetry.events.SweepProgress` events.  Replay
    errors propagate (a broken matrix must not produce a scorecard).

    ``engine`` selects the replay engine for every cell (the chaos
    overlays' per-step cold-start/price factor rows feed the vectorized
    data plane natively); scorecards are byte-identical across engines,
    and cache entries are shared between them for the same reason.
    """
    config = config or ReplayConfig()
    names = [s.name for s in scenarios]
    if not names:
        raise ValueError("no scenarios to run")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scenario names in {names}")
    if BASELINE in names:
        raise ValueError(f"scenario name {BASELINE!r} is reserved")
    if not policies:
        raise ValueError("no policies to run")
    unknown = sorted(set(policies) - set(POLICY_FACTORIES))
    if unknown:
        raise ValueError(
            f"unknown policies {unknown}: expected a subset of "
            f"{sorted(POLICY_FACTORIES)}"
        )
    by_name = {s.name: s for s in scenarios}
    grid: dict[str, Sequence[Any]] = {
        "scenario": [BASELINE] + names,
        "policy": list(policies),
    }
    points = grid_sweep(
        partial(_matrix_point, trace, by_name, config, use_cache, seed, engine),
        grid,
        raise_errors=True,
        workers=workers,
        telemetry=telemetry,
    )
    results: dict[tuple[str, str], ReplayResult] = {
        (p.params["scenario"], p.params["policy"]): p.result for p in points
    }
    baselines = {
        policy: {
            "availability": float(results[(BASELINE, policy)].availability),
            "relative_cost": float(results[(BASELINE, policy)].relative_cost),
        }
        for policy in policies
    }
    scores = []
    for name in names:
        for policy in policies:
            entry: dict[str, Any] = {"scenario": name, "policy": policy}
            entry.update(
                score_run(
                    by_name[name],
                    results[(name, policy)],
                    results[(BASELINE, policy)],
                    config,
                )
            )
            scores.append(entry)
    return ChaosScorecard(
        trace=trace.name,
        trace_digest=trace.digest(),
        seed=seed,
        n_tar=config.n_tar,
        policies=tuple(policies),
        scenarios=tuple(names),
        baselines=baselines,
        scores=tuple(scores),
    )
