"""Live-simulation fault injection.

:class:`ChaosInjector` applies a :class:`~repro.chaos.overlay.CompiledScenario`
to a running :class:`~repro.cloud.provider.SimCloud` through existing
seams — the provider's swappable :class:`~repro.cloud.provider.CloudConfig`
(cold-start spikes), its ``warning_gate`` hook (warning suppression and
delay), and the billing meter's surcharge windows (price surges) — and
schedules ``Chaos*`` telemetry events for every concrete fault.
Capacity effects (storms, blackouts) never appear here: they are already
baked into the compiled trace the :class:`~repro.serving.service.SkyService`
was built on.

:class:`DegradedNetworkModel` is the network seam: a
:class:`~repro.cloud.network.NetworkModel` wrapper that adds a
scenario's extra RTT during active :class:`~repro.chaos.spec.NetworkDegradation`
windows, reading the engine clock on every lookup.

Zero-overhead contract: nothing in this module is touched unless a
scenario is attached; the seams themselves cost one ``None``/falsy
check on their respective paths.
"""

from __future__ import annotations

import dataclasses
import logging
from functools import partial
from typing import Optional

from repro.chaos.overlay import CompiledScenario, InjectionRecord
from repro.chaos.spec import NetworkDegradation
from repro.cloud.network import NetworkModel
from repro.cloud.provider import SimCloud
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngRegistry
from repro.telemetry.events import (
    ChaosInjected,
    ChaosScenarioEnded,
    ChaosScenarioStarted,
)

__all__ = ["ChaosInjector", "DegradedNetworkModel"]

logger = logging.getLogger(__name__)


class DegradedNetworkModel(NetworkModel):
    """Adds scenario RTT penalties on top of a base network model.

    Cross-region round trips pay ``extra_rtt`` while a degradation
    window is active; same-region lookups are never degraded (the WAN
    is what breaks, not the rack).  A degradation listing ``regions``
    only applies to lookups touching one of them.
    """

    def __init__(
        self,
        base: NetworkModel,
        engine: SimulationEngine,
        degradations: list[NetworkDegradation],
    ) -> None:
        super().__init__()
        self._base = base
        self._engine = engine
        self._degradations = list(degradations)

    def rtt(self, region_a: str, region_b: str) -> float:
        rtt = self._base.rtt(region_a, region_b)
        a = self._bare_region(region_a)
        b = self._bare_region(region_b)
        if a == b:
            return rtt
        now = self._engine.now
        for degradation in self._degradations:
            if not degradation.active_at(now):
                continue
            if degradation.regions:
                scoped = {self._bare_region(r) for r in degradation.regions}
                if a not in scoped and b not in scoped:
                    continue
            rtt += degradation.extra_rtt
        return rtt


class ChaosInjector:
    """Arms a compiled scenario against a live simulation.

    Construction wires nothing; :meth:`arm` schedules every boundary
    callback and installs the provider/billing seams.  Stochastic
    decisions (per-warning suppression draws) consume the dedicated
    ``chaos:<scenario>:warning_gate`` stream so they never perturb the
    cloud's own victim-selection or jitter draws.
    """

    def __init__(
        self,
        compiled: CompiledScenario,
        engine: SimulationEngine,
        cloud: SimCloud,
        *,
        root_seed: int = 0,
    ) -> None:
        self.compiled = compiled
        self.engine = engine
        self.cloud = cloud
        self._registry = RngRegistry(root_seed)
        self._base_config = cloud.config
        self._armed = False
        #: (zone, kill_time) warnings already delayed once: the gate
        #: lets their rescheduled delivery through instead of deferring
        #: forever.
        self._deferred: set[tuple[str, float]] = set()

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Install seams and schedule every fault boundary."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        compiled = self.compiled
        engine = self.engine
        scenario = compiled.scenario
        logger.info(
            "arming chaos scenario %r (%d injections, %d concrete faults)",
            scenario.name,
            len(scenario.injections),
            len(compiled.injections_log),
        )

        # Telemetry: scheduled only when a sink is listening at arm
        # time, so a quiet run does not fill the event heap with no-ops.
        if engine.telemetry.enabled:
            engine.call_at(0.0, self._emit_started)
            for record in compiled.injections_log:
                engine.call_at(record.time, partial(self._emit_injected, record))
            engine.call_at(compiled.last_end, self._emit_ended)

        # Cold-start spikes: swap the provider config at every window
        # boundary; the active-factor product is recomputed from scratch
        # per boundary, so overlaps compose exactly and the base config
        # is restored bit-for-bit once the last window closes.
        for spike in compiled.cold_start_spikes:
            engine.call_at(spike.start, self._refresh_cold_start)
            engine.call_at(spike.end, self._refresh_cold_start)

        # Warning disruption: one gate serving every disruption window.
        if compiled.warning_disruptions:
            self._gate_rng = self._registry.stream(
                f"chaos:{scenario.name}:warning_gate"
            )
            self.cloud.warning_gate = self._warning_gate

        # Price surges: pure billing windows, registered up front.
        trace = compiled.trace
        for surge in compiled.price_surges:
            zones = (
                frozenset(surge.zones)
                if surge.zones
                else frozenset(trace.zone_ids)
            )
            self.cloud.billing.add_surcharge(
                surge.start, surge.end, zones, surge.multiplier
            )

    # ------------------------------------------------------------------
    # Seam callbacks
    # ------------------------------------------------------------------
    def _refresh_cold_start(self) -> None:
        now = self.engine.now
        factor = 1.0
        for spike in self.compiled.cold_start_spikes:
            if spike.active_at(now):
                factor *= spike.factor
        base = self._base_config
        if factor == 1.0:
            self.cloud.config = base
        else:
            self.cloud.config = dataclasses.replace(
                base,
                provision_delay_mean=base.provision_delay_mean * factor,
                setup_delay_mean=base.setup_delay_mean * factor,
            )

    def _warning_gate(self, zone_id: str, kill_time: float) -> Optional[float]:
        key = (zone_id, kill_time)
        if key in self._deferred:
            # A delayed warning coming back around: deliver it.
            self._deferred.discard(key)
            return 0.0
        now = self.engine.now
        active = None
        for disruption in self.compiled.warning_disruptions:
            if disruption.active_at(now):
                active = disruption
                break
        if active is None:
            return 0.0
        if self._gate_rng.random() < active.suppress_prob:
            bus = self.engine.telemetry
            if bus.enabled:
                bus.emit(
                    ChaosInjected(
                        now,
                        self.compiled.scenario.name,
                        active.kind,
                        [zone_id],
                        "warning suppressed",
                    )
                )
            return None
        if active.extra_delay > 0:
            self._deferred.add(key)
            return active.extra_delay
        return 0.0

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _emit_started(self) -> None:
        bus = self.engine.telemetry
        if bus.enabled:
            bus.emit(
                ChaosScenarioStarted(
                    self.engine.now,
                    self.compiled.scenario.name,
                    len(self.compiled.scenario.injections),
                )
            )

    def _emit_injected(self, record: InjectionRecord) -> None:
        bus = self.engine.telemetry
        if bus.enabled:
            bus.emit(
                ChaosInjected(
                    self.engine.now,
                    self.compiled.scenario.name,
                    record.kind,
                    list(record.zones),
                    record.detail,
                )
            )

    def _emit_ended(self) -> None:
        bus = self.engine.telemetry
        if bus.enabled:
            bus.emit(
                ChaosScenarioEnded(
                    self.engine.now,
                    self.compiled.scenario.name,
                    len(self.compiled.injections_log),
                )
            )
