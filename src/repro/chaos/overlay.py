"""Scenario compilation: ScenarioSpec × SpotTrace → concrete faults.

:func:`compile_scenario` resolves a declarative
:class:`~repro.chaos.spec.ScenarioSpec` against a concrete
:class:`~repro.cloud.traces.SpotTrace`, producing a
:class:`CompiledScenario`:

* a **transformed trace** with the scenario's capacity effects
  (preemption storms, blackouts) applied on the trace grid, carrying
  ``chaos_digest`` so its content digest — and therefore every
  :class:`~repro.experiments.results.ReplayCache` key derived from it —
  differs from the pristine trace even when the grid itself is
  untouched;
* **per-step overlay rows** for effects the grid cannot express:
  cold-start multipliers and per-zone price multipliers, consumed by
  :class:`~repro.experiments.replay.TraceReplayer`;
* the **runtime injections** (warning disruption, network degradation)
  that only exist in the live simulation, consumed by
  :class:`~repro.chaos.injector.ChaosInjector`;
* an **injection log** of concrete fault records for telemetry.

Determinism: every stochastic injection draws from its own generator
seeded ``derive_seed(root_seed, "chaos:<scenario>:<index>:<kind>")``,
and each storm pulse consumes a fixed number of draws regardless of the
outcome, so faults are a pure function of (scenario, trace, root_seed)
and adding an injection never perturbs the draws of another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.chaos.spec import (
    CapacityBlackout,
    ColdStartSpike,
    Injection,
    NetworkDegradation,
    PreemptionStorm,
    PriceSurge,
    ScenarioSpec,
    WarningDisruption,
)
from repro.cloud.traces import SpotTrace
from repro.sim.rng import derive_seed

__all__ = ["CompiledScenario", "InjectionRecord", "compile_scenario"]


@dataclass(frozen=True)
class InjectionRecord:
    """One concrete fault: an injection (or storm pulse) that fired."""

    time: float
    kind: str
    zones: tuple[str, ...]
    detail: str = ""


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario resolved against one trace and one seed."""

    scenario: ScenarioSpec
    #: The base trace with capacity effects applied and ``chaos_digest``
    #: set; replay/simulate this instead of the pristine trace.
    trace: SpotTrace
    #: Per-step cold-start multipliers (product of active spikes), or
    #: ``None`` when the scenario has no :class:`ColdStartSpike`.
    cold_start_factors: Optional[tuple[float, ...]]
    #: Per-zone per-step spot price multipliers, or ``None`` when the
    #: scenario has no :class:`PriceSurge`.
    price_factors: Optional[dict[str, tuple[float, ...]]]
    #: Concrete faults, in time order (ties in declaration order).
    injections_log: tuple[InjectionRecord, ...]

    @property
    def last_end(self) -> float:
        """End of the latest injection window (recovery measurement
        starts here)."""
        return self.scenario.last_end

    # Runtime-only injections, applied by the live injector.
    @property
    def warning_disruptions(self) -> list[WarningDisruption]:
        return [
            i
            for i in self.scenario.injections
            if isinstance(i, WarningDisruption)
        ]

    @property
    def network_degradations(self) -> list[NetworkDegradation]:
        return [
            i
            for i in self.scenario.injections
            if isinstance(i, NetworkDegradation)
        ]

    @property
    def cold_start_spikes(self) -> list[ColdStartSpike]:
        return [
            i for i in self.scenario.injections if isinstance(i, ColdStartSpike)
        ]

    @property
    def price_surges(self) -> list[PriceSurge]:
        return [i for i in self.scenario.injections if isinstance(i, PriceSurge)]


def _resolve_zones(injection: Injection, zones: tuple[str, ...], trace: SpotTrace) -> list[str]:
    """Injection zone list with () meaning "every trace zone"."""
    if not zones:
        return list(trace.zone_ids)
    unknown = sorted(set(zones) - set(trace.zone_ids))
    if unknown:
        raise ValueError(
            f"{injection.kind}: zones {unknown} not in trace {trace.name!r}"
        )
    return list(zones)


def _grid_slice(trace: SpotTrace, start: float, end: float) -> slice:
    """Trace-grid slice covered by ``[start, end)``, clipped to the
    trace; may be empty for windows past the trace end."""
    first = max(int(start // trace.step), 0)
    last = min(int(np.ceil(end / trace.step)), trace.n_steps)
    return slice(first, max(last, first))


def compile_scenario(
    scenario: ScenarioSpec,
    trace: SpotTrace,
    *,
    root_seed: int = 0,
) -> CompiledScenario:
    """Resolve ``scenario`` against ``trace`` into concrete faults.

    Capacity effects compose in declaration order on the grid; delay and
    price factors multiply where windows overlap.  Injection windows
    reaching past the trace end are clipped (a scenario is portable
    across traces of different lengths).
    """
    capacity = trace.capacity.copy()
    n_steps = trace.n_steps
    cold_start: Optional[np.ndarray] = None
    prices: dict[str, np.ndarray] = {}
    log: list[InjectionRecord] = []

    for index, injection in enumerate(scenario.injections):
        label = f"chaos:{scenario.name}:{index}:{injection.kind}"
        if isinstance(injection, PreemptionStorm):
            zone_list = _resolve_zones(injection, injection.zones, trace)
            rows = [trace.zone_ids.index(z) for z in zone_list]
            rng = np.random.default_rng(derive_seed(root_seed, label))
            keep = 1.0 - injection.severity
            t = injection.start
            while t < injection.end:  # repro: fixed-draws: pulse outcomes must never shift the draws of later pulses
                pulse_end = min(t + injection.pulse, injection.end)
                # Systemic/common/per-zone uniforms are always consumed
                # (the fixed-draws contract above, enforced by
                # ``repro lint --deep``).
                systemic = rng.random() < injection.correlation
                common_hit = rng.random() < injection.hit_prob
                zone_u = rng.random(len(rows))
                if systemic:
                    hits = [common_hit] * len(rows)
                else:
                    hits = [u < injection.hit_prob for u in zone_u]
                sl = _grid_slice(trace, t, pulse_end)
                hit_zones = []
                if sl.stop > sl.start:
                    for row, zone, hit in zip(rows, zone_list, hits):
                        if not hit:
                            continue
                        capacity[row, sl] = np.floor(
                            capacity[row, sl] * keep
                        ).astype(np.int64)
                        hit_zones.append(zone)
                if hit_zones:
                    log.append(
                        InjectionRecord(
                            time=t,
                            kind=injection.kind,
                            zones=tuple(hit_zones),
                            detail=(
                                f"pulse {'systemic' if systemic else 'independent'}"
                                f" severity={injection.severity:g}"
                            ),
                        )
                    )
                t += injection.pulse
        elif isinstance(injection, CapacityBlackout):
            zone_list = _resolve_zones(injection, injection.zones, trace)
            sl = _grid_slice(trace, injection.start, injection.end)
            if sl.stop > sl.start:
                for zone in zone_list:
                    row = trace.zone_ids.index(zone)
                    capacity[row, sl] = np.minimum(
                        capacity[row, sl], injection.residual_capacity
                    )
                log.append(
                    InjectionRecord(
                        time=injection.start,
                        kind=injection.kind,
                        zones=tuple(zone_list),
                        detail=f"residual={injection.residual_capacity}",
                    )
                )
        elif isinstance(injection, ColdStartSpike):
            sl = _grid_slice(trace, injection.start, injection.end)
            if sl.stop > sl.start:
                if cold_start is None:
                    cold_start = np.ones(n_steps)
                cold_start[sl] *= injection.factor
                log.append(
                    InjectionRecord(
                        time=injection.start,
                        kind=injection.kind,
                        zones=(),
                        detail=f"factor={injection.factor:g}",
                    )
                )
        elif isinstance(injection, PriceSurge):
            zone_list = _resolve_zones(injection, injection.zones, trace)
            sl = _grid_slice(trace, injection.start, injection.end)
            if sl.stop > sl.start:
                for zone in zone_list:
                    row = prices.get(zone)
                    if row is None:
                        row = np.ones(n_steps)
                        prices[zone] = row
                    row[sl] *= injection.multiplier
                log.append(
                    InjectionRecord(
                        time=injection.start,
                        kind=injection.kind,
                        zones=tuple(zone_list),
                        detail=f"multiplier={injection.multiplier:g}",
                    )
                )
        elif isinstance(injection, WarningDisruption):
            log.append(
                InjectionRecord(
                    time=injection.start,
                    kind=injection.kind,
                    zones=(),
                    detail=(
                        f"suppress_prob={injection.suppress_prob:g}"
                        f" extra_delay={injection.extra_delay:g}"
                    ),
                )
            )
        elif isinstance(injection, NetworkDegradation):
            log.append(
                InjectionRecord(
                    time=injection.start,
                    kind=injection.kind,
                    zones=tuple(injection.regions),
                    detail=f"extra_rtt={injection.extra_rtt:g}",
                )
            )
        else:  # pragma: no cover - registry and compiler must stay in sync
            raise TypeError(f"no compiler for injection {injection!r}")

    chaos_trace = SpotTrace(
        trace.name,
        trace.zone_ids,
        trace.step,
        capacity,
        chaos_digest=scenario.digest(),
    )
    log.sort(key=lambda record: record.time)
    return CompiledScenario(
        scenario=scenario,
        trace=chaos_trace,
        cold_start_factors=(
            tuple(float(f) for f in cold_start) if cold_start is not None else None
        ),
        price_factors=(
            {z: tuple(float(f) for f in row) for z, row in prices.items()}
            if prices
            else None
        ),
        injections_log=tuple(log),
    )
