"""Bundled chaos scenarios.

Each builder returns a fresh :class:`~repro.chaos.spec.ScenarioSpec`; the
JSON files under ``configs/scenarios/`` are generated from these builders
and pinned equal by test, so the two forms can never drift.  Timings
assume the short obtainability traces the test-suite and smoke jobs use
(a few simulated hours); on longer traces the injections simply cover
the opening hours.

* ``preemption-storm`` — the §2.2 correlated mass-preemption event: two
  hours of highly correlated capacity pulses across every zone.
* ``capacity-blackout`` — a full multi-zone obtainability blackout
  (launches fail everywhere, ICE) for 90 minutes.
* ``cold-start-storm`` — provisioning and cold starts take 4× their
  usual time while a mild storm churns the fleet: recovery is what gets
  stress-tested, not steady state.
* ``warning-blackout`` — preemptions arrive with no (or late) grace
  warnings during a storm, defeating warning-driven proactive launches.
* ``price-surge`` — spot prices triple across all zones for four hours;
  availability is unaffected but cost discipline is scored.
* ``network-brownout`` — inter-region RTT degrades by 250 ms while cold
  starts double: the cross-region fallback paths get slower exactly when
  they are needed.
* ``kitchen-sink`` — everything at once, staggered.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.chaos.spec import (
    CapacityBlackout,
    ColdStartSpike,
    NetworkDegradation,
    PreemptionStorm,
    PriceSurge,
    ScenarioSpec,
    WarningDisruption,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "builtin_scenario",
    "list_builtin",
    "load_scenario",
]

_HOUR = 3600.0


def _preemption_storm() -> ScenarioSpec:
    return ScenarioSpec(
        name="preemption-storm",
        description=(
            "Two hours of highly correlated preemption pulses across all "
            "zones (the §2.2 correlated-preemption event)."
        ),
        injections=(
            PreemptionStorm(
                start=1.0 * _HOUR,
                end=3.0 * _HOUR,
                hit_prob=0.55,
                correlation=0.7,
                severity=1.0,
                pulse=300.0,
            ),
        ),
    )


def _capacity_blackout() -> ScenarioSpec:
    return ScenarioSpec(
        name="capacity-blackout",
        description=(
            "90-minute multi-zone obtainability blackout: every spot "
            "launch fails (ICE) and existing capacity is reclaimed."
        ),
        injections=(
            CapacityBlackout(start=1.0 * _HOUR, end=2.5 * _HOUR),
        ),
    )


def _cold_start_storm() -> ScenarioSpec:
    return ScenarioSpec(
        name="cold-start-storm",
        description=(
            "Provisioning and cold starts stretch to 4x while a mild "
            "storm churns the fleet — recovery speed under slow "
            "replacement is what gets scored."
        ),
        injections=(
            ColdStartSpike(start=0.5 * _HOUR, end=3.0 * _HOUR, factor=4.0),
            PreemptionStorm(
                start=1.0 * _HOUR,
                end=2.5 * _HOUR,
                hit_prob=0.3,
                correlation=0.3,
                severity=0.6,
                pulse=600.0,
            ),
        ),
    )


def _warning_blackout() -> ScenarioSpec:
    return ScenarioSpec(
        name="warning-blackout",
        description=(
            "Preemption warnings are suppressed during a correlated "
            "storm: reclaims land with zero grace, defeating "
            "warning-driven proactive launches."
        ),
        injections=(
            WarningDisruption(start=0.0, end=4.0 * _HOUR, suppress_prob=1.0),
            PreemptionStorm(
                start=1.0 * _HOUR,
                end=3.0 * _HOUR,
                hit_prob=0.4,
                correlation=0.5,
                severity=0.8,
                pulse=300.0,
            ),
        ),
    )


def _price_surge() -> ScenarioSpec:
    return ScenarioSpec(
        name="price-surge",
        description=(
            "Spot prices triple across every zone for four hours; "
            "availability is untouched but cost overshoot is scored."
        ),
        injections=(
            PriceSurge(start=1.0 * _HOUR, end=5.0 * _HOUR, multiplier=3.0),
        ),
    )


def _network_brownout() -> ScenarioSpec:
    return ScenarioSpec(
        name="network-brownout",
        description=(
            "Inter-region RTT degrades by 250 ms while cold starts "
            "double: cross-region fallback gets slower exactly when it "
            "is needed."
        ),
        injections=(
            NetworkDegradation(start=1.0 * _HOUR, end=3.0 * _HOUR, extra_rtt=0.25),
            ColdStartSpike(start=1.0 * _HOUR, end=3.0 * _HOUR, factor=2.0),
        ),
    )


def _kitchen_sink() -> ScenarioSpec:
    return ScenarioSpec(
        name="kitchen-sink",
        description=(
            "Staggered compound failure: storm, then a blackout on its "
            "heels, with slow cold starts, suppressed warnings, a price "
            "surge, and a degraded WAN throughout."
        ),
        injections=(
            WarningDisruption(
                start=0.5 * _HOUR, end=4.0 * _HOUR, suppress_prob=0.7, extra_delay=20.0
            ),
            PreemptionStorm(
                start=1.0 * _HOUR,
                end=2.5 * _HOUR,
                hit_prob=0.5,
                correlation=0.6,
                severity=0.9,
                pulse=300.0,
            ),
            CapacityBlackout(start=2.5 * _HOUR, end=3.25 * _HOUR),
            ColdStartSpike(start=1.0 * _HOUR, end=4.0 * _HOUR, factor=3.0),
            PriceSurge(start=1.5 * _HOUR, end=4.5 * _HOUR, multiplier=2.5),
            NetworkDegradation(start=1.0 * _HOUR, end=3.5 * _HOUR, extra_rtt=0.15),
        ),
    )


#: Builders by scenario name, in documentation order.
BUILTIN_SCENARIOS: dict[str, Callable[[], ScenarioSpec]] = {
    "preemption-storm": _preemption_storm,
    "capacity-blackout": _capacity_blackout,
    "cold-start-storm": _cold_start_storm,
    "warning-blackout": _warning_blackout,
    "price-surge": _price_surge,
    "network-brownout": _network_brownout,
    "kitchen-sink": _kitchen_sink,
}


def list_builtin() -> list[str]:
    """Bundled scenario names, in documentation order."""
    return list(BUILTIN_SCENARIOS)


def builtin_scenario(name: str) -> ScenarioSpec:
    """A fresh copy of the bundled scenario ``name``."""
    try:
        builder = BUILTIN_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}: expected one of {list_builtin()}"
        ) from None
    return builder()


def load_scenario(spec: str) -> ScenarioSpec:
    """Resolve ``spec`` to a scenario: a bundled name, or a path to a
    scenario JSON file (anything containing a path separator or ending
    in ``.json``)."""
    if spec in BUILTIN_SCENARIOS:
        return builtin_scenario(spec)
    path = Path(spec)
    if spec.endswith(".json") or path.exists():
        if not path.exists():
            raise FileNotFoundError(f"no scenario file at {spec!r}")
        return ScenarioSpec.load(path)
    raise ValueError(
        f"unknown scenario {spec!r}: expected one of {list_builtin()} "
        "or a path to a scenario JSON file"
    )
