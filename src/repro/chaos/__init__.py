"""repro.chaos — fault-injection scenarios and a robustness harness.

Declarative :class:`~repro.chaos.spec.ScenarioSpec` fault scenarios
(correlated preemption storms, capacity blackouts, cold-start spikes,
warning disruption, price surges, network degradation), compiled onto a
:class:`~repro.cloud.traces.SpotTrace` by
:func:`~repro.chaos.overlay.compile_scenario`, applied to live
simulations by :class:`~repro.chaos.injector.ChaosInjector`, and scored
across a policy × scenario matrix by
:func:`~repro.chaos.harness.run_matrix`.

Everything is deterministic: injections draw from per-injection RNG
streams derived from the root seed, and the harness scorecard is
byte-identical across runs with the same inputs.  The subsystem is
strictly opt-in — no import or runtime cost unless a scenario is
attached.
"""

from repro.chaos.harness import (
    BASELINE,
    POLICY_FACTORIES,
    ChaosScorecard,
    run_matrix,
    score_run,
)
from repro.chaos.injector import ChaosInjector, DegradedNetworkModel
from repro.chaos.library import (
    BUILTIN_SCENARIOS,
    builtin_scenario,
    list_builtin,
    load_scenario,
)
from repro.chaos.overlay import CompiledScenario, InjectionRecord, compile_scenario
from repro.chaos.spec import (
    CapacityBlackout,
    ColdStartSpike,
    Injection,
    NetworkDegradation,
    PreemptionStorm,
    PriceSurge,
    ScenarioSpec,
    WarningDisruption,
)

__all__ = [
    "BASELINE",
    "BUILTIN_SCENARIOS",
    "POLICY_FACTORIES",
    "CapacityBlackout",
    "ChaosInjector",
    "ChaosScorecard",
    "ColdStartSpike",
    "CompiledScenario",
    "DegradedNetworkModel",
    "Injection",
    "InjectionRecord",
    "NetworkDegradation",
    "PreemptionStorm",
    "PriceSurge",
    "ScenarioSpec",
    "WarningDisruption",
    "builtin_scenario",
    "compile_scenario",
    "list_builtin",
    "load_scenario",
    "run_matrix",
    "score_run",
]
