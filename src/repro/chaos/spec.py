"""Declarative fault-injection scenarios.

SpotHedge's whole claim is graceful behaviour under hostile cloud
dynamics, yet a recorded :class:`~repro.cloud.traces.SpotTrace` bakes
every fault into the capacity grid: preemption *pattern* (burstiness,
correlation, warning lead time) cannot be varied independently of
preemption *rate*.  A :class:`ScenarioSpec` makes those knobs explicit:
it composes timed injections — correlated preemption storms, capacity
blackouts, cold-start spikes, preemption-warning disruption, price
surges, inter-region network degradation — into a named, validated,
JSON-round-trippable document that the injector layer
(:mod:`repro.chaos.overlay`, :mod:`repro.chaos.injector`) applies to a
trace or a live simulation.

Determinism: a scenario is pure data.  Stochastic injections (the
storm's correlated hit draws) consume RNG streams derived from the run
seed at *compile* time (:func:`repro.chaos.overlay.compile_scenario`),
never at definition time, so the same ``(scenario, trace, seed)``
triple always produces the same faults.  :meth:`ScenarioSpec.digest`
is a content hash of the canonical JSON form and keys result caches.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ClassVar, Mapping, Optional

__all__ = [
    "CapacityBlackout",
    "ColdStartSpike",
    "Injection",
    "NetworkDegradation",
    "PreemptionStorm",
    "PriceSurge",
    "ScenarioSpec",
    "WarningDisruption",
]


_INJECTION_TYPES: dict[str, type["Injection"]] = {}


def _register(cls: type["Injection"]) -> type["Injection"]:
    """Class decorator adding an injection type to the kind registry."""
    if cls.kind in _INJECTION_TYPES:
        raise ValueError(f"duplicate injection kind {cls.kind!r}")
    _INJECTION_TYPES[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class Injection:
    """Base injection: one fault applied over ``[start, end)`` seconds
    of simulated time, relative to the start of the run."""

    kind: ClassVar[str] = "injection"

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"{self.kind}: negative start {self.start!r}")
        if self.end <= self.start:
            raise ValueError(
                f"{self.kind}: empty window [{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON form, ``kind`` included; tuples become lists."""
        data: dict[str, Any] = {"kind": self.kind}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            data[f.name] = value
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Injection":
        payload = dict(data)
        kind = payload.pop("kind", None)
        cls = _INJECTION_TYPES.get(kind)  # type: ignore[arg-type]
        if cls is None:
            raise ValueError(
                f"unknown injection kind {kind!r}: "
                f"expected one of {sorted(_INJECTION_TYPES)}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"{kind}: unknown fields {unknown}")
        for name, value in payload.items():
            if isinstance(value, list):
                payload[name] = tuple(value)
        return cls(**payload)


@_register
@dataclass(frozen=True)
class PreemptionStorm(Injection):
    """Correlated cross-zone preemption storm.

    Every ``pulse`` seconds inside the window, each affected zone is
    hit with probability ``hit_prob``; cross-zone dependence follows
    the common-shock Bernoulli mixture: with probability
    ``correlation`` the pulse is *systemic* and every zone shares one
    hit draw, otherwise zones draw independently.  Each zone's
    marginal hit probability is exactly ``hit_prob`` and the pairwise
    Pearson correlation of hit indicators is exactly ``correlation`` —
    the tunable counterpart of the Fig. 3 intra-region correlation
    measured by :func:`repro.analysis.correlation.preemption_correlation`.

    A hit multiplies the zone's capacity by ``1 − severity`` (floored),
    so ``severity=1.0`` reclaims everything in the zone for that pulse.
    ``zones`` empty means every zone of the target trace.
    """

    kind: ClassVar[str] = "preemption_storm"

    zones: tuple[str, ...] = ()
    hit_prob: float = 0.5
    correlation: float = 0.5
    severity: float = 1.0
    pulse: float = 300.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.hit_prob <= 1.0:
            raise ValueError(f"hit_prob {self.hit_prob} outside [0, 1]")
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError(f"correlation {self.correlation} outside [0, 1]")
        if not 0.0 < self.severity <= 1.0:
            raise ValueError(f"severity {self.severity} outside (0, 1]")
        if self.pulse <= 0:
            raise ValueError(f"non-positive pulse {self.pulse!r}")


@_register
@dataclass(frozen=True)
class CapacityBlackout(Injection):
    """Zone capacity blackout: launch failures / InsufficientCapacity.

    Caps the affected zones' launchable capacity at
    ``residual_capacity`` (default 0 — a full ICE window) for the whole
    window.  Deterministic; ``zones`` empty means every zone.
    """

    kind: ClassVar[str] = "capacity_blackout"

    zones: tuple[str, ...] = ()
    residual_capacity: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.residual_capacity < 0:
            raise ValueError(
                f"negative residual capacity {self.residual_capacity!r}"
            )


@_register
@dataclass(frozen=True)
class ColdStartSpike(Injection):
    """Provisioning/cold-start delay spike.

    Multiplies provisioning and setup delays (live simulation) or the
    replay cold start by ``factor`` for launches initiated inside the
    window — contended control planes and model-registry slowdowns.
    """

    kind: ClassVar[str] = "cold_start_spike"

    factor: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor < 1.0:
            raise ValueError(f"cold-start factor {self.factor} below 1.0")


@_register
@dataclass(frozen=True)
class WarningDisruption(Injection):
    """Preemption-warning delay and/or suppression.

    Inside the window each best-effort termination notice is dropped
    with probability ``suppress_prob`` (the instance is then reclaimed
    unwarned) and otherwise delivered ``extra_delay`` seconds late (a
    warning delayed past its kill time is also lost).  Applies to the
    live simulation only — the replica-granularity replayer has no
    warning channel.
    """

    kind: ClassVar[str] = "warning_disruption"

    suppress_prob: float = 1.0
    extra_delay: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.suppress_prob <= 1.0:
            raise ValueError(
                f"suppress_prob {self.suppress_prob} outside [0, 1]"
            )
        if self.extra_delay < 0:
            raise ValueError(f"negative extra_delay {self.extra_delay!r}")


@_register
@dataclass(frozen=True)
class PriceSurge(Injection):
    """Spot price surge: affected zones' spot unit price is multiplied
    by ``multiplier`` for the window.  ``zones`` empty means every
    zone; on-demand prices are unaffected (surges are a spot-market
    phenomenon)."""

    kind: ClassVar[str] = "price_surge"

    zones: tuple[str, ...] = ()
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.multiplier <= 0:
            raise ValueError(f"non-positive multiplier {self.multiplier!r}")


@_register
@dataclass(frozen=True)
class NetworkDegradation(Injection):
    """Inter-region network degradation: adds ``extra_rtt`` seconds to
    every cross-region round trip during the window.  ``regions``
    non-empty restricts the penalty to lookups touching one of the
    listed regions.  Live simulation only (replay has no WAN model)."""

    kind: ClassVar[str] = "network_degradation"

    extra_rtt: float = 0.1
    regions: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_rtt <= 0:
            raise ValueError(f"non-positive extra_rtt {self.extra_rtt!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, ordered composition of injections.

    Injections may overlap; capacity effects compose in declaration
    order (storms reduce what blackouts left, and vice versa), delay
    and price factors multiply.  The spec is validated on construction
    and serialises to/from JSON losslessly.
    """

    name: str
    injections: tuple[Injection, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a non-empty name")
        if not self.injections:
            raise ValueError(f"scenario {self.name!r} has no injections")
        for injection in self.injections:
            if not isinstance(injection, Injection):
                raise TypeError(
                    f"scenario {self.name!r}: {injection!r} is not an Injection"
                )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def last_end(self) -> float:
        """End of the latest injection window."""
        return max(injection.end for injection in self.injections)

    def windows(self) -> list[tuple[float, float]]:
        """All injection windows, in declaration order."""
        return [(i.start, i.end) for i in self.injections]

    def of_kind(self, kind: str) -> list[Injection]:
        return [i for i in self.injections if i.kind == kind]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "injections": [i.to_dict() for i in self.injections],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            injections=tuple(
                Injection.from_dict(entry) for entry in data["injections"]
            ),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())

    def digest(self) -> str:
        """Content digest of the canonical JSON form.

        Folded into the transformed trace's digest by
        :func:`repro.chaos.overlay.compile_scenario`, which is how
        :class:`repro.experiments.results.ReplayCache` keys chaos runs
        apart from no-chaos runs over the same base trace.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()
