"""Render a telemetry event log into a human-readable summary.

Backs the ``repro events`` CLI subcommand: given the typed events read
back from a JSONL log, produce the run's timeline and aggregates —
replica lifecycle table, preemption counts per zone, per-leg latency
percentiles from request spans, and policy decision counts.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.sim.metrics import percentile
from repro.telemetry.events import TelemetryEvent

__all__ = ["EventLogSummary", "format_summary", "summarize"]


def _fmt_time(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.0f}s"


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> list[str]:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    out = [line, "-" * len(line)]
    for row in rows:
        out.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return out


@dataclass
class _ReplicaRow:
    replica_id: int
    zone: str = ""
    spot: Optional[bool] = None
    launched: Optional[float] = None
    ready: Optional[float] = None
    ended: Optional[float] = None
    outcome: str = "running"


@dataclass
class _LoadRow:
    """Aggregated ``replica.load`` samples for one replica."""

    replica_id: int
    zone: str = ""
    samples: int = 0
    peak_batch: int = 0
    peak_queue: int = 0
    shed: int = 0  # cumulative counter: the last sample carries the max


@dataclass
class EventLogSummary:
    """Structured aggregates of one event log."""

    total_events: int = 0
    start_time: float = math.nan
    end_time: float = math.nan
    counts_by_kind: Counter = field(default_factory=Counter)
    replicas: dict[int, _ReplicaRow] = field(default_factory=dict)
    preemptions_by_zone: Counter = field(default_factory=Counter)
    warned_preemptions: int = 0
    span_legs: dict[str, list[float]] = field(default_factory=dict)
    failed_spans: int = 0
    completed_spans: int = 0
    policy_decisions: Counter = field(default_factory=Counter)
    replica_load: dict[int, _LoadRow] = field(default_factory=dict)
    shed_requests: int = 0
    #: Events the producing sink dropped (``telemetry.dropped`` carries a
    #: cumulative counter; the last marker wins).
    dropped_total: int = 0
    lb_fallbacks: int = 0
    #: (time, budget name, state) per SLO burn-rate alert transition.
    burn_alerts: list[tuple[float, str, str]] = field(default_factory=list)
    rebalance_times: list[float] = field(default_factory=list)
    autoscale_moves: list[tuple[float, int, int]] = field(default_factory=list)
    final_cost: Optional[tuple[float, float]] = None  # (spot, od)
    chaos_scenario: Optional[str] = None
    #: (time, injection kind, zone count, detail) per fault.
    chaos_injections: list[tuple[float, str, int, str]] = field(default_factory=list)
    chaos_injections_by_kind: Counter = field(default_factory=Counter)
    chaos_ended_at: Optional[float] = None
    #: tenant -> decision counts (multi-tenant control-plane runs only).
    tenant_admissions: dict[str, Counter] = field(default_factory=dict)
    #: tenant -> {"won": n, "suffered": n} strict-priority evictions.
    tenant_evictions: dict[str, Counter] = field(default_factory=dict)
    #: tenant -> latest (spot, on_demand) cost snapshot.
    tenant_cost: dict[str, tuple[float, float]] = field(default_factory=dict)


def summarize(events: Sequence[TelemetryEvent]) -> EventLogSummary:
    """Aggregate a typed event stream (see :func:`format_summary`)."""
    out = EventLogSummary()
    legs = {name: [] for name in ("queue", "prefill", "decode", "wan", "total")}
    for event in events:
        out.total_events += 1
        out.counts_by_kind[event.kind] += 1
        if not math.isnan(event.time):
            if math.isnan(out.start_time):
                out.start_time = event.time
            out.end_time = event.time

        kind = event.kind
        if kind == "replica.load":
            # Load samples are periodic snapshots, not lifecycle
            # transitions — they must not create timeline rows.
            load = out.replica_load.setdefault(
                event.replica_id, _LoadRow(event.replica_id, event.zone)
            )
            load.samples += 1
            load.peak_batch = max(load.peak_batch, event.executing)
            load.peak_queue = max(load.peak_queue, event.queued)
            load.shed = max(load.shed, event.shed)
            continue
        if kind.startswith("replica.") and getattr(event, "replica_id", -1) >= 0:
            row = out.replicas.setdefault(
                event.replica_id, _ReplicaRow(event.replica_id)
            )
            row.zone = getattr(event, "zone", row.zone) or row.zone
            if hasattr(event, "spot"):
                row.spot = event.spot
            if kind == "replica.launch":
                row.launched = event.time
            elif kind == "replica.ready":
                row.ready = event.time
            elif kind == "replica.preempted":
                row.ended = event.time
                row.outcome = "preempted" + (" (warned)" if event.warned else "")
            elif kind == "replica.terminated":
                row.ended = event.time
                row.outcome = event.reason
            elif kind == "replica.launch_failed":
                row.ended = event.time
                row.outcome = "launch failed"
        if kind == "request.shed":
            out.shed_requests += 1
        if kind == "replica.preempted":
            out.preemptions_by_zone[getattr(event, "zone", "")] += 1
            if getattr(event, "warned", False):
                out.warned_preemptions += 1
        elif kind == "request.span":
            for name in ("queue", "prefill", "decode", "wan", "total"):
                legs[name].append(getattr(event, name))
            if event.status == "ok":
                out.completed_spans += 1
            else:
                out.failed_spans += 1
        elif kind == "policy.decision":
            out.policy_decisions[event.decision] += 1
            if event.decision == "rebalance":
                out.rebalance_times.append(event.time)
        elif kind == "autoscale.target":
            out.autoscale_moves.append((event.time, event.old_target, event.new_target))
        elif kind == "cost.snapshot":
            out.final_cost = (event.spot, event.on_demand)
        elif kind == "telemetry.dropped":
            out.dropped_total = max(out.dropped_total, event.dropped_total)
        elif kind == "lb.fallback":
            out.lb_fallbacks += 1
        elif kind == "slo.burn_alert":
            out.burn_alerts.append((event.time, event.budget, event.state))
        elif kind == "chaos.scenario_started":
            out.chaos_scenario = event.scenario
        elif kind == "chaos.injected":
            out.chaos_scenario = out.chaos_scenario or event.scenario
            out.chaos_injections.append(
                (event.time, event.injection, len(event.zones), event.detail)
            )
            out.chaos_injections_by_kind[event.injection] += 1
        elif kind == "chaos.scenario_ended":
            out.chaos_ended_at = event.time
        elif kind == "tenant.admission":
            out.tenant_admissions.setdefault(event.tenant, Counter())[
                event.decision
            ] += 1
        elif kind == "tenant.eviction":
            out.tenant_evictions.setdefault(event.tenant, Counter())["won"] += 1
            out.tenant_evictions.setdefault(event.victim, Counter())[
                "suffered"
            ] += 1
        elif kind == "tenant.cost":
            out.tenant_cost[event.tenant] = (event.spot, event.on_demand)
    out.span_legs = legs
    return out


def format_summary(
    events: Sequence[TelemetryEvent],
    *,
    replica_limit: int = 40,
) -> str:
    """Human-readable multi-section report of an event log."""
    s = summarize(events)
    lines: list[str] = []
    span = s.end_time - s.start_time if s.total_events else math.nan
    lines.append(
        f"{s.total_events} events over "
        f"{_fmt_time(span if not math.isnan(span) else None)} "
        f"(t={_fmt_time(s.start_time)} .. t={_fmt_time(s.end_time)})"
    )
    if s.dropped_total:
        lines.append(
            f"WARNING: the producing sink dropped {s.dropped_total} events "
            "(ring buffer overflow) -- counts below undercount the run"
        )

    lines.append("")
    lines.append("events by kind:")
    lines.extend(
        _table(
            ["kind", "count"],
            [[kind, count] for kind, count in sorted(s.counts_by_kind.items())],
        )
    )

    if s.replicas:
        lines.append("")
        lines.append("replica timeline:")
        rows = []
        ordered = sorted(s.replicas.values(), key=lambda r: (r.launched or 0.0, r.replica_id))
        for row in ordered[:replica_limit]:
            market = "-" if row.spot is None else ("spot" if row.spot else "on-demand")
            rows.append(
                [
                    row.replica_id,
                    market,
                    row.zone or "-",
                    _fmt_time(row.launched),
                    _fmt_time(row.ready),
                    _fmt_time(row.ended),
                    row.outcome,
                ]
            )
        lines.extend(
            _table(
                ["replica", "market", "zone", "launched", "ready", "ended", "outcome"],
                rows,
            )
        )
        if len(s.replicas) > replica_limit:
            lines.append(f"... {len(s.replicas) - replica_limit} more replicas")

    if s.preemptions_by_zone:
        lines.append("")
        lines.append(
            f"preemptions: {sum(s.preemptions_by_zone.values())} total "
            f"({s.warned_preemptions} warned)"
        )
        lines.extend(
            _table(
                ["zone", "preemptions"],
                [[zone, n] for zone, n in s.preemptions_by_zone.most_common()],
            )
        )

    if s.completed_spans or s.failed_spans:
        lines.append("")
        lines.append(
            f"request spans: {s.completed_spans} completed, {s.failed_spans} failed"
        )
        rows = []
        for leg in ("queue", "prefill", "decode", "wan", "total"):
            values = s.span_legs.get(leg, [])
            rows.append(
                [
                    leg,
                    f"{percentile(values, 50):.2f}s",
                    f"{percentile(values, 90):.2f}s",
                    f"{percentile(values, 99):.2f}s",
                ]
            )
        lines.extend(_table(["leg", "p50", "p90", "p99"], rows))

    if s.replica_load:
        lines.append("")
        total_shed = sum(row.shed for row in s.replica_load.values())
        lines.append(
            f"replica load ({s.shed_requests or total_shed} requests shed):"
        )
        rows = []
        for row in sorted(s.replica_load.values(), key=lambda r: r.replica_id):
            rows.append(
                [
                    row.replica_id,
                    row.zone or "-",
                    row.samples,
                    row.peak_batch,
                    row.peak_queue,
                    row.shed,
                ]
            )
        lines.extend(
            _table(
                ["replica", "zone", "samples", "peak batch", "peak queue", "shed"],
                rows,
            )
        )

    if s.policy_decisions:
        lines.append("")
        lines.append("policy decisions:")
        lines.extend(
            _table(
                ["decision", "count"],
                [[name, n] for name, n in sorted(s.policy_decisions.items())],
            )
        )
        if s.rebalance_times:
            stamps = ", ".join(_fmt_time(t) for t in s.rebalance_times[:10])
            more = (
                f" (+{len(s.rebalance_times) - 10} more)"
                if len(s.rebalance_times) > 10
                else ""
            )
            lines.append(f"Z_P rebalances at: {stamps}{more}")

    if s.autoscale_moves:
        lines.append("")
        moves = ", ".join(
            f"t={_fmt_time(t)}: {old}->{new}" for t, old, new in s.autoscale_moves[:10]
        )
        lines.append(f"autoscale moves: {moves}")

    if s.lb_fallbacks:
        lines.append("")
        lines.append(f"load-balancer locality fallbacks: {s.lb_fallbacks}")

    if s.burn_alerts:
        firing = sum(1 for _, _, state in s.burn_alerts if state == "firing")
        lines.append("")
        lines.append(
            f"SLO burn alerts: {len(s.burn_alerts)} transitions ({firing} firing)"
        )
        lines.extend(
            _table(
                ["time", "budget", "state"],
                [
                    [_fmt_time(t), budget, state]
                    for t, budget, state in s.burn_alerts[:12]
                ],
            )
        )
        if len(s.burn_alerts) > 12:
            lines.append(f"... {len(s.burn_alerts) - 12} more transitions")

    if s.chaos_scenario is not None:
        lines.append("")
        ended = (
            f", ended t={_fmt_time(s.chaos_ended_at)}"
            if s.chaos_ended_at is not None
            else ""
        )
        lines.append(
            f"chaos scenario {s.chaos_scenario!r}: "
            f"{len(s.chaos_injections)} injections{ended}"
        )
        if s.chaos_injections_by_kind:
            lines.extend(
                _table(
                    ["injection", "count"],
                    [
                        [kind, n]
                        for kind, n in sorted(s.chaos_injections_by_kind.items())
                    ],
                )
            )
        for time, kind, n_zones, detail in s.chaos_injections[:10]:
            scope = f"{n_zones} zones" if n_zones != 1 else "1 zone"
            suffix = f" ({detail})" if detail else ""
            lines.append(f"  t={_fmt_time(time)}: {kind} hit {scope}{suffix}")
        if len(s.chaos_injections) > 10:
            lines.append(f"  ... {len(s.chaos_injections) - 10} more injections")

    tenant_names = sorted(
        set(s.tenant_admissions) | set(s.tenant_evictions) | set(s.tenant_cost)
    )
    if tenant_names:
        lines.append("")
        lines.append("tenants:")
        rows = []
        for name in tenant_names:
            admissions = s.tenant_admissions.get(name, Counter())
            evictions = s.tenant_evictions.get(name, Counter())
            cost = s.tenant_cost.get(name)
            rows.append(
                [
                    name,
                    admissions.get("admitted", 0),
                    admissions.get("rejected", 0),
                    evictions.get("won", 0),
                    evictions.get("suffered", 0),
                    "-" if cost is None else f"${cost[0] + cost[1]:.2f}",
                ]
            )
        lines.extend(
            _table(
                ["tenant", "admitted", "rejected", "evict won", "evict lost", "cost"],
                rows,
            )
        )

    if s.final_cost is not None:
        spot, od = s.final_cost
        lines.append("")
        lines.append(f"cost: ${spot + od:.2f} (spot ${spot:.2f} / on-demand ${od:.2f})")

    return "\n".join(lines)
