"""Typed telemetry events and the event bus.

Every observable fact about a run — replica lifecycle transitions,
preemptions and their warnings, autoscaling moves, load-balancer routing,
per-request spans, policy decisions, cost snapshots — is a slotted
dataclass with a stable ``kind`` string and a flat, JSON-friendly field
set.  Components publish events onto an :class:`EventBus`; sinks
(``repro.telemetry.sinks``) consume them.

Events are immutable *by convention*, not enforcement: construction is
on the simulation hot path, and a plain slotted dataclass builds ~3x
faster than a frozen one (``frozen=True`` routes every field through
``object.__setattr__``).  Sinks must never mutate an event they accept —
the same object is shared by every sink on the bus.

The bus is *zero-overhead when disabled*: publishers are expected to
guard construction of the event object itself::

    bus = self.engine.telemetry
    if bus.enabled:
        bus.emit(ReplicaReady(time=now, replica_id=r.id, zone=z, spot=True))

so a run without telemetry pays one attribute load and one branch per
would-be event, nothing more.  :data:`NULL_BUS` is the shared disabled
bus used wherever no telemetry was configured.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, ClassVar, Iterable

__all__ = [
    "NULL_BUS",
    "AutoscaleDecision",
    "AutoscalerSample",
    "ChaosInjected",
    "ChaosScenarioEnded",
    "ChaosScenarioStarted",
    "CostSnapshot",
    "EventBus",
    "EventsDropped",
    "FleetSample",
    "GenericEvent",
    "LoadBalancerFallback",
    "PolicyDecision",
    "PreemptWarning",
    "ProbeFailure",
    "ProfilePhase",
    "ReplicaLaunch",
    "ReplicaLaunchFailed",
    "ReplicaLoadSample",
    "ReplicaPreempted",
    "ReplicaReady",
    "ReplicaTerminated",
    "RequestShed",
    "RequestSpanEvent",
    "RouteDecision",
    "SloBurnAlert",
    "SweepProgress",
    "TelemetryEvent",
    "TenantAdmission",
    "TenantCostSnapshot",
    "TenantEviction",
    "ZoneCapacity",
    "event_from_dict",
    "event_kinds",
]


_REGISTRY: dict[str, type["TelemetryEvent"]] = {}


def _register(cls: type["TelemetryEvent"]) -> type["TelemetryEvent"]:
    """Class decorator adding an event type to the kind registry."""
    if cls.kind in _REGISTRY:
        raise ValueError(f"duplicate event kind {cls.kind!r}")
    _REGISTRY[cls.kind] = cls
    return cls


def event_kinds() -> list[str]:
    """All registered event kind strings, sorted."""
    return sorted(_REGISTRY)


@dataclass(slots=True)
class TelemetryEvent:
    """Base event: a simulated timestamp plus a class-level ``kind``."""

    kind: ClassVar[str] = "event"

    time: float

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-serialisable representation, ``kind`` included."""
        data: dict[str, Any] = {"kind": self.kind}
        for f in dataclasses.fields(self):
            data[f.name] = getattr(self, f.name)
        return data


@_register
@dataclass(slots=True)
class ReplicaLaunch(TelemetryEvent):
    """A replica's instances were requested from the cloud."""

    kind: ClassVar[str] = "replica.launch"

    replica_id: int
    zone: str
    spot: bool


@_register
@dataclass(slots=True)
class ReplicaReady(TelemetryEvent):
    """All of a replica's workers reached READY; it can serve traffic."""

    kind: ClassVar[str] = "replica.ready"

    replica_id: int
    zone: str
    spot: bool


@_register
@dataclass(slots=True)
class ReplicaPreempted(TelemetryEvent):
    """The cloud reclaimed a replica (spot preemption or crash)."""

    kind: ClassVar[str] = "replica.preempted"

    replica_id: int
    zone: str
    spot: bool
    warned: bool = False


@_register
@dataclass(slots=True)
class ReplicaTerminated(TelemetryEvent):
    """The controller tore a replica down deliberately."""

    kind: ClassVar[str] = "replica.terminated"

    replica_id: int
    zone: str
    spot: bool
    reason: str = "scale_down"  # scale_down | drained | probe_failure | teardown


@_register
@dataclass(slots=True)
class ReplicaLaunchFailed(TelemetryEvent):
    """A launch attempt died before READY (InsufficientCapacity etc.).

    ``replica_id`` is ``-1`` for launch attempts that never got a
    replica object (the replica-granularity trace replayer).
    """

    kind: ClassVar[str] = "replica.launch_failed"

    replica_id: int
    zone: str
    spot: bool


@_register
@dataclass(slots=True)
class PreemptWarning(TelemetryEvent):
    """Best-effort termination notice arrived for a replica."""

    kind: ClassVar[str] = "replica.preempt_warning"

    replica_id: int
    zone: str


@_register
@dataclass(slots=True)
class ProbeFailure(TelemetryEvent):
    """A readiness probe timed out; the replica will be replaced."""

    kind: ClassVar[str] = "probe.failure"

    replica_id: int
    zone: str


@_register
@dataclass(slots=True)
class AutoscaleDecision(TelemetryEvent):
    """The autoscaler moved N_Tar.

    ``mode`` is the signal that drove the move (``qps`` or ``slo``);
    ``slo_violation_rate`` is the fraction of recent first-token /
    per-token samples that violated their SLO (0 in qps mode).
    """

    kind: ClassVar[str] = "autoscale.target"

    old_target: int
    new_target: int
    request_rate: float
    mode: str = "qps"
    slo_violation_rate: float = 0.0


@_register
@dataclass(slots=True)
class RouteDecision(TelemetryEvent):
    """The load balancer routed one request to a replica."""

    kind: ClassVar[str] = "lb.route"

    request_id: int
    replica_id: int
    zone: str
    balancer: str
    ongoing: int


@_register
@dataclass(slots=True)
class RequestSpanEvent(TelemetryEvent):
    """Per-request latency breakdown (see ``repro.telemetry.spans``).

    ``queue + prefill + decode + wan == total`` exactly; for completed
    requests ``total`` equals the client-recorded end-to-end latency.
    """

    kind: ClassVar[str] = "request.span"

    request_id: int
    status: str  # ok | failed
    queue: float
    prefill: float
    decode: float
    wan: float
    total: float
    retries: int
    replica_id: int = -1
    zone: str = ""
    #: Batch occupancy when the request entered its slot (0 = unknown,
    #: e.g. spans recorded before batching telemetry existed).
    batch_size: int = 0
    #: Server queue depth observed at submission time.
    queue_depth: int = 0


@_register
@dataclass(slots=True)
class ReplicaLoadSample(TelemetryEvent):
    """Periodic snapshot of one replica's load (controller tick).

    ``executing`` is batch occupancy (requests holding a batching slot),
    ``queued`` the server-side FIFO depth behind it, and ``shed`` the
    cumulative admission-control rejections on this replica.
    """

    kind: ClassVar[str] = "replica.load"

    replica_id: int
    zone: str
    executing: int
    queued: int
    shed: int = 0


@_register
@dataclass(slots=True)
class RequestShed(TelemetryEvent):
    """Admission control rejected a request (bounded queue full)."""

    kind: ClassVar[str] = "request.shed"

    request_id: int
    replica_id: int
    zone: str
    queue_depth: int


@_register
@dataclass(slots=True)
class ZoneCapacity(TelemetryEvent):
    """A zone's spot capacity changed in the trace."""

    kind: ClassVar[str] = "zone.capacity"

    zone: str
    capacity: int


@_register
@dataclass(slots=True)
class PolicyDecision(TelemetryEvent):
    """One audited policy decision (see ``repro.telemetry.audit``)."""

    kind: ClassVar[str] = "policy.decision"

    policy: str
    decision: str
    data: dict[str, Any] = field(default_factory=dict)


@_register
@dataclass(slots=True)
class CostSnapshot(TelemetryEvent):
    """Accrued spot/on-demand cost at a point in time."""

    kind: ClassVar[str] = "cost.snapshot"

    spot: float
    on_demand: float
    total: float


@_register
@dataclass(slots=True)
class SweepProgress(TelemetryEvent):
    """One grid point of a parameter sweep finished.

    ``time`` is wall-clock (``time.monotonic``), not simulated time —
    sweeps are an offline driver around many simulations.  ``cached``
    marks points served from the on-disk replay cache.
    """

    kind: ClassVar[str] = "sweep.point"

    index: int
    total: int
    label: str
    ok: bool = True
    cached: bool = False


@_register
@dataclass(slots=True)
class FleetSample(TelemetryEvent):
    """Ready-replica count changed (replica-granularity replay)."""

    kind: ClassVar[str] = "fleet.ready"

    ready: int
    target: int


@_register
@dataclass(slots=True)
class ChaosScenarioStarted(TelemetryEvent):
    """A chaos scenario was attached to the run (see ``repro.chaos``)."""

    kind: ClassVar[str] = "chaos.scenario_started"

    scenario: str
    injections: int = 0


@_register
@dataclass(slots=True)
class ChaosInjected(TelemetryEvent):
    """One concrete chaos fault fired (storm pulse, blackout, ...).

    ``zones`` is a plain list (JSON-friendly); empty means the fault is
    not zone-scoped (cold-start spikes, warning disruption).
    """

    kind: ClassVar[str] = "chaos.injected"

    scenario: str
    injection: str  # injection kind string, e.g. "preemption_storm"
    zones: list[str] = field(default_factory=list)
    detail: str = ""


@_register
@dataclass(slots=True)
class ChaosScenarioEnded(TelemetryEvent):
    """The last injection window of a chaos scenario closed."""

    kind: ClassVar[str] = "chaos.scenario_ended"

    scenario: str
    injected: int = 0


@_register
@dataclass(slots=True)
class AutoscalerSample(TelemetryEvent):
    """Periodic autoscaler internals (controller tick).

    Complements :class:`AutoscaleDecision` (emitted only when N_Tar
    moves): the sample carries the signals the autoscaler *sees* every
    tick, so dashboards can plot request rate and SLO attainment
    between target moves.
    """

    kind: ClassVar[str] = "autoscale.sample"

    target: int
    candidate: int
    request_rate: float
    slo_violation_rate: float = 0.0


@_register
@dataclass(slots=True)
class LoadBalancerFallback(TelemetryEvent):
    """A locality-aware balancer found every local replica overloaded
    and fell back to the globally least-loaded one (§6)."""

    kind: ClassVar[str] = "lb.fallback"

    request_id: int
    replica_id: int
    balancer: str


@_register
@dataclass(slots=True)
class SloBurnAlert(TelemetryEvent):
    """A multi-window SLO burn-rate alert changed state.

    ``burn_fast``/``burn_slow`` are error-budget burn rates over the
    fast and slow trailing windows (1.0 = consuming the budget exactly
    at the sustainable rate); the alert fires when *both* exceed the
    monitor's threshold and resolves when either drops back below it.
    """

    kind: ClassVar[str] = "slo.burn_alert"

    budget: str  # budget name, e.g. "ttft" / "availability"
    state: str  # firing | resolved
    burn_fast: float
    burn_slow: float
    window_fast: float
    window_slow: float
    threshold: float


@_register
@dataclass(slots=True)
class ProfilePhase(TelemetryEvent):
    """Aggregated timings of one profiler phase (wall-clock seconds).

    ``time`` is wall-clock (``telemetry.clock``), not simulated time —
    the profiler measures the harness itself, like
    :class:`SweepProgress`.  ``sampled`` marks phases timed on a stride
    of hot-loop iterations rather than on every call.
    """

    kind: ClassVar[str] = "profile.phase"

    phase: str
    calls: int
    total_s: float
    max_s: float
    sampled: bool = False


@_register
@dataclass(slots=True)
class EventsDropped(TelemetryEvent):
    """A bounded sink dropped events (ring buffer overflow).

    Emitted by code that drains a :class:`~repro.telemetry.sinks.
    RingBufferSink` so the loss is visible in ``repro events`` output
    instead of silent; ``dropped_total`` is cumulative.
    """

    kind: ClassVar[str] = "telemetry.dropped"

    dropped_total: int
    capacity: int = 0


@_register
@dataclass(slots=True)
class TenantAdmission(TelemetryEvent):
    """The capacity broker decided one tenant spot launch request.

    ``decision`` is ``admitted`` (delegated with capacity held),
    ``rejected`` (quota denial — fails like InsufficientCapacity), or
    ``passthrough`` (the zone had no room anyway; the cloud's natural
    failure path answers).
    """

    kind: ClassVar[str] = "tenant.admission"

    tenant: str
    zone: str
    decision: str  # admitted | rejected | passthrough
    mode: str = "fair_share"


@_register
@dataclass(slots=True)
class TenantEviction(TelemetryEvent):
    """Strict-priority admission evicted a lower-priority tenant's spot
    instance to make room for a higher-priority launch."""

    kind: ClassVar[str] = "tenant.eviction"

    tenant: str  # the tenant gaining capacity
    victim: str  # the tenant losing an instance
    zone: str
    instance_id: int = -1


@_register
@dataclass(slots=True)
class TenantCostSnapshot(TelemetryEvent):
    """Accrued cost of one tenant at a point in time (fleet roll-up)."""

    kind: ClassVar[str] = "tenant.cost"

    tenant: str
    spot: float
    on_demand: float
    total: float


@dataclass(slots=True)
class GenericEvent(TelemetryEvent):
    """Fallback for unknown kinds read back from a JSONL log.

    Keeps forward compatibility: logs written by a newer schema still
    load, with unrecognised fields preserved in ``data``.
    """

    name: str = "generic"
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.name, "time": self.time, **self.data}


def event_from_dict(payload: dict[str, Any]) -> TelemetryEvent:
    """Reconstruct a typed event from its :meth:`TelemetryEvent.to_dict`
    form; unknown kinds come back as :class:`GenericEvent`."""
    data = dict(payload)
    kind = data.pop("kind", "generic")
    cls = _REGISTRY.get(kind)
    if cls is None:
        time = float(data.pop("time", math.nan))
        return GenericEvent(time=time, name=kind, data=data)
    known = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in known})


class EventBus:
    """Fans events out to attached sinks.

    ``enabled`` is a plain attribute (not a property) so the hot-path
    guard ``if bus.enabled`` costs one dict lookup.  A bus with no sinks
    is disabled; attaching the first sink enables it.
    """

    def __init__(self, sinks: Iterable[Any] = ()) -> None:
        self._sinks: list[Any] = list(sinks)
        self.enabled: bool = bool(self._sinks)

    def attach(self, sink: Any) -> None:
        """Add a sink (anything with ``accept(event)``)."""
        self._sinks.append(sink)
        self.enabled = True

    @property
    def sinks(self) -> list[Any]:
        return list(self._sinks)

    def emit(self, event: TelemetryEvent) -> None:
        """Deliver one event to every sink.  No-op when disabled."""
        if not self.enabled:
            return
        for sink in self._sinks:
            sink.accept(event)

    def close(self) -> None:
        """Close every sink that supports it (flushes file sinks)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class _NullBus(EventBus):
    """The shared always-disabled bus.  Attaching a sink is an error —
    it would silently enable telemetry for every component that ever
    defaulted to the null bus."""

    def attach(self, sink: Any) -> None:
        raise RuntimeError(
            "cannot attach a sink to the shared null bus; "
            "construct an EventBus and pass it explicitly"
        )


NULL_BUS = _NullBus()
