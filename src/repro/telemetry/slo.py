"""SLO error budgets and multi-window burn-rate monitors.

An :class:`SloBudget` states an objective — "99% of requests see TTFT
under 2 s", "the fleet is at target 99.9% of the time" — as a target
*good fraction*; its **error budget** is ``1 - target``.  The **burn
rate** over a trailing window is::

    burn = bad_fraction_in_window / error_budget

``burn == 1`` consumes the budget exactly at the sustainable rate; at
``burn == 14.4`` a 30-day budget is gone in 50 hours, the classic
page-worthy threshold from the SRE workbook.

:class:`BurnRateMonitor` implements the standard *multi-window* alert:
it fires only when **both** a fast window (catches the spike quickly,
noisy alone) and a slow window (confirms it is sustained) exceed the
threshold, and resolves when either drops back below.  Transitions are
edge-triggered :class:`~repro.telemetry.events.SloBurnAlert` events;
steady state emits nothing.

Monitors consume (time, good/bad) observations.  :class:`SloMonitorSink`
adapts the event bus: ``request.span`` events feed TTFT / TPOT / latency
budgets, ``fleet.ready`` samples feed a time-weighted availability
budget (ready >= target counts as good seconds).  Everything is pure
arithmetic on simulated timestamps — deterministic given the same
event stream.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.telemetry.events import (
    NULL_BUS,
    EventBus,
    SloBurnAlert,
    TelemetryEvent,
)

__all__ = [
    "BurnRateMonitor",
    "SloBudget",
    "SloMonitorSink",
    "burn_rate",
    "default_budgets",
]


def burn_rate(bad_fraction: float, error_budget: float) -> float:
    """Budget burn rate; infinite when the budget is zero and anything
    is bad, zero when nothing is bad."""
    if bad_fraction <= 0.0:
        return 0.0
    if error_budget <= 0.0:
        return math.inf
    return bad_fraction / error_budget


@dataclass(frozen=True)
class SloBudget:
    """One service-level objective.

    ``threshold_s`` applies to latency-style budgets (an observation is
    *bad* when its value exceeds the threshold); availability-style
    budgets feed good/bad directly and leave it NaN.
    """

    name: str
    target: float  # e.g. 0.99 -> 1% error budget
    threshold_s: float = math.nan
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")

    @property
    def error_budget(self) -> float:
        # Rounded to kill float representation error: a target of 0.99
        # means exactly a 1% budget, so a bad fraction of exactly 10%
        # burns at exactly 10.0 (the threshold boundary is well-defined).
        return round(1.0 - self.target, 12)


class _Window:
    """Bad-fraction accounting over one trailing window.

    Holds ``(time, weight, bad_weight)`` observations; request-style
    budgets use weight 1 per request, availability uses seconds of
    fleet state.  Pruning is O(evicted) amortised.
    """

    __slots__ = ("horizon_s", "_obs", "_weight", "_bad")

    def __init__(self, horizon_s: float) -> None:
        if horizon_s <= 0:
            raise ValueError(f"window must be positive, got {horizon_s}")
        self.horizon_s = horizon_s
        self._obs: deque[tuple[float, float, float]] = deque()
        self._weight = 0.0
        self._bad = 0.0

    def add(self, time: float, weight: float, bad_weight: float) -> None:
        self._obs.append((time, weight, bad_weight))
        self._weight += weight
        self._bad += bad_weight
        self.prune(time)

    def prune(self, now: float) -> None:
        cutoff = now - self.horizon_s
        obs = self._obs
        while obs and obs[0][0] <= cutoff:
            _, weight, bad = obs.popleft()
            self._weight -= weight
            self._bad -= bad

    def bad_fraction(self) -> float:
        if self._weight <= 0.0:
            return 0.0
        # Clamp accumulated float drift out of [0, 1].
        return min(max(self._bad / self._weight, 0.0), 1.0)


class BurnRateMonitor:
    """Multi-window burn-rate alerting for one budget.

    ``window_fast``/``window_slow`` are trailing horizons in simulated
    seconds (fast < slow); ``threshold`` is the burn rate both windows
    must exceed for the alert to fire.  ``observe`` feeds one good/bad
    observation; ``observe_value`` applies the budget's latency
    threshold.  Both return the :class:`SloBurnAlert` emitted on a
    state transition (also published to ``bus``), or ``None``.
    """

    def __init__(
        self,
        budget: SloBudget,
        *,
        window_fast: float = 300.0,
        window_slow: float = 3600.0,
        threshold: float = 10.0,
        bus: Optional[EventBus] = None,
    ) -> None:
        if window_fast >= window_slow:
            raise ValueError(
                f"fast window ({window_fast}) must be shorter than slow "
                f"({window_slow})"
            )
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.budget = budget
        self.window_fast = window_fast
        self.window_slow = window_slow
        self.threshold = threshold
        self.bus = bus if bus is not None else NULL_BUS
        self.firing = False
        self.transitions = 0
        self._fast = _Window(window_fast)
        self._slow = _Window(window_slow)

    # -- feeding --------------------------------------------------------
    def observe(
        self, time: float, *, bad: bool = False, weight: float = 1.0
    ) -> Optional[SloBurnAlert]:
        """One observation: ``weight`` units of which ``bad`` marks all
        or none as budget-consuming."""
        bad_weight = weight if bad else 0.0
        self._fast.add(time, weight, bad_weight)
        self._slow.add(time, weight, bad_weight)
        return self._evaluate(time)

    def observe_value(self, time: float, value: float) -> Optional[SloBurnAlert]:
        """Latency-style observation judged against ``threshold_s``."""
        threshold_s = self.budget.threshold_s
        if math.isnan(threshold_s):
            raise ValueError(
                f"budget {self.budget.name!r} has no latency threshold; "
                "use observe(bad=...)"
            )
        return self.observe(time, bad=value > threshold_s)

    def advance(self, time: float) -> Optional[SloBurnAlert]:
        """Prune windows to ``time`` without adding an observation —
        lets an alert resolve after traffic stops."""
        self._fast.prune(time)
        self._slow.prune(time)
        return self._evaluate(time)

    # -- state ----------------------------------------------------------
    def burn_fast(self) -> float:
        return burn_rate(self._fast.bad_fraction(), self.budget.error_budget)

    def burn_slow(self) -> float:
        return burn_rate(self._slow.bad_fraction(), self.budget.error_budget)

    def _evaluate(self, time: float) -> Optional[SloBurnAlert]:
        fast = self.burn_fast()
        slow = self.burn_slow()
        should_fire = fast >= self.threshold and slow >= self.threshold
        if should_fire == self.firing:
            return None
        self.firing = should_fire
        self.transitions += 1
        alert = SloBurnAlert(
            time,
            self.budget.name,
            "firing" if should_fire else "resolved",
            fast if math.isfinite(fast) else -1.0,
            slow if math.isfinite(slow) else -1.0,
            self.window_fast,
            self.window_slow,
            self.threshold,
        )
        if self.bus.enabled:
            self.bus.emit(alert)
        return alert


def default_budgets() -> dict[str, SloBudget]:
    """The serving budgets the paper's evaluation cares about: client
    TTFT and TPOT attainment (§6.3's deadline family) plus fleet
    availability (Fig. 7/10 timelines)."""
    return {
        "ttft": SloBudget(
            "ttft", 0.99, 10.0, "99% of requests start streaming within 10 s"
        ),
        "latency": SloBudget(
            "latency", 0.99, 60.0, "99% of requests finish within 60 s"
        ),
        "availability": SloBudget(
            "availability", 0.999, math.nan, "fleet at target 99.9% of the time"
        ),
    }


class SloMonitorSink:
    """Event-bus sink feeding burn-rate monitors from the event stream.

    * ``request.span`` (status ok): TTFT budget sees queue+prefill+wan,
      latency budget sees the end-to-end total; failed spans count as
      bad for both.
    * ``fleet.ready``: availability is time-weighted — the interval
      since the previous sample is good seconds when the fleet *was* at
      target over it, bad seconds otherwise.

    Alerts go to ``alert_bus`` (typically the same bus this sink is
    attached to — re-entrant emission is safe because sinks run
    synchronously and ``SloBurnAlert`` triggers no handler here).
    """

    def __init__(
        self,
        budgets: Optional[dict[str, SloBudget]] = None,
        *,
        window_fast: float = 300.0,
        window_slow: float = 3600.0,
        threshold: float = 10.0,
        alert_bus: Optional[EventBus] = None,
    ) -> None:
        budgets = budgets if budgets is not None else default_budgets()
        self.monitors = {
            name: BurnRateMonitor(
                budget,
                window_fast=window_fast,
                window_slow=window_slow,
                threshold=threshold,
                bus=alert_bus,
            )
            for name, budget in sorted(budgets.items())
        }
        self.alerts: list[SloBurnAlert] = []
        self._last_fleet_time = math.nan
        self._last_fleet_good = True

    def accept(self, event: TelemetryEvent) -> None:
        kind = event.kind
        if kind == "request.span":
            self._on_span(event)
        elif kind == "fleet.ready":
            self._on_fleet(event)

    def _record(self, alert: Optional[SloBurnAlert]) -> None:
        if alert is not None:
            self.alerts.append(alert)

    def _on_span(self, event: Any) -> None:
        failed = event.status != "ok"
        monitor = self.monitors.get("ttft")
        if monitor is not None:
            if failed:
                self._record(monitor.observe(event.time, bad=True))
            else:
                ttft = event.queue + event.prefill + event.wan
                self._record(monitor.observe_value(event.time, ttft))
        monitor = self.monitors.get("latency")
        if monitor is not None:
            if failed:
                self._record(monitor.observe(event.time, bad=True))
            else:
                self._record(monitor.observe_value(event.time, event.total))

    def _on_fleet(self, event: Any) -> None:
        monitor = self.monitors.get("availability")
        if monitor is None:
            return
        last_time = self._last_fleet_time
        if not math.isnan(last_time) and event.time > last_time:
            elapsed = event.time - last_time
            self._record(
                monitor.observe(
                    event.time, bad=not self._last_fleet_good, weight=elapsed
                )
            )
        self._last_fleet_time = event.time
        self._last_fleet_good = event.ready >= event.target

    # -- offline use ----------------------------------------------------
    def feed(self, events: Iterable[TelemetryEvent]) -> list[SloBurnAlert]:
        """Run a recorded stream through the monitors; returns the
        transition alerts in order."""
        for event in events:
            self.accept(event)
        return list(self.alerts)

    def snapshot(self) -> dict[str, Any]:
        """Current burn state per budget (JSON-native, sorted keys)."""
        out: dict[str, Any] = {}
        for name, monitor in self.monitors.items():
            fast = monitor.burn_fast()
            slow = monitor.burn_slow()
            out[name] = {
                "target": monitor.budget.target,
                "threshold_s": (
                    None
                    if math.isnan(monitor.budget.threshold_s)
                    else monitor.budget.threshold_s
                ),
                "burn_fast": fast if math.isfinite(fast) else None,
                "burn_slow": slow if math.isfinite(slow) else None,
                "firing": monitor.firing,
                "transitions": monitor.transitions,
            }
        return out
