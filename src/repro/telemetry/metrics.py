"""Typed time-series metrics registry over the telemetry event bus.

Three metric types, mirroring the Prometheus data model but tuned for
deterministic offline aggregation:

* :class:`CounterMetric` — monotonic totals (preemptions, routed
  requests), addressable by a fixed label set (zone/replica/policy);
* :class:`GaugeMetric` — last-value-wins state with an optional
  retained ``(time, value)`` step series (ready replicas, accrued
  cost), so fleet/cost timelines can be reconstructed from a registry;
* :class:`HistogramMetric` — fixed-bucket distributions (request
  latency legs, batch occupancy) with **deterministic** percentile
  estimation: linear interpolation of the estimated rank inside the
  containing bucket, with the open-ended buckets clamped to the
  observed min/max.  The same observations always yield the same
  estimate, bucket edges bound the error, and no sample list is
  retained — O(buckets) memory however long the run.

Families (:class:`CounterFamily` etc.) hold one child per label
combination; :class:`MetricRegistry` holds the families and renders a
canonical dict (sorted names, sorted label sets, JSON-native scalars)
so two registries fed the same events serialise byte-identically.

:class:`MetricsSink` is an event-bus sink that aggregates the standard
event kinds into a registry — attach it next to a
:class:`~repro.telemetry.sinks.JsonlSink` for live aggregation, or
feed it a recorded log via :func:`registry_from_events`.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Optional, Sequence, Tuple

from repro.telemetry.events import TelemetryEvent

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_OCCUPANCY_BUCKETS",
    "CounterFamily",
    "CounterMetric",
    "GaugeFamily",
    "GaugeMetric",
    "HistogramFamily",
    "HistogramMetric",
    "MetricRegistry",
    "MetricsSink",
    "registry_from_events",
]

#: Upper bucket edges (seconds) for request-latency histograms: roughly
#: logarithmic over the 0.1 s .. 100 s band the serving latencies span.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

#: Upper bucket edges for small integer distributions (batch occupancy,
#: queue depth).
DEFAULT_OCCUPANCY_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
)

LabelValues = Tuple[str, ...]


def _check_label_values(keys: Tuple[str, ...], values: Sequence[object]) -> LabelValues:
    if len(values) != len(keys):
        raise ValueError(
            f"expected {len(keys)} label value(s) for {keys}, got {len(values)}"
        )
    return tuple(str(v) for v in values)


class CounterMetric:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter cannot decrease by {amount}")
        self.value += amount

    def to_value(self) -> float:
        return self.value


class GaugeMetric:
    """Last-value-wins state, optionally retaining the step series.

    Samples must arrive in non-decreasing time order (event logs are
    time-ordered by construction); a same-time sample overwrites the
    previous one, matching :class:`repro.sim.metrics.TimeSeries`.
    """

    __slots__ = ("last", "last_time", "_times", "_values")

    def __init__(self, *, series: bool = True) -> None:
        self.last = math.nan
        self.last_time = math.nan
        self._times: Optional[list[float]] = [] if series else None
        self._values: Optional[list[float]] = [] if series else None

    def set(self, time: float, value: float) -> None:
        self.last = value
        self.last_time = time
        if self._times is None or self._values is None:
            return
        if self._times and time == self._times[-1]:
            self._values[-1] = value
            return
        self._times.append(time)
        self._values.append(value)

    def series(self) -> list[tuple[float, float]]:
        if self._times is None or self._values is None:
            return []
        return list(zip(self._times, self._values))

    def to_value(self) -> float:
        return self.last


class HistogramMetric:
    """Fixed-bucket histogram with deterministic percentile estimates.

    ``edges`` are strictly increasing upper bucket bounds; observations
    above the last edge land in an implicit +inf bucket.  ``quantile``
    locates the bucket containing the requested rank and interpolates
    linearly inside it, clamping the unbounded ends to the observed
    min/max — so the estimate is exact for values on bucket edges and
    never leaves the observed range.
    """

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(self, edges: Sequence[float]) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must strictly increase: {edges}")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)  # last = overflow (+inf)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100]); NaN when
        empty.  Deterministic: a pure function of the bucket counts and
        the observed min/max."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile q={q!r} outside [0, 100]")
        if self.count == 0:
            return math.nan
        # The extremes are tracked exactly; returning them directly also
        # keeps the open-ended overflow bucket from clamping q=100 to
        # its lower edge.
        if q == 0.0:
            return self.min
        if q == 100.0:
            return self.max
        # The rank convention matches numpy's default linear
        # interpolation: rank r in [0, count-1].
        rank = q / 100.0 * (self.count - 1)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            # Ranks [cumulative, cumulative + bucket_count - 1] live here.
            if rank < cumulative + bucket_count:
                lo = self.min if index == 0 else self.edges[index - 1]
                hi = self.max if index == len(self.edges) else self.edges[index]
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo or bucket_count == 1:
                    return min(max(lo, self.min), self.max)
                # Position of the rank inside this bucket's occupants.
                frac = (rank - cumulative) / (bucket_count - 1)
                frac = min(max(frac, 0.0), 1.0)
                # Clamp to the bucket interval: when lo and hi differ by
                # many orders of magnitude, ``lo + (hi - lo) * frac`` can
                # round past ``hi``, which would break monotonicity in q.
                return min(max(lo + (hi - lo) * frac, lo), hi)
            cumulative += bucket_count
        return self.max  # pragma: no cover - rank always found above

    def to_dict(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": None if self.count == 0 else self.quantile(50),
            "p90": None if self.count == 0 else self.quantile(90),
            "p99": None if self.count == 0 else self.quantile(99),
        }


class _Family:
    """Shared child bookkeeping for the three family types."""

    def __init__(self, name: str, help_text: str, labels: Sequence[str]) -> None:
        self.name = name
        self.help_text = help_text
        self.label_keys = tuple(labels)
        self._children: dict[LabelValues, Any] = {}

    def _make_child(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values: object) -> Any:
        """The child for one label combination, created on first use."""
        key = _check_label_values(self.label_keys, values)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def children(self) -> dict[LabelValues, Any]:
        return dict(self._children)

    def __len__(self) -> int:
        return len(self._children)


class CounterFamily(_Family):
    """Labeled counters, e.g. ``preemptions_total{zone}``."""

    def _make_child(self) -> CounterMetric:
        return CounterMetric()


class GaugeFamily(_Family):
    """Labeled gauges; ``series=False`` keeps only the last value."""

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        *,
        series: bool = True,
    ) -> None:
        super().__init__(name, help_text, labels)
        self._series = series

    def _make_child(self) -> GaugeMetric:
        return GaugeMetric(series=self._series)


class HistogramFamily(_Family):
    """Labeled fixed-bucket histograms (shared edges per family)."""

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labels)
        self.buckets = tuple(float(b) for b in buckets)

    def _make_child(self) -> HistogramMetric:
        return HistogramMetric(self.buckets)


class MetricRegistry:
    """Holds metric families and renders them canonically."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _register(self, family: _Family) -> Any:
        existing = self._families.get(family.name)
        if existing is not None:
            if type(existing) is not type(family) or (
                existing.label_keys != family.label_keys
            ):
                raise ValueError(
                    f"metric {family.name!r} already registered with a "
                    "different type or label set"
                )
            return existing
        self._families[family.name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> CounterFamily:
        return self._register(CounterFamily(name, help_text, labels))

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        *,
        series: bool = True,
    ) -> GaugeFamily:
        return self._register(GaugeFamily(name, help_text, labels, series=series))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> HistogramFamily:
        return self._register(
            HistogramFamily(name, help_text, labels, buckets=buckets)
        )

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def families(self) -> list[_Family]:
        return [self._families[name] for name in sorted(self._families)]

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-native form: families by sorted name, children
        by sorted label values; identical inputs serialise identically."""
        out: dict[str, Any] = {}
        for family in self.families():
            if isinstance(family, CounterFamily):
                kind = "counter"
            elif isinstance(family, GaugeFamily):
                kind = "gauge"
            else:
                kind = "histogram"
            children = []
            for values in sorted(family.children()):
                child = family.children()[values]
                entry: dict[str, Any] = {
                    "labels": dict(zip(family.label_keys, values)),
                }
                if isinstance(child, HistogramMetric):
                    entry.update(child.to_dict())
                elif isinstance(child, GaugeMetric):
                    entry["value"] = None if math.isnan(child.last) else child.last
                    series = child.series()
                    if series:
                        entry["series"] = [[t, v] for t, v in series]
                else:
                    entry["value"] = child.value
                children.append(entry)
            out[family.name] = {
                "type": kind,
                "help": family.help_text,
                "label_keys": list(family.label_keys),
                "metrics": children,
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the registry's current state.

        Histograms render as ``_bucket``/``_sum``/``_count`` per the
        exposition format; gauges render their last value.
        """
        # Local import: sinks imports events, not metrics — no cycle.
        from repro.telemetry.sinks import _escape_help, _escape_label

        lines: list[str] = []
        for family in self.families():
            name = family.name
            if family.help_text:
                lines.append(f"# HELP {name} {_escape_help(family.help_text)}")
            if isinstance(family, CounterFamily):
                lines.append(f"# TYPE {name} counter")
            elif isinstance(family, GaugeFamily):
                lines.append(f"# TYPE {name} gauge")
            else:
                lines.append(f"# TYPE {name} histogram")
            for values in sorted(family.children()):
                child = family.children()[values]
                pairs = [
                    f'{key}="{_escape_label(value)}"'
                    for key, value in zip(family.label_keys, values)
                ]
                base = ",".join(pairs)
                if isinstance(child, HistogramMetric):
                    cumulative = 0
                    for edge, count in zip(child.edges, child.counts):
                        cumulative += count
                        le = ",".join(pairs + [f'le="{edge}"'])
                        lines.append(f"{name}_bucket{{{le}}} {cumulative}")
                    le = ",".join(pairs + ['le="+Inf"'])
                    lines.append(f"{name}_bucket{{{le}}} {child.count}")
                    suffix = f"{{{base}}}" if base else ""
                    lines.append(f"{name}_sum{suffix} {child.total}")
                    lines.append(f"{name}_count{suffix} {child.count}")
                else:
                    value = child.to_value()
                    if isinstance(child, GaugeMetric) and math.isnan(value):
                        continue
                    suffix = f"{{{base}}}" if base else ""
                    lines.append(f"{name}{suffix} {float(value)}")
        return "\n".join(lines) + "\n"


class MetricsSink:
    """Event-bus sink aggregating the standard event kinds.

    One dispatch dict lookup plus a few counter/gauge updates per event;
    unknown kinds only pay the events_total counter.  The registry is
    owned by the sink unless one is passed in (sharing a registry lets
    several buses aggregate into one dashboard).
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._events_total = reg.counter(
            "events_total", "Telemetry events observed.", ("kind",)
        )
        self._preemptions = reg.counter(
            "replica_preemptions_total", "Spot replicas reclaimed.", ("zone",)
        )
        self._warned = reg.counter(
            "replica_preemptions_warned_total",
            "Preemptions preceded by a warning.",
            ("zone",),
        )
        self._launches = reg.counter(
            "replica_launches_total", "Replica launch requests.", ("zone",)
        )
        self._launch_failures = reg.counter(
            "replica_launch_failures_total",
            "Launches dead before READY.",
            ("zone",),
        )
        self._shed = reg.counter(
            "requests_shed_total", "Requests rejected by admission control.", ("zone",)
        )
        self._routed = reg.counter(
            "requests_routed_total", "Balancer routing decisions.", ("zone",)
        )
        self._lb_fallbacks = reg.counter(
            "lb_fallbacks_total",
            "Locality balancer global fallbacks (all local replicas overloaded).",
            (),
        )
        self._burn_alerts = reg.counter(
            "slo_burn_alerts_total", "SLO burn-rate alert transitions.",
            ("budget", "state"),
        )
        self._ready = reg.gauge(
            "fleet_ready_replicas", "Ready replicas (step series).", ()
        )
        self._target = reg.gauge("fleet_target_replicas", "N_Tar.", ())
        self._autoscale_rate = reg.gauge(
            "autoscaler_request_rate", "Autoscaler trailing request rate.", ()
        )
        self._autoscale_violation = reg.gauge(
            "autoscaler_slo_violation_rate",
            "Fraction of recent samples violating their SLO.",
            (),
        )
        self._cost = reg.gauge(
            "cost_accrued_dollars", "Accrued cost by market.", ("market",)
        )
        self._latency = reg.histogram(
            "request_latency_seconds",
            "End-to-end client latency.",
            ("status",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._legs = reg.histogram(
            "request_leg_seconds",
            "Per-leg latency breakdown (queue/prefill/decode/wan).",
            ("leg",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._ttft = reg.histogram(
            "request_ttft_seconds",
            "Client time-to-first-token (queue + prefill + wan).",
            (),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._occupancy = reg.histogram(
            "replica_batch_occupancy",
            "Batching-slot occupancy at load samples.",
            (),
            buckets=DEFAULT_OCCUPANCY_BUCKETS,
        )
        self._queue_depth = reg.histogram(
            "replica_queue_depth",
            "Server FIFO depth at load samples.",
            (),
            buckets=DEFAULT_OCCUPANCY_BUCKETS,
        )
        self._dropped = reg.gauge(
            "telemetry_dropped_events", "Ring-buffer events dropped.", (),
            series=False,
        )
        self._tenant_admissions = reg.counter(
            "tenant_admissions_total",
            "Capacity-broker admission decisions per tenant.",
            ("tenant", "decision"),
        )
        self._tenant_evictions = reg.counter(
            "tenant_evictions_total",
            "Strict-priority evictions per tenant (won vs suffered).",
            ("tenant", "role"),
        )
        self._tenant_cost = reg.gauge(
            "tenant_cost_dollars", "Accrued cost by tenant and market.",
            ("tenant", "market"),
        )
        self._dispatch = {
            "replica.preempted": self._on_preempted,
            "replica.launch": self._on_launch,
            "replica.launch_failed": self._on_launch_failed,
            "request.span": self._on_span,
            "request.shed": self._on_shed,
            "lb.route": self._on_route,
            "lb.fallback": self._on_fallback,
            "fleet.ready": self._on_fleet,
            "autoscale.sample": self._on_autoscale_sample,
            "autoscale.target": self._on_autoscale_target,
            "cost.snapshot": self._on_cost,
            "replica.load": self._on_load,
            "slo.burn_alert": self._on_burn_alert,
            "telemetry.dropped": self._on_dropped,
            "tenant.admission": self._on_tenant_admission,
            "tenant.eviction": self._on_tenant_eviction,
            "tenant.cost": self._on_tenant_cost,
        }

    # -- sink protocol --------------------------------------------------
    def accept(self, event: TelemetryEvent) -> None:
        self._events_total.labels(event.kind).inc()
        handler = self._dispatch.get(event.kind)
        if handler is not None:
            handler(event)

    # -- per-kind handlers ----------------------------------------------
    def _on_preempted(self, event: Any) -> None:
        self._preemptions.labels(event.zone).inc()
        if event.warned:
            self._warned.labels(event.zone).inc()

    def _on_launch(self, event: Any) -> None:
        self._launches.labels(event.zone).inc()

    def _on_launch_failed(self, event: Any) -> None:
        self._launch_failures.labels(event.zone).inc()

    def _on_span(self, event: Any) -> None:
        self._latency.labels(event.status).observe(event.total)
        legs = self._legs
        legs.labels("queue").observe(event.queue)
        legs.labels("prefill").observe(event.prefill)
        legs.labels("decode").observe(event.decode)
        legs.labels("wan").observe(event.wan)
        if event.status == "ok":
            self._ttft.labels().observe(event.queue + event.prefill + event.wan)

    def _on_shed(self, event: Any) -> None:
        self._shed.labels(event.zone).inc()

    def _on_route(self, event: Any) -> None:
        self._routed.labels(event.zone).inc()

    def _on_fallback(self, event: Any) -> None:
        self._lb_fallbacks.labels().inc()

    def _on_fleet(self, event: Any) -> None:
        self._ready.labels().set(event.time, event.ready)
        self._target.labels().set(event.time, event.target)

    def _on_autoscale_sample(self, event: Any) -> None:
        self._target.labels().set(event.time, event.target)
        self._autoscale_rate.labels().set(event.time, event.request_rate)
        self._autoscale_violation.labels().set(event.time, event.slo_violation_rate)

    def _on_autoscale_target(self, event: Any) -> None:
        self._target.labels().set(event.time, event.new_target)

    def _on_cost(self, event: Any) -> None:
        self._cost.labels("spot").set(event.time, event.spot)
        self._cost.labels("on_demand").set(event.time, event.on_demand)
        self._cost.labels("total").set(event.time, event.total)

    def _on_load(self, event: Any) -> None:
        self._occupancy.labels().observe(float(event.executing))
        self._queue_depth.labels().observe(float(event.queued))

    def _on_burn_alert(self, event: Any) -> None:
        self._burn_alerts.labels(event.budget, event.state).inc()

    def _on_dropped(self, event: Any) -> None:
        self._dropped.labels().set(event.time, float(event.dropped_total))

    def _on_tenant_admission(self, event: Any) -> None:
        self._tenant_admissions.labels(event.tenant, event.decision).inc()

    def _on_tenant_eviction(self, event: Any) -> None:
        self._tenant_evictions.labels(event.tenant, "won").inc()
        self._tenant_evictions.labels(event.victim, "suffered").inc()

    def _on_tenant_cost(self, event: Any) -> None:
        cost = self._tenant_cost
        cost.labels(event.tenant, "spot").set(event.time, event.spot)
        cost.labels(event.tenant, "on_demand").set(event.time, event.on_demand)
        cost.labels(event.tenant, "total").set(event.time, event.total)


def registry_from_events(
    events: Iterable[TelemetryEvent],
    registry: Optional[MetricRegistry] = None,
) -> MetricRegistry:
    """Aggregate a recorded event stream into a registry."""
    sink = MetricsSink(registry)
    for event in events:
        sink.accept(event)
    return sink.registry


def _labels_dict(keys: Sequence[str], values: Sequence[str]) -> Mapping[str, str]:
    return dict(zip(keys, values))
