"""Policy decision audit log.

Records every step SpotHedge's Algorithm 1 (and any other
:class:`~repro.serving.policy.ServingPolicy`) takes, *with its inputs*:

* ``target_mix`` — the spot/on-demand sizing, including the Dynamic
  Fallback computation ``O = min(N_Tar, N_Tar + N_Extra - S_r)``;
* ``select_zone`` — which zone SELECT-NEXT-ZONE picked and from which
  candidate set;
* ``zone_to_preempting`` / ``zone_to_active`` — Z_A <-> Z_P transitions;
* ``rebalance`` — the ``|Z_A| < 2`` trigger returning every Z_P zone.

Ablation benchmarks assert on these *decisions* rather than only on
outcome metrics, which pins down mechanisms (e.g. that rebalancing fired
at all) instead of inferring them from availability deltas.

Policies do not know simulated time; callers with an :class:`Observation`
feed it via :meth:`PolicyAuditLog.touch`, and subsequent records reuse
the latest known timestamp.  Records forward to a telemetry bus as
``policy.decision`` events when one is attached.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.telemetry.events import NULL_BUS, EventBus, PolicyDecision

__all__ = ["AuditRecord", "PolicyAuditLog"]


@dataclass(frozen=True)
class AuditRecord:
    """One audited decision with its inputs."""

    seq: int
    time: float
    policy: str
    decision: str
    data: dict[str, Any] = field(default_factory=dict)


class PolicyAuditLog:
    """Append-only log of policy decisions."""

    def __init__(
        self,
        *,
        policy: str = "",
        bus: Optional[EventBus] = None,
    ) -> None:
        self.policy = policy
        self.bus = bus if bus is not None else NULL_BUS
        self._records: list[AuditRecord] = []
        self._seq = itertools.count()
        self._now = 0.0

    def touch(self, time: float) -> None:
        """Update the clock used to timestamp subsequent records."""
        self._now = time

    @property
    def now(self) -> float:
        return self._now

    def record(self, decision: str, **data: Any) -> AuditRecord:
        entry = AuditRecord(
            seq=next(self._seq),
            time=self._now,
            policy=self.policy,
            decision=decision,
            data=data,
        )
        self._records.append(entry)
        if self.bus.enabled:
            self.bus.emit(
                PolicyDecision(
                    time=entry.time,
                    policy=entry.policy,
                    decision=entry.decision,
                    data=dict(data),
                )
            )
        return entry

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def records(self, decision: Optional[str] = None) -> list[AuditRecord]:
        """All records, or only those of one decision type."""
        if decision is None:
            return list(self._records)
        return [r for r in self._records if r.decision == decision]

    def count(self, decision: str) -> int:
        return sum(1 for r in self._records if r.decision == decision)

    def last(self, decision: Optional[str] = None) -> Optional[AuditRecord]:
        entries = self.records(decision)
        return entries[-1] if entries else None
