"""Stdlib logging configuration for the ``repro`` package.

Every module in ``src/repro`` logs through ``logging.getLogger(__name__)``,
so the whole tree hangs off the single ``repro`` root logger.  Nothing is
configured at import time — library code must not touch global logging
state — and the default level is WARNING so benchmark and experiment
output stays clean.  The CLI's ``--log-level`` flag calls
:func:`configure_logging`.
"""

from __future__ import annotations

import logging
from typing import Optional, TextIO, Union

__all__ = ["configure_logging", "root_logger"]

_FORMAT = "[%(levelname)s] %(name)s: %(message)s"


def root_logger() -> logging.Logger:
    """The ``repro`` root logger every module logger descends from."""
    return logging.getLogger("repro")


def configure_logging(
    level: Union[int, str] = "WARNING",
    *,
    stream: Optional[TextIO] = None,
    force: bool = False,
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root at ``level``.

    Idempotent: a second call adjusts the level of the existing handler
    instead of stacking a duplicate (unless ``force`` replaces it).
    Returns the configured root logger.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    root = root_logger()
    root.setLevel(level)
    existing = [
        h
        for h in root.handlers
        if getattr(h, "_repro_handler", False)
    ]
    if existing and force:
        for handler in existing:
            root.removeHandler(handler)
        existing = []
    if existing:
        for handler in existing:
            handler.setLevel(level)
            if stream is not None:
                handler.setStream(stream)  # type: ignore[attr-defined]
    else:
        handler = logging.StreamHandler(stream)
        handler.setLevel(level)
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler._repro_handler = True  # type: ignore[attr-defined]
        root.addHandler(handler)
    # The repro tree is self-contained; don't duplicate into the root
    # logger's handlers if an application configured basicConfig().
    root.propagate = False
    return root
