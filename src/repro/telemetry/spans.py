"""Request spans: per-request latency legs through the serving stack.

A :class:`RequestSpan` partitions one request's client-observed latency
into four legs that sum (up to float rounding) to the end-to-end number
the client records::

    queue   = exec_start  - arrival      (client retries + server queue)
    prefill = first_token - exec_start   (server-side TTFT minus queueing)
    decode  = finish      - first_token  (token generation)
    wan     = rtt                        (client <-> serving region)

``exec_start`` is stamped by the inference server when the request
leaves the FIFO queue and enters a batching slot; on a retry (replica
preempted mid-request) the marks reset, so the legs describe the
attempt that actually completed while ``queue`` absorbs all of the lost
time — matching the paper's accounting, where preemption-induced retry
time stays inside the end-to-end latency.

The :class:`SpanRecorder` owns the open spans, aggregates completed ones
into per-leg percentile recorders, and emits one
:class:`~repro.telemetry.events.RequestSpanEvent` per finished request
onto the telemetry bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.metrics import LatencyRecorder, LatencySummary
from repro.telemetry.events import NULL_BUS, EventBus, RequestSpanEvent

__all__ = ["RequestSpan", "SpanRecorder"]

#: Leg names in breakdown order.
LEGS = ("queue", "prefill", "decode", "wan")


@dataclass
class RequestSpan:
    """Mutable in-flight record of one request's journey."""

    request_id: int
    arrival: float
    replica_id: int = -1
    zone: str = ""
    exec_start: Optional[float] = None
    first_token: Optional[float] = None
    retries: int = 0
    status: str = "open"  # open | ok | failed
    finish: Optional[float] = None
    wan: float = 0.0
    legs: dict[str, float] = field(default_factory=dict)
    #: Batch occupancy when the request entered its slot (0 = never ran).
    batch_size: int = 0
    #: Server FIFO depth observed at submission time.
    queue_depth: int = 0

    # -- marks, stamped as the request moves through the stack ---------
    def note_attempt(self, replica_id: int, zone: str) -> None:
        """The balancer routed (or re-routed) this request."""
        self.replica_id = replica_id
        self.zone = zone

    def note_queue_depth(self, depth: int) -> None:
        """The inference server accepted the request behind ``depth``
        already-queued requests."""
        self.queue_depth = depth

    def mark_exec_start(self, time: float, batch: int = 0) -> None:
        """The inference server moved the request into a batching slot;
        ``batch`` is the occupancy including this request."""
        self.exec_start = time
        self.batch_size = batch

    def mark_first_token(self, time: float) -> None:
        """Server-side first token (prefill done) for the current attempt."""
        if self.status == "open":
            self.first_token = time

    def note_abort(self) -> None:
        """The serving replica died; the client will retry."""
        self.retries += 1
        self.exec_start = None
        self.first_token = None
        self.batch_size = 0

    # -- finalisation ---------------------------------------------------
    def _finalize(self, finish: float, wan: float, status: str) -> None:
        self.status = status
        self.finish = finish
        self.wan = wan
        # Defensive clamps: a span failed before reaching a stage has
        # that stage's mark missing; collapse the absent legs to zero so
        # the sum identity still holds.
        exec_start = self.exec_start if self.exec_start is not None else finish
        exec_start = min(exec_start, finish)
        first = self.first_token if self.first_token is not None else exec_start
        first = min(max(first, exec_start), finish)
        self.legs = {
            "queue": exec_start - self.arrival,
            "prefill": first - exec_start,
            "decode": finish - first,
            "wan": wan,
        }

    @property
    def total(self) -> float:
        """End-to-end client latency: the sum of the four legs."""
        if not self.legs:
            raise ValueError(f"span {self.request_id} not finalised")
        return sum(self.legs.values())

    def to_event(self) -> RequestSpanEvent:
        return RequestSpanEvent(
            time=(self.finish or self.arrival) + self.wan,
            request_id=self.request_id,
            status=self.status,
            queue=self.legs["queue"],
            prefill=self.legs["prefill"],
            decode=self.legs["decode"],
            wan=self.wan,
            total=self.total,
            retries=self.retries,
            replica_id=self.replica_id,
            zone=self.zone,
            batch_size=self.batch_size,
            queue_depth=self.queue_depth,
        )


class SpanRecorder:
    """Tracks open spans and summarises finished ones per leg."""

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.bus = bus if bus is not None else NULL_BUS
        self._open: dict[int, RequestSpan] = {}
        self.completed: list[RequestSpan] = []
        self.failed: list[RequestSpan] = []
        self._leg_recorders = {leg: LatencyRecorder(leg) for leg in LEGS}
        self._total_recorder = LatencyRecorder("total")

    def open(self, request_id: int, arrival: float) -> RequestSpan:
        span = RequestSpan(request_id=request_id, arrival=arrival)
        self._open[request_id] = span
        return span

    def get(self, request_id: int) -> Optional[RequestSpan]:
        return self._open.get(request_id)

    @property
    def open_count(self) -> int:
        return len(self._open)

    def complete(self, request_id: int, finish: float, wan: float) -> Optional[RequestSpan]:
        """Close a span successfully; ``finish`` is the *server-side*
        completion time, ``wan`` the return-trip the client adds."""
        span = self._open.pop(request_id, None)
        if span is None:
            return None
        span._finalize(finish, wan, "ok")
        self.completed.append(span)
        for leg in LEGS:
            self._leg_recorders[leg].record(max(span.legs[leg], 0.0))
        self._total_recorder.record(max(span.total, 0.0))
        if self.bus.enabled:
            self.bus.emit(span.to_event())
        return span

    def fail(self, request_id: int, now: float) -> Optional[RequestSpan]:
        """Close a span as failed (deadline passed or late completion)."""
        span = self._open.pop(request_id, None)
        if span is None:
            return None
        span._finalize(now, 0.0, "failed")
        self.failed.append(span)
        if self.bus.enabled:
            self.bus.emit(span.to_event())
        return span

    # -- aggregation ----------------------------------------------------
    def leg_summaries(self) -> dict[str, LatencySummary]:
        """Percentile summary per leg plus ``total``, over completed
        requests (NaN-safe when nothing completed)."""
        summaries = {
            leg: recorder.summary() for leg, recorder in self._leg_recorders.items()
        }
        summaries["total"] = self._total_recorder.summary()
        return summaries
