"""Event sinks: in-memory ring buffer, JSONL file, Prometheus snapshot.

A sink is anything with ``accept(event)`` (and optionally ``close()``).
Three are provided:

* :class:`RingBufferSink` — bounded in-memory buffer, the default for
  tests and interactive use;
* :class:`JsonlSink` — one JSON object per line, the durable format the
  ``repro events`` CLI subcommand reads back;
* :class:`PrometheusSnapshot` — aggregates event counts (and optional
  registered gauges) into the Prometheus text exposition format, for
  scraping-style integrations without running a server.
"""

from __future__ import annotations

import json
from collections import Counter as _Counter, deque
from pathlib import Path
from typing import Callable, Iterator, Optional, TextIO, Union

from repro.telemetry.events import EventsDropped, TelemetryEvent, event_from_dict

__all__ = [
    "JsonlSink",
    "PrometheusSnapshot",
    "RingBufferSink",
    "iter_events",
    "read_events",
]


class RingBufferSink:
    """Keeps the last ``capacity`` events in memory (all, when ``None``).

    Bounded buffers overwrite oldest-first; every overwrite increments
    ``dropped_total`` so the loss is observable (``repro events`` prints
    it, and :meth:`drop_event` packages it as a
    :class:`~repro.telemetry.events.EventsDropped` event for logs).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self._events: deque[TelemetryEvent] = deque(maxlen=capacity)
        self.dropped_total = 0
        if capacity is None:
            # Unbounded buffers never drop, so accept can be the bound
            # deque.append itself — no Python frame per event.
            self.accept = self._events.append  # type: ignore[method-assign]

    def accept(self, event: TelemetryEvent) -> None:
        if self._events.maxlen is not None and len(self._events) == self._events.maxlen:
            self.dropped_total += 1
        self._events.append(event)

    @property
    def dropped(self) -> int:
        """Backwards-compatible alias for ``dropped_total``."""
        return self.dropped_total

    @property
    def events(self) -> list[TelemetryEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def capacity(self) -> int:
        """The buffer bound (0 when unbounded)."""
        return self._events.maxlen or 0

    def drop_event(self) -> Optional[EventsDropped]:
        """An :class:`EventsDropped` event describing the current loss,
        or ``None`` when nothing was dropped.  ``time`` is the last
        buffered event's timestamp (the drop horizon)."""
        if not self.dropped_total:
            return None
        last_time = self._events[-1].time if self._events else float("nan")
        return EventsDropped(last_time, self.dropped_total, self.capacity)

    def clear(self) -> None:
        self._events.clear()
        self.dropped_total = 0


class JsonlSink:
    """Writes each event as one JSON line to a file (or open stream)."""

    def __init__(self, target: Union[str, Path, TextIO]) -> None:
        if isinstance(target, (str, Path)):
            self._file: TextIO = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.count = 0

    def accept(self, event: TelemetryEvent) -> None:
        self._file.write(json.dumps(event.to_dict(), sort_keys=True))
        self._file.write("\n")
        self.count += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> JsonlSink:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def iter_events(path: Union[str, Path]) -> Iterator[TelemetryEvent]:
    """Stream typed events back from a JSONL log."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            yield event_from_dict(json.loads(line))


def read_events(path: Union[str, Path]) -> list[TelemetryEvent]:
    """Load a whole JSONL event log into typed events."""
    return list(iter_events(path))


def _escape_label(value: str) -> str:
    """Escape a label *value* per the Prometheus text exposition format:
    backslash, double-quote, and line-feed."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape HELP text per the exposition format (backslash and
    line-feed only — quotes are legal in HELP)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class PrometheusSnapshot:
    """Aggregates events into Prometheus text-format metrics.

    Event counts become ``repro_events_total{kind=...,zone=...}``
    counters (``zone=""`` for events without a zone).  Callers may also
    register gauges — callables sampled at :meth:`render` time — for
    state that is not event-shaped, e.g. accrued cost from the billing
    meter.
    """

    def __init__(self) -> None:
        self._counts: _Counter[tuple[str, str]] = _Counter()
        self._gauges: list[tuple[str, dict[str, str], Callable[[], float], str]] = []
        self.last_event_time = float("nan")

    def accept(self, event: TelemetryEvent) -> None:
        zone = getattr(event, "zone", "")
        self._counts[(event.kind, zone)] += 1
        self.last_event_time = event.time

    def register_gauge(
        self,
        name: str,
        sample: Callable[[], float],
        *,
        labels: Optional[dict[str, str]] = None,
        help_text: str = "",
    ) -> None:
        """Register a gauge sampled lazily when the snapshot renders."""
        self._gauges.append((name, dict(labels or {}), sample, help_text))

    def counts(self) -> dict[tuple[str, str], int]:
        return dict(self._counts)

    def render(self) -> str:
        """The Prometheus text exposition of everything collected."""
        lines = [
            "# HELP repro_events_total Telemetry events observed, by kind and zone.",
            "# TYPE repro_events_total counter",
        ]
        for (kind, zone), count in sorted(self._counts.items()):
            labels = f'kind="{_escape_label(kind)}",zone="{_escape_label(zone)}"'
            lines.append(f"repro_events_total{{{labels}}} {count}")
        seen_gauges: set[str] = set()
        for name, labels, sample, help_text in self._gauges:
            if name not in seen_gauges:
                seen_gauges.add(name)
                if help_text:
                    lines.append(f"# HELP {name} {_escape_help(help_text)}")
                lines.append(f"# TYPE {name} gauge")
            label_str = ",".join(
                f'{key}="{_escape_label(str(value))}"'
                for key, value in sorted(labels.items())
            )
            rendered = f"{{{label_str}}}" if label_str else ""
            lines.append(f"{name}{rendered} {float(sample())}")
        return "\n".join(lines) + "\n"
