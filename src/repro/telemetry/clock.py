"""The sanctioned wall-clock accessors.

Simulated code must never read real time — replay results are required
to be a pure function of ``(trace, config, seed)`` so they can be
cached (:class:`~repro.experiments.results.ReplayCache`) and compared
across serial and parallel runs.  ``repro lint`` (rule ``REPRO-T001``)
bans ``time.time`` / ``time.monotonic`` / ``datetime.now`` everywhere
outside ``telemetry/`` and the CLI.

Code at the observability edge — progress events, log timestamps,
throughput accounting — *does* legitimately need wall time.  It calls
these helpers instead of the ``time`` module directly, which keeps
every wall-clock read in the codebase behind one grep-able, lintable
seam (and makes the distinction between simulated and real time
explicit at each call site).
"""

from __future__ import annotations

import time

__all__ = ["wall_monotonic", "wall_time"]


def wall_monotonic() -> float:
    """Monotonic wall-clock seconds — for durations and progress
    timestamps that must never jump backwards (e.g.
    :class:`~repro.telemetry.events.SweepProgress`)."""
    return time.monotonic()


def wall_time() -> float:
    """Epoch wall-clock seconds — only for labelling artifacts with a
    real-world timestamp, never for simulation logic."""
    return time.time()
