"""Run reports: canonical JSON artifacts plus a terminal dashboard.

A :class:`RunReport` is a pure function of a recorded telemetry event
stream: aggregate the events through the metrics registry
(:mod:`repro.telemetry.metrics`) and the SLO monitors
(:mod:`repro.telemetry.slo`), downsample the fleet/cost gauge series
into fixed-width timelines, and collect profiler phase output if the
run recorded any.  Two properties fall out of that design:

* **Byte stability** — ``to_json()`` renders with sorted keys, fixed
  indentation, and floats rounded through :func:`_round` before
  serialisation, so the same event log always produces the identical
  artifact, byte for byte.  Profiler phases measure wall-clock time and
  therefore live in a clearly-marked ``profile`` section that is stable
  *per log* but not across re-runs of the simulation.
* **No new instrumentation contract** — anything that already emits
  events gets reports for free; ``repro report run.jsonl`` works on any
  log the serving stack or the replayer wrote.

``render_dashboard`` draws the terminal view: fleet/cost/SLO timelines
as unicode sparklines, latency percentiles, counter tables, burn
alerts, and the top-k hot phases.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Optional, Sequence

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.metrics import MetricRegistry, MetricsSink
from repro.telemetry.slo import SloBudget, SloMonitorSink

__all__ = [
    "RunReport",
    "build_report",
    "downsample_series",
    "render_dashboard",
    "sparkline",
]

#: JSON schema identifier stamped into every artifact.
REPORT_SCHEMA = "repro.report/v1"

#: Timeline width (buckets) for downsampled series and sparklines.
TIMELINE_WIDTH = 64

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _round(value: float, digits: int = 6) -> float:
    """Stable float for canonical JSON: rounds and normalises -0.0."""
    rounded = round(value, digits)
    return 0.0 if rounded == 0.0 else rounded


def downsample_series(
    series: Sequence[tuple[float, float]], width: int = TIMELINE_WIDTH
) -> list[float]:
    """Compress a step series to ``width`` bucket means.

    Buckets partition the observed time range evenly; each bucket takes
    the time-weighted mean of the step function over it, so a short
    availability dip still shows up proportionally rather than being
    lost to point sampling.  Series shorter than ``width`` return their
    values unchanged (no padding — the caller knows the true length).
    """
    if not series:
        return []
    if len(series) <= width:
        return [v for _, v in series]
    t0 = series[0][0]
    t1 = series[-1][0]
    if t1 <= t0:
        return [series[-1][1]]
    span = (t1 - t0) / width
    out: list[float] = []
    index = 0
    n = len(series)
    for b in range(width):
        lo = t0 + b * span
        hi = t1 if b == width - 1 else lo + span
        # Advance to the step active at the bucket start.
        while index + 1 < n and series[index + 1][0] <= lo:
            index += 1
        j = index
        weighted = 0.0
        cursor = lo
        while j < n and cursor < hi:
            step_end = series[j + 1][0] if j + 1 < n else hi
            upper = min(step_end, hi)
            if upper > cursor:
                weighted += series[j][1] * (upper - cursor)
                cursor = upper
            j += 1
        out.append(weighted / (hi - lo) if hi > lo else series[j - 1][1])
    return out


def sparkline(values: Sequence[float], width: int = TIMELINE_WIDTH) -> str:
    """Unicode sparkline of ``values`` (flat series render mid-level)."""
    if not values:
        return ""
    values = list(values)[:width]
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return " " * len(values)
    lo = min(finite)
    hi = max(finite)
    if hi <= lo:
        return _SPARK_LEVELS[3] * len(values)
    chars = []
    scale = (len(_SPARK_LEVELS) - 1) / (hi - lo)
    for v in values:
        if not math.isfinite(v):
            chars.append(" ")
            continue
        chars.append(_SPARK_LEVELS[int((v - lo) * scale + 0.5)])
    return "".join(chars)


class RunReport:
    """Aggregated view of one run's event log."""

    def __init__(
        self,
        *,
        registry: MetricRegistry,
        slo: SloMonitorSink,
        event_count: int,
        time_range: tuple[float, float],
        dropped_total: int = 0,
        label: str = "",
    ) -> None:
        self.registry = registry
        self.slo = slo
        self.event_count = event_count
        self.time_range = time_range
        self.dropped_total = dropped_total
        self.label = label
        #: phase -> (calls, total_s, max_s, sampled); see profile_section.
        self._profile_phases: dict[str, tuple[int, float, float, bool]] = {}

    # -- section builders ----------------------------------------------
    def _gauge_series(self, name: str, *labels: str) -> list[tuple[float, float]]:
        family = self.registry.get(name)
        if family is None:
            return []
        child = family.children().get(tuple(labels))
        if child is None:
            return []
        return child.series()

    def _counter_totals(self, name: str) -> dict[str, float]:
        family = self.registry.get(name)
        if family is None:
            return {}
        return {
            ",".join(values) if values else "": child.value
            for values, child in sorted(family.children().items())
        }

    def fleet_timeline(self) -> list[float]:
        return downsample_series(self._gauge_series("fleet_ready_replicas"))

    def target_timeline(self) -> list[float]:
        return downsample_series(self._gauge_series("fleet_target_replicas"))

    def cost_timeline(self) -> list[float]:
        return downsample_series(self._gauge_series("cost_accrued_dollars", "total"))

    def latency_summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for metric_name, key in (
            ("request_latency_seconds", "latency"),
            ("request_ttft_seconds", "ttft"),
        ):
            family = self.registry.get(metric_name)
            if family is None:
                continue
            for values, child in sorted(family.children().items()):
                status = values[0] if values else "all"
                if child.count == 0:
                    continue
                out[f"{key}.{status}" if values else key] = {
                    "count": child.count,
                    "mean": _round(child.mean),
                    "p50": _round(child.quantile(50)),
                    "p90": _round(child.quantile(90)),
                    "p99": _round(child.quantile(99)),
                    "max": _round(child.max),
                }
        return out

    def tenants_section(self) -> dict[str, Any]:
        """Per-tenant roll-up of the control-plane event kinds.

        Empty for single-service logs — only multi-tenant runs
        (``repro serve up``) emit ``tenant.*`` events.
        """
        out: dict[str, dict[str, Any]] = {}
        admissions = self.registry.get("tenant_admissions_total")
        if admissions is not None:
            for values, child in sorted(admissions.children().items()):
                tenant, decision = values
                entry = out.setdefault(tenant, {})
                entry.setdefault("admissions", {})[decision] = int(child.value)
        evictions = self.registry.get("tenant_evictions_total")
        if evictions is not None:
            for values, child in sorted(evictions.children().items()):
                tenant, role = values
                entry = out.setdefault(tenant, {})
                entry.setdefault("evictions", {})[role] = int(child.value)
        cost = self.registry.get("tenant_cost_dollars")
        if cost is not None:
            for values, child in sorted(cost.children().items()):
                tenant, market = values
                if math.isnan(child.last):
                    continue
                entry = out.setdefault(tenant, {})
                entry.setdefault("cost", {})[market] = _round(child.last)
        return out

    def profile_section(self) -> list[dict[str, Any]]:
        """Profiler phases recorded into the log (wall-clock — stable
        per log file, not across simulation re-runs)."""
        phases = self._profile_phases
        return [
            {
                "phase": name,
                "calls": calls,
                "total_s": _round(total, 9),
                "max_s": _round(mx, 9),
                "sampled": sampled,
            }
            for name, (calls, total, mx, sampled) in sorted(phases.items())
        ]

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-native artifact (see module docstring)."""
        t0, t1 = self.time_range
        counters = {}
        for name in (
            "events_total",
            "lb_fallbacks_total",
            "replica_launch_failures_total",
            "replica_launches_total",
            "replica_preemptions_total",
            "requests_routed_total",
            "requests_shed_total",
            "slo_burn_alerts_total",
            "tenant_admissions_total",
            "tenant_evictions_total",
        ):
            totals = self._counter_totals(name)
            if totals:
                counters[name] = {k: _round(v) for k, v in totals.items()}
        return {
            "schema": REPORT_SCHEMA,
            "label": self.label,
            "events": {
                "count": self.event_count,
                "dropped_total": self.dropped_total,
                "time_start": _round(t0) if math.isfinite(t0) else None,
                "time_end": _round(t1) if math.isfinite(t1) else None,
            },
            "counters": counters,
            "timelines": {
                "width": TIMELINE_WIDTH,
                "fleet_ready": [_round(v, 4) for v in self.fleet_timeline()],
                "fleet_target": [_round(v, 4) for v in self.target_timeline()],
                "cost_total": [_round(v, 4) for v in self.cost_timeline()],
            },
            "latency": self.latency_summary(),
            "tenants": self.tenants_section(),
            "slo": self.slo.snapshot(),
            "alerts": [
                {
                    "time": _round(alert.time),
                    "budget": alert.budget,
                    "state": alert.state,
                    "burn_fast": _round(alert.burn_fast, 4),
                    "burn_slow": _round(alert.burn_slow, 4),
                }
                for alert in self.slo.alerts
            ],
            "profile": self.profile_section(),
        }

    def to_json(self) -> str:
        """The byte-stable artifact: sorted keys, indent 2, ``\\n``-
        terminated."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


def build_report(
    events: Iterable[TelemetryEvent],
    *,
    label: str = "",
    budgets: Optional[dict[str, SloBudget]] = None,
    window_fast: float = 300.0,
    window_slow: float = 3600.0,
    threshold: float = 10.0,
) -> RunReport:
    """Aggregate an event stream into a :class:`RunReport`."""
    metrics = MetricsSink()
    slo = SloMonitorSink(
        budgets,
        window_fast=window_fast,
        window_slow=window_slow,
        threshold=threshold,
    )
    count = 0
    t0 = math.inf
    t1 = -math.inf
    dropped = 0
    profile: dict[str, tuple[int, float, float, bool]] = {}
    for event in events:
        count += 1
        metrics.accept(event)
        slo.accept(event)
        kind = event.kind
        if kind == "telemetry.dropped":
            dropped = max(dropped, event.dropped_total)
        elif kind == "profile.phase":
            prev = profile.get(event.phase)
            if prev is None:
                profile[event.phase] = (
                    event.calls, event.total_s, event.max_s, event.sampled
                )
            else:
                profile[event.phase] = (
                    prev[0] + event.calls,
                    prev[1] + event.total_s,
                    max(prev[2], event.max_s),
                    prev[3] or event.sampled,
                )
            continue  # wall-clock timestamps stay out of the sim range
        elif kind == "sweep.point":
            continue
        if math.isfinite(event.time):
            if event.time < t0:
                t0 = event.time
            if event.time > t1:
                t1 = event.time
    report = RunReport(
        registry=metrics.registry,
        slo=slo,
        event_count=count,
        time_range=(t0, t1),
        dropped_total=dropped,
        label=label,
    )
    report._profile_phases = profile
    return report


# -- terminal rendering -----------------------------------------------


def _fmt_duration(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def render_dashboard(report: RunReport, *, top_k: int = 8) -> str:
    """Human-readable terminal dashboard for one run report."""
    data = report.to_dict()
    lines: list[str] = []
    label = data["label"] or "run"
    ev = data["events"]
    t0 = ev["time_start"]
    t1 = ev["time_end"]
    span = (
        _fmt_duration(t1 - t0)
        if t0 is not None and t1 is not None and t1 > t0
        else "n/a"
    )
    lines.append(f"run report · {label}")
    lines.append(
        f"  events: {ev['count']}  dropped: {ev['dropped_total']}  span: {span}"
    )
    lines.append("")

    timelines = data["timelines"]
    for title, key in (
        ("fleet ready", "fleet_ready"),
        ("fleet target", "fleet_target"),
        ("cost ($)", "cost_total"),
    ):
        series = timelines[key]
        if not series:
            continue
        lo = min(series)
        hi = max(series)
        lines.append(
            f"  {title:<13}{sparkline(series)}  [{lo:.6g} .. {hi:.6g}]"
        )
    if len(lines) > 3:
        lines.append("")

    latency = data["latency"]
    if latency:
        lines.append("  latency (s)        count      p50      p90      p99      max")
        for name in sorted(latency):
            stats = latency[name]
            lines.append(
                f"    {name:<15}{stats['count']:>8}"
                f"{stats['p50']:>9.3f}{stats['p90']:>9.3f}"
                f"{stats['p99']:>9.3f}{stats['max']:>9.3f}"
            )
        lines.append("")

    tenants = data["tenants"]
    if tenants:
        lines.append(
            "  tenant           admitted  rejected  evict(won/lost)   cost ($)"
        )
        for name in sorted(tenants):
            entry = tenants[name]
            admissions = entry.get("admissions", {})
            evictions = entry.get("evictions", {})
            cost = entry.get("cost", {})
            lines.append(
                f"    {name:<15}{admissions.get('admitted', 0):>8}"
                f"{admissions.get('rejected', 0):>10}"
                f"{evictions.get('won', 0):>8}/{evictions.get('suffered', 0):<8}"
                f"{cost.get('total', 0.0):>9.2f}"
            )
        lines.append("")

    slo = data["slo"]
    if slo:
        lines.append("  slo budget      target   burn(fast)  burn(slow)  state")
        for name in sorted(slo):
            stats = slo[name]
            fast = stats["burn_fast"]
            slow = stats["burn_slow"]
            state = "FIRING" if stats["firing"] else "ok"
            lines.append(
                f"    {name:<13}{stats['target']:>7.3%}"
                f"{'inf' if fast is None else format(fast, '>10.2f'):>12}"
                f"{'inf' if slow is None else format(slow, '>10.2f'):>12}"
                f"  {state}"
            )
        lines.append("")

    if data["alerts"]:
        lines.append(f"  burn alerts ({len(data['alerts'])} transition(s)):")
        for alert in data["alerts"][:12]:
            lines.append(
                f"    t={alert['time']:<10g}{alert['budget']:<14}"
                f"{alert['state']:<9}fast={alert['burn_fast']:g} "
                f"slow={alert['burn_slow']:g}"
            )
        if len(data["alerts"]) > 12:
            lines.append(f"    ... {len(data['alerts']) - 12} more")
        lines.append("")

    counters = data["counters"]
    counter_lines = []
    for name in sorted(counters):
        if name == "events_total":
            continue
        total = sum(counters[name].values())
        if total == 0:
            continue
        counter_lines.append(f"    {name:<34}{total:>12g}")
    if counter_lines:
        lines.append("  counters:")
        lines.extend(counter_lines)
        lines.append("")

    profile = data["profile"]
    if profile:
        ranked = sorted(profile, key=lambda p: (-p["total_s"], p["phase"]))
        lines.append(f"  hot phases (top {min(top_k, len(ranked))}, wall-clock):")
        for entry in ranked[:top_k]:
            mean_us = (
                entry["total_s"] / entry["calls"] * 1e6 if entry["calls"] else 0.0
            )
            note = " (sampled)" if entry["sampled"] else ""
            lines.append(
                f"    {entry['phase']:<26}{entry['total_s']:>10.4f}s"
                f"{entry['calls']:>10} calls{mean_us:>10.1f}us/call{note}"
            )
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
