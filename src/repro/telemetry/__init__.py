"""Structured telemetry: event bus, request spans, policy audit log.

The observability layer of the reproduction (see
``docs/OBSERVABILITY.md``):

``repro.telemetry.events``
    Typed, timestamped events plus the :class:`EventBus` they flow over.
``repro.telemetry.sinks``
    Ring buffer, JSONL file, and Prometheus-text-format sinks.
``repro.telemetry.spans``
    Per-request latency legs (queue / prefill / decode / WAN) that sum
    exactly to the client-recorded end-to-end latency.
``repro.telemetry.audit``
    The policy decision audit log: every Alg. 1 step with its inputs.
``repro.telemetry.render``
    Timeline/summary rendering for the ``repro events`` CLI subcommand.
``repro.telemetry.logsetup``
    Stdlib logging configuration under the single ``repro`` root logger.
``repro.telemetry.clock``
    The sanctioned wall-clock accessors — the only place outside the
    CLI where real time may be read (enforced by ``repro lint``).

Telemetry is opt-in and zero-overhead when disabled: components publish
onto :data:`NULL_BUS` unless a configured :class:`EventBus` is passed in
(``SkyService(..., telemetry=bus)``, ``TraceReplayer(..., telemetry=bus)``,
or ``repro serve --events out.jsonl`` from the CLI).
"""

from repro.telemetry.audit import AuditRecord, PolicyAuditLog
from repro.telemetry.clock import wall_monotonic, wall_time
from repro.telemetry.events import (
    NULL_BUS,
    AutoscaleDecision,
    ChaosInjected,
    ChaosScenarioEnded,
    ChaosScenarioStarted,
    CostSnapshot,
    EventBus,
    FleetSample,
    GenericEvent,
    PolicyDecision,
    PreemptWarning,
    ProbeFailure,
    ReplicaLaunch,
    ReplicaLaunchFailed,
    ReplicaPreempted,
    ReplicaReady,
    ReplicaTerminated,
    RequestSpanEvent,
    RouteDecision,
    SweepProgress,
    TelemetryEvent,
    ZoneCapacity,
    event_from_dict,
    event_kinds,
)
from repro.telemetry.logsetup import configure_logging, root_logger
from repro.telemetry.render import EventLogSummary, format_summary, summarize
from repro.telemetry.sinks import (
    JsonlSink,
    PrometheusSnapshot,
    RingBufferSink,
    iter_events,
    read_events,
)
from repro.telemetry.spans import RequestSpan, SpanRecorder

__all__ = [
    "NULL_BUS",
    "AuditRecord",
    "AutoscaleDecision",
    "ChaosInjected",
    "ChaosScenarioEnded",
    "ChaosScenarioStarted",
    "CostSnapshot",
    "EventBus",
    "EventLogSummary",
    "FleetSample",
    "GenericEvent",
    "JsonlSink",
    "PolicyAuditLog",
    "PolicyDecision",
    "PreemptWarning",
    "ProbeFailure",
    "PrometheusSnapshot",
    "ReplicaLaunch",
    "ReplicaLaunchFailed",
    "ReplicaPreempted",
    "ReplicaReady",
    "ReplicaTerminated",
    "RequestSpan",
    "RequestSpanEvent",
    "RingBufferSink",
    "RouteDecision",
    "SpanRecorder",
    "SweepProgress",
    "TelemetryEvent",
    "ZoneCapacity",
    "configure_logging",
    "event_from_dict",
    "event_kinds",
    "format_summary",
    "iter_events",
    "read_events",
    "root_logger",
    "summarize",
    "wall_monotonic",
    "wall_time",
]
