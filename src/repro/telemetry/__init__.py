"""Structured telemetry: event bus, metrics, spans, profiling, reports.

The observability layer of the reproduction (see
``docs/OBSERVABILITY.md``):

``repro.telemetry.events``
    Typed, timestamped events plus the :class:`EventBus` they flow over.
``repro.telemetry.sinks``
    Ring buffer, JSONL file, and Prometheus-text-format sinks.
``repro.telemetry.metrics``
    Typed time-series registry: counters, gauges, and fixed-bucket
    histograms with deterministic percentile estimation, fed from the
    event bus by :class:`MetricsSink`.
``repro.telemetry.slo``
    SLO error budgets and multi-window burn-rate monitors emitting
    :class:`SloBurnAlert` events.
``repro.telemetry.profile``
    Zero-overhead-when-disabled phase profiler over the harness hot
    paths (replay loop, continuous-batching step).
``repro.telemetry.report``
    Canonical per-run JSON report artifacts and the ``repro report``
    terminal dashboard.
``repro.telemetry.spans``
    Per-request latency legs (queue / prefill / decode / WAN) that sum
    exactly to the client-recorded end-to-end latency.
``repro.telemetry.audit``
    The policy decision audit log: every Alg. 1 step with its inputs.
``repro.telemetry.render``
    Timeline/summary rendering for the ``repro events`` CLI subcommand.
``repro.telemetry.logsetup``
    Stdlib logging configuration under the single ``repro`` root logger.
``repro.telemetry.clock``
    The sanctioned wall-clock accessors — the only place outside the
    CLI where real time may be read (enforced by ``repro lint``).

Telemetry is opt-in and zero-overhead when disabled: components publish
onto :data:`NULL_BUS` unless a configured :class:`EventBus` is passed in
(``SkyService(..., telemetry=bus)``, ``TraceReplayer(..., telemetry=bus)``,
or ``repro serve --events out.jsonl`` from the CLI).
"""

from repro.telemetry.audit import AuditRecord, PolicyAuditLog
from repro.telemetry.clock import wall_monotonic, wall_time
from repro.telemetry.events import (
    NULL_BUS,
    AutoscaleDecision,
    AutoscalerSample,
    ChaosInjected,
    ChaosScenarioEnded,
    ChaosScenarioStarted,
    CostSnapshot,
    EventBus,
    EventsDropped,
    FleetSample,
    GenericEvent,
    LoadBalancerFallback,
    PolicyDecision,
    PreemptWarning,
    ProbeFailure,
    ProfilePhase,
    ReplicaLaunch,
    ReplicaLaunchFailed,
    ReplicaPreempted,
    ReplicaReady,
    ReplicaTerminated,
    RequestSpanEvent,
    RouteDecision,
    SloBurnAlert,
    SweepProgress,
    TelemetryEvent,
    ZoneCapacity,
    event_from_dict,
    event_kinds,
)
from repro.telemetry.logsetup import configure_logging, root_logger
from repro.telemetry.metrics import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    HistogramMetric,
    MetricRegistry,
    MetricsSink,
    registry_from_events,
)
from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler, PhaseStats
from repro.telemetry.render import EventLogSummary, format_summary, summarize
from repro.telemetry.report import RunReport, build_report, render_dashboard
from repro.telemetry.sinks import (
    JsonlSink,
    PrometheusSnapshot,
    RingBufferSink,
    iter_events,
    read_events,
)
from repro.telemetry.slo import (
    BurnRateMonitor,
    SloBudget,
    SloMonitorSink,
    burn_rate,
    default_budgets,
)
from repro.telemetry.spans import RequestSpan, SpanRecorder

__all__ = [
    "NULL_BUS",
    "NULL_PROFILER",
    "AuditRecord",
    "AutoscaleDecision",
    "AutoscalerSample",
    "BurnRateMonitor",
    "ChaosInjected",
    "ChaosScenarioEnded",
    "ChaosScenarioStarted",
    "CostSnapshot",
    "CounterFamily",
    "EventBus",
    "EventLogSummary",
    "EventsDropped",
    "FleetSample",
    "GaugeFamily",
    "GenericEvent",
    "HistogramFamily",
    "HistogramMetric",
    "JsonlSink",
    "LoadBalancerFallback",
    "MetricRegistry",
    "MetricsSink",
    "PhaseProfiler",
    "PhaseStats",
    "PolicyAuditLog",
    "PolicyDecision",
    "PreemptWarning",
    "ProbeFailure",
    "ProfilePhase",
    "PrometheusSnapshot",
    "ReplicaLaunch",
    "ReplicaLaunchFailed",
    "ReplicaPreempted",
    "ReplicaReady",
    "ReplicaTerminated",
    "RequestSpan",
    "RequestSpanEvent",
    "RingBufferSink",
    "RouteDecision",
    "RunReport",
    "SloBudget",
    "SloBurnAlert",
    "SloMonitorSink",
    "SpanRecorder",
    "SweepProgress",
    "TelemetryEvent",
    "ZoneCapacity",
    "build_report",
    "burn_rate",
    "configure_logging",
    "default_budgets",
    "event_from_dict",
    "event_kinds",
    "format_summary",
    "iter_events",
    "read_events",
    "registry_from_events",
    "render_dashboard",
    "root_logger",
    "summarize",
    "wall_monotonic",
    "wall_time",
]
