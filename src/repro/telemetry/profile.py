"""Zero-overhead-when-disabled phase profiler for harness hot paths.

The replay loop and the continuous-batching step are the two hot paths
the ROADMAP's throughput targets live or die on, so the profiler is
built around one rule: **when disabled it must cost nothing** — no
context-manager object, no clock read, no Python frame.  Call sites
therefore never construct timers directly; they hold a
:class:`PhaseProfiler` (or :data:`NULL_PROFILER`) and guard with the
plain attribute ``profiler.enabled``, exactly like the event bus::

    profiler = self.profiler
    do_profile = profiler.enabled
    ...
    if do_profile:
        t0 = profiler.clock()
    work()
    if do_profile:
        profiler.accumulate("replay.promote", profiler.clock() - t0)

For cold paths the ``with profiler.phase("name"):`` context manager is
more readable and the disabled case still allocates nothing — the
profiler hands back one shared no-op context manager instance.

All clock reads go through :func:`repro.telemetry.clock.wall_monotonic`
(the sanctioned wall-clock seam — lint rule T001 bans ``time.*``
anywhere else), pre-bound as ``self.clock`` so hot call sites pay one
attribute load instead of a module-global lookup.

Aggregated stats are deterministic given the same sequence of
``accumulate`` calls; the durations themselves are wall-clock and vary
run to run, which is why report artifacts keep profile output in a
separate, non-canonical section.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.telemetry.clock import wall_monotonic
from repro.telemetry.events import ProfilePhase

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.events import EventBus

__all__ = ["NULL_PROFILER", "PhaseProfiler", "PhaseStats", "profiler_or_null"]


class PhaseStats:
    """Aggregated timings for one named phase."""

    __slots__ = ("name", "calls", "total_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "max_s": self.max_s,
            "mean_s": self.mean_s,
        }


class _NullPhase:
    """Shared no-op context manager: the disabled ``phase()`` result."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_PHASE = _NullPhase()


class _Timer:
    """Context manager timing one phase occurrence (enabled path)."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = self._profiler.clock()
        return self

    def __exit__(self, *exc: object) -> None:
        self._profiler.accumulate(self._name, self._profiler.clock() - self._t0)


class PhaseProfiler:
    """Accumulates wall-clock time per named phase.

    ``enabled`` is a plain attribute so hot paths can hoist it into a
    local; ``clock`` is the pre-bound monotonic clock.  ``stride`` is
    advisory metadata recorded by hot loops that sample every N-th
    iteration instead of every one (the stats then *underestimate*
    total time by ~stride and callers scale accordingly).
    """

    __slots__ = ("enabled", "clock", "stride", "_phases")

    def __init__(self, *, enabled: bool = True, stride: int = 1) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.enabled = enabled
        self.clock = wall_monotonic
        self.stride = stride
        self._phases: dict[str, PhaseStats] = {}

    # -- recording ------------------------------------------------------
    def phase(self, name: str) -> Any:
        """Context manager timing one occurrence of ``name``.

        Disabled profilers return one shared no-op instance — zero
        allocations, suitable for warm (but not innermost-loop) paths.
        Innermost loops should use the ``accumulate`` pattern from the
        module docstring instead, which also skips the CM protocol.
        """
        if not self.enabled:
            return _NULL_PHASE
        return _Timer(self, name)

    def accumulate(self, name: str, elapsed_s: float, calls: int = 1) -> None:
        """Fold ``elapsed_s`` seconds into phase ``name`` directly."""
        stats = self._phases.get(name)
        if stats is None:
            stats = PhaseStats(name)
            self._phases[name] = stats
        stats.calls += calls
        stats.total_s += elapsed_s
        if elapsed_s > stats.max_s:
            stats.max_s = elapsed_s

    # -- inspection -----------------------------------------------------
    def stats(self) -> dict[str, PhaseStats]:
        """Phase stats keyed by name (sorted for stable iteration)."""
        return {name: self._phases[name] for name in sorted(self._phases)}

    def top(self, k: int = 5) -> list[PhaseStats]:
        """The ``k`` phases with the largest total time, descending;
        ties broken by name so the ordering is deterministic."""
        ranked = sorted(
            self._phases.values(), key=lambda s: (-s.total_s, s.name)
        )
        return ranked[:k]

    def total_s(self) -> float:
        return sum(stats.total_s for stats in self._phases.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "stride": self.stride,
            "phases": [stats.to_dict() for stats in self.stats().values()],
        }

    # -- composition ----------------------------------------------------
    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's stats into this one (phase-wise)."""
        for name, stats in other._phases.items():
            self.accumulate(name, stats.total_s, calls=stats.calls)
            mine = self._phases[name]
            if stats.max_s > mine.max_s:
                mine.max_s = stats.max_s

    def reset(self) -> None:
        self._phases.clear()

    def emit(self, bus: "EventBus") -> None:
        """Publish one :class:`ProfilePhase` event per phase."""
        if not bus.enabled:
            return
        now = self.clock()
        sampled = self.stride > 1
        for stats in self.stats().values():
            bus.emit(
                ProfilePhase(
                    now, stats.name, stats.calls, stats.total_s, stats.max_s, sampled
                )
            )


class _NullProfiler(PhaseProfiler):
    """The shared always-disabled profiler.  ``accumulate`` raises —
    call sites must guard with ``enabled``, and an unguarded call on a
    hot path is exactly the overhead bug this class exists to prevent."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def accumulate(self, name: str, elapsed_s: float, calls: int = 1) -> None:
        raise RuntimeError(
            "accumulate() on the null profiler; guard the call site with "
            "`if profiler.enabled:` or pass a real PhaseProfiler"
        )


NULL_PROFILER: PhaseProfiler = _NullProfiler()


def profiler_or_null(profiler: Optional[PhaseProfiler]) -> PhaseProfiler:
    """Normalise an optional profiler argument."""
    return profiler if profiler is not None else NULL_PROFILER
