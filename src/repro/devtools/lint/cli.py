"""Argument wiring and entry point for ``repro lint``.

Kept separate from :mod:`repro.cli` so the main CLI can lazy-import it:
the simulator never pays for the linter, and the linter never imports
the simulator.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.lint.engine import LintReport, lint_paths
from repro.devtools.lint.rules import ALL_RULES, rules_by_id

__all__ = ["add_lint_args", "default_target", "run"]


def default_target() -> Path:
    """The source tree of the installed ``repro`` package (``src/`` in a
    checkout, the package directory in an installed environment)."""
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    return package_dir


def add_lint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="diagnostic output format",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable; id like REPRO-F001 or name "
        "like float-equality)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=0,
        help="maximum allowed unsuppressed diagnostics (default 0)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="ignore findings recorded in this baseline JSON file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record current unsuppressed findings to FILE and exit 0",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs git HEAD (plus untracked)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the interprocedural flow passes (whole-program "
        "RNG-taint, stationarity, and engine-parity analysis)",
    )
    parser.add_argument(
        "--pass",
        action="append",
        default=None,
        dest="deep_pass",
        metavar="NAME",
        help="with --deep: run only this flow pass (repeatable; one of "
        "rng-taint, stationarity, engine-parity)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule pack and exit",
    )


def _changed_files(targets: Sequence[Path]) -> Optional[list[Path]]:
    """Python files changed vs HEAD (tracked) or untracked, limited to
    the lint targets.  ``None`` when git is unavailable."""
    commands = [
        ["git", "diff", "--name-only", "--diff-filter=d", "HEAD", "--", "*.py"],
        ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
    ]
    names: set[str] = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        names.update(line for line in proc.stdout.splitlines() if line)
    resolved_targets = [t.resolve() for t in targets]
    changed: list[Path] = []
    for name in sorted(names):
        path = Path(name)
        if not path.exists():
            continue
        resolved = path.resolve()
        if any(
            resolved == target or target in resolved.parents
            for target in resolved_targets
        ):
            changed.append(path)
    return changed


def run(args: argparse.Namespace) -> int:
    rules = ALL_RULES
    if args.rule:
        try:
            rules = rules_by_id(args.rule)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))

    if args.deep_pass and not args.deep:
        raise SystemExit("--pass requires --deep")
    if args.deep:
        # Flow passes analyse the whole program; a file subset would
        # silently hide cross-module findings.
        if args.paths:
            raise SystemExit("--deep analyses the whole package; drop paths")
        if args.changed:
            raise SystemExit("--deep cannot be combined with --changed")
        if args.rule:
            raise SystemExit(
                "--deep cannot be combined with --rule; use --pass to "
                "select flow passes"
            )

    if args.list_rules:
        if args.deep:
            from repro.devtools.flow import ALL_DEEP_RULES

            rules = (*rules, *ALL_DEEP_RULES)
        for rule in rules:
            print(f"{rule.id}  {rule.name}")
            print(f"    {rule.rationale}")
            print(f"    fix: {rule.fix_hint}")
        return 0

    targets = (
        [Path(p) for p in args.paths] if args.paths else [default_target()]
    )
    for target in targets:
        if not target.exists():
            raise SystemExit(f"no such lint target: {target}")

    if args.changed:
        changed = _changed_files(targets)
        if changed is None:
            print(
                "warning: git unavailable, linting all targets",
                file=sys.stderr,
            )
        elif not changed:
            print("repro lint: no changed Python files")
            return 0
        else:
            targets = changed

    report = lint_paths(targets, rules)
    if args.rule:
        report = report.filter_rules([rule.id for rule in rules])

    deep_extra = None
    if args.deep:
        from repro.devtools.flow import (
            ALL_DEEP_RULES,
            ProjectIndex,
            run_deep,
        )

        index = ProjectIndex.from_package(default_target())
        try:
            deep_report = run_deep(index, args.deep_pass)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
        # Merge diagnostics only: both reports walked the same package,
        # so LintReport.extend would double-count files_checked.
        report.diagnostics.extend(deep_report.diagnostics)
        report.sort()
        rules = (*rules, *ALL_DEEP_RULES)
        deep_extra = {
            "deep": {
                "passes": sorted(args.deep_pass or _all_pass_names()),
                "modules_indexed": len(index.modules),
            }
        }

    if args.baseline:
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            keys = json.loads(baseline_path.read_text())
            report = report.apply_baseline(keys)

    if args.write_baseline:
        keys = sorted({d.baseline_key() for d in report.unsuppressed})
        Path(args.write_baseline).write_text(json.dumps(keys, indent=2))
        print(
            f"wrote {len(keys)} baseline entr{'y' if len(keys) == 1 else 'ies'} "
            f"to {args.write_baseline}"
        )
        return 0

    return render_report(
        report, rules, args.format, args.budget, extra=deep_extra
    )


def _all_pass_names() -> list[str]:
    from repro.devtools.flow import PASS_NAMES

    return list(PASS_NAMES)


def render_report(
    report: LintReport,
    rules: Sequence,
    fmt: str,
    budget: int,
    extra: Optional[dict] = None,
) -> int:
    unsuppressed = report.unsuppressed
    if fmt == "json":
        print(report.to_json(rules=rules, extra=extra))
    else:
        for diagnostic in unsuppressed:
            print(diagnostic.render())
        print(
            f"repro lint: {report.files_checked} files, "
            f"{len(unsuppressed)} diagnostic(s), "
            f"{report.suppressed_count} suppressed"
        )
    return 0 if len(unsuppressed) <= budget else 1
