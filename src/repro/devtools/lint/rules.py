"""The determinism & simulation-hygiene rule pack.

Each rule encodes one invariant the reproduction's guarantees rest on
(see ``docs/STATIC_ANALYSIS.md`` for the full rationale of each):

========  ====================  ==================================================
id        name                  invariant protected
========  ====================  ==================================================
R001      rng-discipline        every random draw comes from a seeded, named
                                stream (replay cache keys, parallel equivalence)
T001      no-wall-clock         simulated code never reads real time (results
                                must be a function of trace + config + seed)
O001      ordered-iteration     no order-sensitive work driven by unordered
                                collections (set iteration order varies per run)
F001      float-equality        no ``==``/``!=`` on money/latency floats
M001      mutable-default       no mutable default arguments (state leaks
                                across calls and across experiments)
E001      raw-event             all engine events go through call_at/call_after/
                                call_every (FIFO tie-break is part of the API)
X001      swallowed-exception   sim loops never silently eat errors (a dropped
                                callback silently skews every metric after it)
J001      telemetry-json        telemetry payloads are JSON-serialisable (JSONL
                                sinks and the events CLI must round-trip them)
========  ====================  ==================================================
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from repro.devtools.lint.engine import Diagnostic, FileContext, Rule

__all__ = ["ALL_RULES", "rules_by_id"]

#: Directories whose randomness must be threaded through
#: ``repro.sim.rng.derive_seed`` — the replay / policy / experiment
#: code whose outputs are cached and compared across runs, plus the
#: telemetry layer (metric aggregation must never perturb or depend on
#: global RNG state).
SEEDED_DIRS = (
    "cloud/",
    "core/",
    "sim/",
    "baselines/",
    "experiments/",
    "chaos/",
    "control/",
    "telemetry/",
    "serving/",
    "workloads/",
)

#: ``numpy.random`` module-level convenience functions: all of them
#: draw from the hidden global RNG.
_NP_GLOBAL_FNS = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "chisquare",
        "choice",
        "dirichlet",
        "exponential",
        "gamma",
        "geometric",
        "get_state",
        "gumbel",
        "laplace",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "normal",
        "pareto",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_integers",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "set_state",
        "shuffle",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "triangular",
        "uniform",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
    }
)

#: ``numpy.random.Generator`` draw methods — used to recognise RNG use
#: inside unordered-iteration bodies.
_GENERATOR_DRAWS = frozenset(
    {
        "choice",
        "exponential",
        "integers",
        "normal",
        "permutation",
        "poisson",
        "random",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _identifier_tokens(node: ast.AST) -> Iterator[str]:
    """Every identifier (Name id / Attribute attr) inside ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


class RngDisciplineRule(Rule):
    """R001: all randomness flows through seeded, named streams."""

    id = "REPRO-R001"
    name = "rng-discipline"
    rationale = (
        "The ReplayCache is keyed on (trace digest, policy, config, seed) "
        "and parallel sweeps are asserted byte-identical to serial runs; "
        "any draw from the stdlib `random` module or numpy's hidden "
        "global RNG makes results depend on process-global state instead."
    )
    fix_hint = (
        "draw from RngRegistry.stream(name) or call "
        "np.random.default_rng(derive_seed(root_seed, name))"
    )
    interests = (ast.Import, ast.ImportFrom, ast.Call)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self.diag(
                        ctx, node, "import of the stdlib `random` module"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield self.diag(
                    ctx, node, "import from the stdlib `random` module"
                )
            elif node.module in ("numpy.random", "numpy.random.mtrand"):
                for alias in node.names:
                    if alias.name in _NP_GLOBAL_FNS:
                        yield self.diag(
                            ctx,
                            node,
                            f"import of global-state numpy.random.{alias.name}",
                        )
        elif isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if (
                len(chain) >= 3
                and chain[-2] == "random"
                and chain[0] in ("np", "numpy")
                and chain[-1] in _NP_GLOBAL_FNS
            ):
                yield self.diag(
                    ctx,
                    node,
                    f"call to numpy.random.{chain[-1]} (hidden global RNG)",
                )
            elif chain and chain[-1] == "default_rng":
                yield from self._check_default_rng(node, ctx)

    def _check_default_rng(
        self, node: ast.Call, ctx: FileContext
    ) -> Iterator[Diagnostic]:
        # Seed-derivation is only mandated in the replay/policy/
        # experiment code whose outputs are cached and compared.
        if not ctx.in_dir(*SEEDED_DIRS):
            return
        if not node.args:
            yield self.diag(
                ctx,
                node,
                "default_rng() without a seed (OS entropy: "
                "non-reproducible)",
            )
            return
        seed = node.args[0]
        if isinstance(seed, ast.Call):
            seed_chain = _attr_chain(seed.func)
            if seed_chain and seed_chain[-1] == "derive_seed":
                return
        yield self.diag(
            ctx,
            node,
            "default_rng() seed is not derived via "
            "repro.sim.rng.derive_seed (streams may collide or correlate)",
        )


class NoWallClockRule(Rule):
    """T001: simulated code never reads the wall clock."""

    id = "REPRO-T001"
    name = "no-wall-clock"
    rationale = (
        "Replay results must be a pure function of (trace, config, seed) "
        "so they can be cached and compared; a wall-clock read makes "
        "output depend on when the experiment ran.  Wall time is only "
        "legitimate at the observability edge (telemetry/ timestamps, "
        "CLI progress)."
    )
    fix_hint = (
        "use SimulationEngine.now for simulated time, or "
        "repro.telemetry.clock for wall-clock timestamps at the "
        "observability edge"
    )
    interests = (ast.Call, ast.ImportFrom)
    exclude = ("telemetry/", "cli.py", "devtools/")

    _TIME_FNS = frozenset(
        {"time", "monotonic", "monotonic_ns", "perf_counter",
         "perf_counter_ns", "process_time", "time_ns"}
    )
    _DATETIME_FNS = frozenset({"now", "utcnow", "today"})

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in self._TIME_FNS:
                        yield self.diag(
                            ctx, node, f"import of wall-clock time.{alias.name}"
                        )
            return
        assert isinstance(node, ast.Call)
        chain = _attr_chain(node.func)
        if len(chain) < 2:
            return
        if chain[-2] == "time" and chain[-1] in self._TIME_FNS:
            yield self.diag(
                ctx, node, f"wall-clock read time.{chain[-1]}()"
            )
        elif chain[-1] in self._DATETIME_FNS and any(
            part in ("datetime", "date") for part in chain[:-1]
        ):
            yield self.diag(
                ctx, node, f"wall-clock read {'.'.join(chain)}()"
            )


def _is_unordered_iterable(node: ast.AST) -> Optional[str]:
    """A description of why ``node`` iterates in undefined order, or
    ``None`` if it is order-safe."""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return "a set literal"
    if isinstance(node, ast.Call):
        chain = _attr_chain(node.func)
        if chain and chain[-1] in ("set", "frozenset") and len(chain) == 1:
            return f"{chain[-1]}(...)"
        if chain and chain[-1] == "keys":
            return ".keys()"
    return None


def _body_order_sensitivity(body: Sequence[ast.stmt]) -> Optional[str]:
    """Why the loop body makes iteration order observable, or ``None``."""
    for stmt in body:
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            chain = _attr_chain(sub.func)
            if not chain:
                continue
            tail = chain[-1]
            if tail in ("append", "appendleft", "extend"):
                return f"appends to a result list via .{tail}()"
            if tail in ("emit", "record", "observe"):
                return f"emits telemetry via .{tail}()"
            if tail in _GENERATOR_DRAWS and any(
                "rng" in part.lower() for part in chain[:-1]
            ):
                return f"consumes RNG draws via .{tail}()"
    return None


class OrderedIterationRule(Rule):
    """O001: no order-sensitive work driven by unordered collections."""

    id = "REPRO-O001"
    name = "ordered-iteration"
    rationale = (
        "Set iteration order depends on insertion history and per-process "
        "hash randomisation for str keys; when the loop body consumes RNG "
        "draws, builds result lists, or emits telemetry, that order leaks "
        "into replay output and breaks run-to-run and parallel-vs-serial "
        "equivalence."
    )
    fix_hint = "iterate over sorted(...) or an explicitly ordered list"
    interests = (ast.For, ast.ListComp)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        if isinstance(node, ast.For):
            why_unordered = _is_unordered_iterable(node.iter)
            if why_unordered is None:
                return
            why_sensitive = _body_order_sensitivity(node.body)
            if why_sensitive is None:
                return
            yield self.diag(
                ctx,
                node,
                f"iteration over {why_unordered} whose body "
                f"{why_sensitive} — order leaks into results",
            )
        elif isinstance(node, ast.ListComp):
            for gen in node.generators:
                why_unordered = _is_unordered_iterable(gen.iter)
                if why_unordered is not None:
                    yield self.diag(
                        ctx,
                        node,
                        f"list built from {why_unordered} — element order "
                        "is undefined",
                    )
                    return


class FloatEqualityRule(Rule):
    """F001: no exact equality on money/latency quantities."""

    id = "REPRO-F001"
    name = "float-equality"
    rationale = (
        "Costs, prices, and latencies are accumulated floats; exact "
        "==/!= on them flips on the last ulp and turns a benign "
        "refactor (summation order, vectorisation) into a behaviour "
        "change the replay-equivalence tests then chase for hours."
    )
    fix_hint = "use math.isclose / an explicit tolerance, or compare ints"
    interests = (ast.Compare,)

    _TOKENS = ("cost", "price", "latency")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        assert isinstance(node, ast.Compare)
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        sides = [node.left, *node.comparators]
        # String/None comparisons are identity-ish, not numeric.
        for side in sides:
            if isinstance(side, ast.Constant) and isinstance(
                side.value, (str, bytes, type(None))
            ):
                return
        for side in sides:
            for token in _identifier_tokens(side):
                lowered = token.lower()
                if any(t in lowered for t in self._TOKENS):
                    yield self.diag(
                        ctx,
                        node,
                        f"exact ==/!= involving float-bearing name "
                        f"{token!r}",
                    )
                    return


class MutableDefaultRule(Rule):
    """M001: no mutable default arguments."""

    id = "REPRO-M001"
    name = "mutable-default"
    rationale = (
        "A mutable default is created once per process and shared by "
        "every call — state from one experiment leaks into the next, "
        "and a parallel sweep worker sees different state than the "
        "serial run."
    )
    fix_hint = "default to None and construct inside, or use frozenset()"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque",
                                "defaultdict", "Counter", "OrderedDict"})

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            bad: Optional[str] = None
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ):
                bad = "a mutable literal"
            elif isinstance(default, ast.Call):
                chain = _attr_chain(default.func)
                if chain and chain[-1] in self._MUTABLE_CALLS:
                    bad = f"a {chain[-1]}() call"
            if bad is not None:
                name = getattr(node, "name", "<lambda>")
                yield self.diag(
                    ctx,
                    default,
                    f"default argument of {name}() is {bad}, shared "
                    "across calls",
                )


class RawEventRule(Rule):
    """E001: engine events only via the scheduling API."""

    id = "REPRO-E001"
    name = "raw-event"
    rationale = (
        "SimulationEngine orders simultaneous events by scheduling "
        "sequence number and keeps a live pending-event counter; "
        "constructing _ScheduledEvent or touching the engine's _queue "
        "directly bypasses both, corrupting FIFO tie-breaks and O(1) "
        "pending counts that replay determinism relies on."
    )
    fix_hint = "schedule via engine.call_at / call_after / call_every"
    interests = (ast.Call, ast.Attribute)
    exclude = ("sim/engine.py",)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain and chain[-1] == "_ScheduledEvent":
                yield self.diag(
                    ctx,
                    node,
                    "direct _ScheduledEvent construction bypasses the "
                    "engine's enqueue API",
                )
        elif isinstance(node, ast.Attribute) and node.attr == "_queue":
            # Only the *engine's* heap is protected; components are free
            # to keep their own request queues under the same name.
            owner = _attr_chain(node.value)
            if owner and owner[-1] in ("engine", "_engine", "sim"):
                yield self.diag(
                    ctx,
                    node,
                    "direct access to the engine's _queue heap",
                )


class SwallowedExceptionRule(Rule):
    """X001: simulation loops never silently eat errors."""

    id = "REPRO-X001"
    name = "swallowed-exception"
    rationale = (
        "A dropped exception inside a sim/reconcile loop silently skips "
        "a callback; every metric after it is subtly wrong and no test "
        "fails loudly.  Bare `except:` additionally traps "
        "KeyboardInterrupt/SystemExit."
    )
    fix_hint = (
        "catch the narrowest exception type and at minimum log or "
        "re-raise; never `except: pass`"
    )
    interests = (ast.ExceptHandler,)

    _BROAD_DIRS = ("sim/", "serving/", "experiments/", "core/", "baselines/")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.diag(
                ctx, node, "bare `except:` (traps SystemExit and "
                "KeyboardInterrupt too)"
            )
            return
        if not ctx.in_dir(*self._BROAD_DIRS):
            return
        if not self._is_broad(node.type):
            return
        if all(self._is_noop(stmt) for stmt in node.body):
            yield self.diag(
                ctx,
                node,
                "broad exception handler silently swallows the error",
            )

    @staticmethod
    def _is_broad(type_node: ast.expr) -> bool:
        names: list[ast.expr] = (
            list(type_node.elts)
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        for name in names:
            chain = _attr_chain(name)
            if chain and chain[-1] in ("Exception", "BaseException"):
                return True
        return False

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        )


class TelemetryJsonRule(Rule):
    """J001: telemetry payloads must be JSON-serialisable."""

    id = "REPRO-J001"
    name = "telemetry-json"
    rationale = (
        "Events flow to JsonlSink and back through `repro events`, and "
        "metric observations land in canonical report JSON; a payload "
        "holding a set, generator, lambda, or bytes either crashes the "
        "sink mid-experiment or (sets) serialises in nondeterministic "
        "order, breaking event-log and report diffs between runs."
    )
    fix_hint = (
        "pass JSON-native values: sort sets into lists, materialise "
        "generators, drop callables"
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        assert isinstance(node, ast.Call)
        chain = _attr_chain(node.func)
        if not chain or chain[-1] not in ("emit", "record", "observe"):
            return
        values = [*node.args, *(kw.value for kw in node.keywords)]
        for value in values:
            bad: Optional[str] = None
            if isinstance(value, (ast.Set, ast.SetComp)):
                bad = "a set (unordered, not JSON-serialisable)"
            elif isinstance(value, ast.GeneratorExp):
                bad = "a generator expression"
            elif isinstance(value, ast.Lambda):
                bad = "a lambda"
            elif isinstance(value, ast.Constant) and isinstance(
                value.value, bytes
            ):
                bad = "a bytes literal"
            elif isinstance(value, ast.Call):
                value_chain = _attr_chain(value.func)
                if value_chain == ["set"] or value_chain == ["frozenset"]:
                    bad = f"a {value_chain[0]}(...) value"
            if bad is not None:
                yield self.diag(
                    ctx,
                    value,
                    f"telemetry payload argument is {bad}",
                )


#: The default rule pack, in id order.
ALL_RULES: tuple[Rule, ...] = (
    RngDisciplineRule(),
    NoWallClockRule(),
    OrderedIterationRule(),
    FloatEqualityRule(),
    MutableDefaultRule(),
    RawEventRule(),
    SwallowedExceptionRule(),
    TelemetryJsonRule(),
)


def rules_by_id(ids: Sequence[str]) -> tuple[Rule, ...]:
    """Resolve rule ids (exact, e.g. ``REPRO-F001``) or names
    (``float-equality``) to rule instances."""
    table = {rule.id: rule for rule in ALL_RULES}
    table.update({rule.name: rule for rule in ALL_RULES})
    selected = []
    for rule_id in ids:
        rule = table.get(rule_id)
        if rule is None:
            known = ", ".join(r.id for r in ALL_RULES)
            raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
        if rule not in selected:
            selected.append(rule)
    return tuple(selected)
