"""AST rule engine for ``repro lint``.

The engine is deliberately small and dependency-free:

* :class:`Rule` — one invariant, expressed as a set of AST node types
  the rule wants to see (``interests``) plus a ``visit`` method run on
  each matching node.  Rules can scope themselves to sub-trees of the
  package (``include`` / ``exclude`` path prefixes), mirroring how the
  invariants themselves are scoped (wall-clock reads are fine in
  ``telemetry/``, fatal in ``sim/``).
* :class:`Diagnostic` — one finding: rule id, file, line/column,
  message, and a fix hint.
* a single AST walk per file that dispatches nodes to every interested
  rule, then a suppression pass over ``# repro: noqa[RULE-ID]``
  comments.

Suppressions are themselves linted: a ``noqa`` marker must carry a
justification (text after the bracket, e.g. ``# repro: noqa[REPRO-F001]:
exact tie-break, both operands read from the same dict``) or the engine
emits ``REPRO-N000``; a marker that suppresses nothing emits
``REPRO-N001`` so stale suppressions cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintReport",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "scan_noqa_markers",
]

#: The suppression marker (bare or with a bracketed rule-id list, plus
#: an optional trailing justification) — syntax in the module docstring.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Za-z0-9,\s\-]+)\])?(?P<rest>.*)$"
)

#: Rule ids reserved by the engine itself.
PARSE_ERROR_ID = "REPRO-P000"
BARE_SUPPRESSION_ID = "REPRO-N000"
UNUSED_SUPPRESSION_ID = "REPRO-N001"

#: Interprocedural (``repro lint --deep``) rule ids.  Markers naming
#: only deep ids are staleness-checked by the flow runner, not here —
#: the per-file engine cannot see whole-program findings.
_DEEP_ID_PREFIX = "REPRO-D"

META_RULES: dict[str, str] = {
    PARSE_ERROR_ID: "file does not parse",
    BARE_SUPPRESSION_ID: "suppression without a justification",
    UNUSED_SUPPRESSION_ID: "suppression that suppresses nothing",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    fix_hint: str = ""
    suppressed: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "suppressed": self.suppressed,
        }

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{mark}"
        if self.fix_hint and not self.suppressed:
            text += f"\n    hint: {self.fix_hint}"
        return text

    def baseline_key(self) -> str:
        """Line-independent identity used by ``--baseline`` files, so a
        baseline survives unrelated edits above the finding."""
        return f"{self.rule}|{self.path}|{self.message}"


@dataclass
class FileContext:
    """Everything a rule may consult about the file being linted."""

    path: str  # display path (as given on the command line)
    relpath: str  # posix path relative to the repro package root
    source: str
    lines: list[str] = field(default_factory=list)
    tree: Optional[ast.AST] = None

    def in_dir(self, *prefixes: str) -> bool:
        """Whether the file lives under any of the package-relative
        ``prefixes`` (``"sim/"``) or *is* one of them (``"cli.py"``)."""
        return any(
            self.relpath == p or self.relpath.startswith(p) for p in prefixes
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`visit`.
    ``interests`` limits which AST node types the engine feeds to the
    rule; ``include``/``exclude`` are package-relative path prefixes
    (empty ``include`` means the rule applies everywhere).
    """

    id: str = "REPRO-X000"
    name: str = "unnamed"
    rationale: str = ""
    fix_hint: str = ""
    interests: tuple[type, ...] = ()
    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        if self.exclude and ctx.in_dir(*self.exclude):
            return False
        if self.include:
            return ctx.in_dir(*self.include)
        return True

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for ``node``.  Default: nothing."""
        return iter(())

    def diag(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        *,
        fix_hint: Optional[str] = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


@dataclass
class LintReport:
    """All diagnostics from one lint run, suppressed findings included."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    @property
    def unsuppressed(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.suppressed]

    @property
    def suppressed_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.suppressed)

    def extend(self, other: LintReport) -> None:
        self.diagnostics.extend(other.diagnostics)
        self.files_checked += other.files_checked

    def sort(self) -> None:
        self.diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))

    def filter_rules(self, rule_ids: Sequence[str]) -> LintReport:
        """A report restricted to ``rule_ids`` (engine meta rules are
        always kept — a parse error is never opt-out)."""
        keep = set(rule_ids) | set(META_RULES)
        kept = [d for d in self.diagnostics if d.rule in keep]
        return LintReport(diagnostics=kept, files_checked=self.files_checked)

    def apply_baseline(self, keys: Iterable[str]) -> LintReport:
        """Mark unsuppressed findings whose baseline key is known as
        suppressed (they pre-date the baseline and are tracked there)."""
        known = set(keys)
        out = [
            replace(d, suppressed=True)
            if not d.suppressed and d.baseline_key() in known
            else d
            for d in self.diagnostics
        ]
        return LintReport(diagnostics=out, files_checked=self.files_checked)

    def to_json(
        self,
        *,
        rules: Sequence[Rule] = (),
        extra: Optional[dict] = None,
    ) -> str:
        """Deterministic machine-readable form (stable key order, stable
        diagnostic order) — the contract ``--format json`` tests pin.
        ``extra`` merges additional top-level keys (``--deep`` adds a
        ``deep`` section); without it the payload is byte-identical to
        the pre-deep format."""
        payload: dict = {
            "version": 1,
            "files_checked": self.files_checked,
            "counts": {
                "unsuppressed": len(self.unsuppressed),
                "suppressed": self.suppressed_count,
            },
            "rules": {
                rule.id: {"name": rule.name, "rationale": rule.rationale}
                for rule in sorted(rules, key=lambda r: r.id)
            },
            "diagnostics": [
                d.to_dict()
                for d in sorted(
                    self.diagnostics,
                    key=lambda d: (d.path, d.line, d.col, d.rule),
                )
            ],
        }
        if extra:
            payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True)


def _relpath_of(path: Path) -> str:
    """Package-relative posix path: the part after the last ``repro``
    directory component, or the bare file name outside the package."""
    parts = list(path.parts)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return path.name


def _walk_with_dispatch(
    tree: ast.AST, rules: Sequence[Rule], ctx: FileContext
) -> list[Diagnostic]:
    """One pass over the tree, feeding each node to interested rules."""
    dispatch: dict[type, list[Rule]] = {}
    for rule in rules:
        for node_type in rule.interests:
            dispatch.setdefault(node_type, []).append(rule)
    found: list[Diagnostic] = []
    for node in ast.walk(tree):
        interested = dispatch.get(type(node))
        if interested is None:
            continue
        for rule in interested:
            found.extend(rule.visit(node, ctx))
    return found


def _comment_lines(source: str) -> dict[int, str]:
    """Map line number -> comment text, via the tokenizer so that
    marker text inside string literals and docstrings is ignored."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable tail: suppressions before it were collected
    return comments


def scan_noqa_markers(
    source: str,
) -> dict[int, tuple[Optional[frozenset[str]], bool]]:
    """Parse every ``# repro: noqa`` marker in ``source``.

    Returns ``{lineno: (rule ids or None for a bare marker, justified)}``
    — shared by the per-file suppression pass here and the deep-marker
    pass in :mod:`repro.devtools.flow.runner`.
    """
    markers: dict[int, tuple[Optional[frozenset[str]], bool]] = {}
    for lineno, line in sorted(_comment_lines(source).items()):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        ids_raw = match.group("ids")
        ids = (
            frozenset(
                part.strip() for part in ids_raw.split(",") if part.strip()
            )
            if ids_raw is not None
            else None
        )
        justification = match.group("rest").strip().lstrip(":-—– ").strip()
        markers[lineno] = (ids, bool(justification))
    return markers


def _apply_suppressions(
    found: list[Diagnostic], ctx: FileContext
) -> list[Diagnostic]:
    """Resolve ``# repro: noqa`` markers and lint the markers themselves."""
    markers = scan_noqa_markers(ctx.source)

    used: set[int] = set()
    out: list[Diagnostic] = []
    for diagnostic in found:
        marker = markers.get(diagnostic.line)
        if marker is not None:
            ids, _ = marker
            if ids is None or diagnostic.rule in ids:
                used.add(diagnostic.line)
                out.append(replace(diagnostic, suppressed=True))
                continue
        out.append(diagnostic)

    for lineno, (ids, justified) in sorted(markers.items()):
        if not justified:
            out.append(
                Diagnostic(
                    rule=BARE_SUPPRESSION_ID,
                    path=ctx.path,
                    line=lineno,
                    col=0,
                    message="suppression without a justification",
                    fix_hint=(
                        "append the reason after the marker, e.g. "
                        "'# repro: noqa[RULE]: why this is safe'"
                    ),
                )
            )
        if lineno not in used:
            if ids is not None and any(
                i.startswith(_DEEP_ID_PREFIX) for i in ids
            ):
                # Deep-rule markers: staleness belongs to the flow
                # runner, which can actually match them.
                continue
            label = ",".join(sorted(ids)) if ids else "all rules"
            out.append(
                Diagnostic(
                    rule=UNUSED_SUPPRESSION_ID,
                    path=ctx.path,
                    line=lineno,
                    col=0,
                    message=f"suppression of {label} matches no diagnostic",
                    fix_hint="delete the stale '# repro: noqa' marker",
                )
            )
    return out


def lint_source(
    source: str,
    rules: Sequence[Rule],
    *,
    path: str = "<memory>",
    virtual: Optional[str] = None,
) -> LintReport:
    """Lint a source string.

    ``virtual`` sets the package-relative path used for rule scoping —
    tests use it to lint fixture code *as if* it lived in, say,
    ``core/`` without touching the real package.
    """
    relpath = virtual if virtual is not None else _relpath_of(Path(path))
    ctx = FileContext(
        path=path,
        relpath=relpath,
        source=source,
        lines=source.splitlines(),
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return LintReport(
            diagnostics=[
                Diagnostic(
                    rule=PARSE_ERROR_ID,
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            files_checked=1,
        )
    ctx.tree = tree
    active = [rule for rule in rules if rule.applies_to(ctx)]
    found = _walk_with_dispatch(tree, active, ctx)
    found = _apply_suppressions(found, ctx)
    report = LintReport(diagnostics=found, files_checked=1)
    report.sort()
    return report


def lint_file(
    path: str | Path,
    rules: Sequence[Rule],
    *,
    virtual: Optional[str] = None,
) -> LintReport:
    """Lint one file on disk."""
    file_path = Path(path)
    return lint_source(
        file_path.read_text(encoding="utf-8"),
        rules,
        path=str(path),
        virtual=virtual,
    )


def iter_python_files(root: str | Path) -> list[Path]:
    """Every ``*.py`` under ``root`` (or ``root`` itself if it is a
    file), sorted for deterministic report order."""
    root_path = Path(root)
    if root_path.is_file():
        return [root_path]
    return sorted(
        p for p in root_path.rglob("*.py") if "__pycache__" not in p.parts
    )


def lint_paths(
    paths: Sequence[str | Path], rules: Sequence[Rule]
) -> LintReport:
    """Lint every Python file under each of ``paths``."""
    report = LintReport()
    seen: set[Path] = set()
    for path in paths:
        for file_path in iter_python_files(path):
            resolved = file_path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            report.extend(lint_file(file_path, rules))
    report.sort()
    return report
