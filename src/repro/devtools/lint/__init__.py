"""``repro lint`` — the repository's determinism & simulation-hygiene linter.

The simulator's headline guarantees — parallel sweeps byte-identical to
serial runs, replay results cacheable by ``(trace digest, policy,
config, seed)``, policy comparisons against identical preemption
realisations — all rest on source-level discipline that Python does not
enforce: no unseeded randomness, no wall-clock reads in simulated code,
no order-sensitive iteration over unordered collections.  This package
encodes those invariants as AST rules so a violation fails CI instead
of silently skewing a figure.

Public surface:

* :class:`~repro.devtools.lint.engine.Diagnostic`,
  :class:`~repro.devtools.lint.engine.LintReport`,
  :class:`~repro.devtools.lint.engine.Rule` — the rule engine;
* :func:`~repro.devtools.lint.engine.lint_file` /
  :func:`~repro.devtools.lint.engine.lint_source` /
  :func:`~repro.devtools.lint.engine.lint_paths` — entry points;
* :data:`~repro.devtools.lint.rules.ALL_RULES` — the default rule pack;
* :func:`~repro.devtools.lint.cli.run` — the ``repro lint`` command.

The whole-program layer — ``repro lint --deep``, which checks the
*interprocedural* contracts (RNG-stream taint, policy stationarity,
engine write-surface parity) over a package call graph — lives in
:mod:`repro.devtools.flow` and reuses this package's ``Diagnostic`` /
``LintReport`` / baseline machinery.
"""

from repro.devtools.lint.engine import (
    Diagnostic,
    LintReport,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.devtools.lint.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "LintReport",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
]
