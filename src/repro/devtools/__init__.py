"""Developer tooling for the reproduction itself.

``repro.devtools`` is deliberately *not* imported by any simulation or
serving code path: it holds the machinery that keeps the rest of the
repository honest:

* :mod:`repro.devtools.lint` — a per-file AST static analyzer encoding
  the simulator's determinism and hygiene invariants as machine-checked
  rules (run it with ``repro lint``);
* :mod:`repro.devtools.flow` — the interprocedural layer on top of it:
  a whole-package symbol table + call graph with passes for RNG-stream
  taint, policy stationarity, and engine write-surface parity (run with
  ``repro lint --deep``);
* :mod:`repro.devtools.perfreg` — the machine-calibrated perf
  regression gate.
"""

__all__: list[str] = []
