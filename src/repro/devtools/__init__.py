"""Developer tooling for the reproduction itself.

``repro.devtools`` is deliberately *not* imported by any simulation or
serving code path: it holds the machinery that keeps the rest of the
repository honest.  Today that is :mod:`repro.devtools.lint`, an
AST-based static analyzer that encodes the simulator's determinism and
hygiene invariants as machine-checked rules (run it with ``repro
lint``).
"""

__all__: list[str] = []
