"""Perf-regression tracker: compare benchmark runs against a committed
baseline, normalised for machine speed, and append to a trajectory log.

The smoke benchmarks (``REPRO_BENCH_SMOKE=1 pytest
benchmarks/test_simulator_performance.py``) record their throughputs
into ``benchmarks/BENCH_replay.json``.  This module turns that artifact
into a CI gate:

* ``benchmarks/PERF_BASELINE.json`` (committed) holds the reference
  throughputs *and* the calibration score of the machine that recorded
  them;
* a fixed CPU-bound :func:`calibration_probe` measures how fast the
  current machine is relative to the baseline machine, so a slow CI
  runner does not read as a code regression (and a fast one does not
  mask a real regression);
* each check multiplies the measured throughput by the calibration
  ratio and fails when the normalised value falls more than
  :data:`REGRESSION_TOLERANCE` (20%) below the baseline;
* every run — pass or fail — appends one JSON line to
  ``benchmarks/TRAJECTORY.jsonl`` (throughputs, calibration, profiler
  phase timings when present, verdicts), building the longitudinal
  perf trajectory the CI job uploads as an artifact.

Run it as a module::

    python -m repro.devtools.perfreg check      # gate (exit 1 on regression)
    python -m repro.devtools.perfreg baseline   # refresh PERF_BASELINE.json

``repro.devtools`` is outside the simulation import graph, so the
wall-clock reads here (timing the probe, stamping trajectory rows) are
legitimate; they still go through :mod:`repro.telemetry.clock`.
"""

from __future__ import annotations

import argparse
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence

import numpy as np

from repro.telemetry.clock import wall_monotonic, wall_time

__all__ = [
    "BENCH_PATH",
    "BASELINE_PATH",
    "REGRESSION_TOLERANCE",
    "THROUGHPUT_FIELDS",
    "TRAJECTORY_PATH",
    "PerfCheck",
    "append_trajectory",
    "build_record",
    "calibration_probe",
    "check_entries",
    "main",
    "write_baseline",
]

_BENCH_DIR = Path(__file__).resolve().parents[3] / "benchmarks"

#: Where the smoke benchmarks record their numbers (gitignored).
BENCH_PATH = _BENCH_DIR / "BENCH_replay.json"
#: The committed reference throughputs + calibration.
BASELINE_PATH = _BENCH_DIR / "PERF_BASELINE.json"
#: Append-only longitudinal log of every tracked run (committed).
TRAJECTORY_PATH = _BENCH_DIR / "TRAJECTORY.jsonl"

#: Fail when normalised throughput drops more than this below baseline.
REGRESSION_TOLERANCE = 0.20

#: Benchmark entry -> its throughput field (higher is better).
THROUGHPUT_FIELDS: dict[str, str] = {
    "replay": "steps_per_second",
    "replay_hetero": "steps_per_second",
    "replay_vectorized": "steps_per_second",
    "hybrid_sweep": "points_per_second",
    "batched_inference": "requests_per_second",
    "latency_estimation": "requests_per_second",
}


def calibration_probe(repeats: int = 3) -> float:
    """Seconds (min of ``repeats``) for a fixed CPU-bound workload.

    Mixes a pure-Python loop with numpy array math in roughly the
    proportions of the replay hot path, so the score tracks how fast
    *this* machine runs the benchmarks — the ratio of two machines'
    probe times normalises their throughputs onto one scale.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats!r}")
    best = math.inf
    # One untimed warm-up settles allocator pools and cache state so the
    # first timed repeat is comparable to the rest.
    for _ in range(repeats + 1):
        start = wall_monotonic()
        acc = 0
        for i in range(200_000):
            acc += i * i
        values = np.arange(100_000, dtype=float)
        for _ in range(20):
            values = np.sqrt(values * 1.0001 + 1.0)
        # Fold results into the timing window so nothing is dead code.
        _ = acc + float(values[0])
        elapsed = wall_monotonic() - start
        if elapsed < best:
            best = elapsed
    return best


@dataclass(frozen=True)
class PerfCheck:
    """One entry's verdict against the baseline."""

    entry: str
    field: str
    measured: float
    #: ``measured`` scaled by (this machine's probe / baseline probe).
    normalized: float
    baseline: float
    #: ``normalized / baseline`` — < 1 - tolerance fails.
    ratio: float
    ok: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "entry": self.entry,
            "field": self.field,
            "measured": round(self.measured, 3),
            "normalized": round(self.normalized, 3),
            "baseline": round(self.baseline, 3),
            "ratio": round(self.ratio, 4),
            "ok": self.ok,
        }


def check_entries(
    bench: dict[str, Any],
    baseline: dict[str, Any],
    calibration_s: float,
    *,
    tolerance: float = REGRESSION_TOLERANCE,
) -> list[PerfCheck]:
    """Compare every tracked throughput in ``bench`` to ``baseline``.

    Entries absent from either side are skipped (a new benchmark has no
    baseline yet; a retired one no longer runs) — the gate only judges
    what both sides measured.  Mode mismatches (smoke vs full) are
    skipped too: their workload sizes are not comparable.

    The calibration scale is asymmetric on purpose: a runner *slower*
    than the baseline machine gets its throughput scaled up
    proportionally (a slow CI box is not a code regression), but a
    faster runner is never scaled down — probe jitter on a fast machine
    must not manufacture a regression out of identical numbers.  Real
    regressions still fail on same-or-slower machines, which CI runners
    (vs the dev box that records baselines) essentially always are.
    """
    base_cal = float(baseline.get("calibration_seconds", 0.0))
    scale = max(1.0, calibration_s / base_cal) if base_cal > 0 else 1.0
    base_entries = baseline.get("entries", {})
    checks: list[PerfCheck] = []
    for entry, field in sorted(THROUGHPUT_FIELDS.items()):
        current = bench.get(entry)
        reference = base_entries.get(entry)
        if not current or not reference:
            continue
        if current.get("smoke") != reference.get("smoke"):
            continue
        measured = float(current.get(field, 0.0))
        base_value = float(reference.get(field, 0.0))
        if measured <= 0 or base_value <= 0:
            continue
        normalized = measured * scale
        ratio = normalized / base_value
        checks.append(
            PerfCheck(
                entry=entry,
                field=field,
                measured=measured,
                normalized=normalized,
                baseline=base_value,
                ratio=ratio,
                ok=ratio >= 1.0 - tolerance,
            )
        )
    return checks


def build_record(
    bench: dict[str, Any],
    checks: Sequence[PerfCheck],
    calibration_s: float,
) -> dict[str, Any]:
    """One trajectory row: throughputs, verdicts, profiler phases."""
    entries = {
        entry: {
            field: round(float(bench[entry][field]), 3)
            for field in (THROUGHPUT_FIELDS[entry], "seconds")
            if field in bench[entry]
        }
        for entry in sorted(THROUGHPUT_FIELDS)
        if entry in bench
    }
    record: dict[str, Any] = {
        "timestamp": round(wall_time(), 3),
        "calibration_seconds": round(calibration_s, 6),
        "smoke": any(v.get("smoke") for v in bench.values() if isinstance(v, dict)),
        "entries": entries,
        "checks": [c.to_dict() for c in checks],
        "ok": all(c.ok for c in checks),
    }
    phases = bench.get("replay_phases")
    if isinstance(phases, dict):
        record["replay_phases"] = {
            name: round(float(value), 6)
            for name, value in sorted(phases.items())
            # record_baseline tags every entry with a "smoke" bool;
            # only the phase-total floats belong in the trajectory.
            if isinstance(value, float)
        }
    return record


def append_trajectory(
    record: dict[str, Any], path: Path = TRAJECTORY_PATH
) -> None:
    """Append one JSON line to the trajectory log."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True))
        handle.write("\n")


def write_baseline(
    bench: dict[str, Any],
    calibration_s: float,
    path: Path = BASELINE_PATH,
) -> dict[str, Any]:
    """Record the current run as the committed reference baseline."""
    entries = {}
    for entry, field in sorted(THROUGHPUT_FIELDS.items()):
        current = bench.get(entry)
        if not current or field not in current:
            continue
        entries[entry] = {
            field: round(float(current[field]), 3),
            "smoke": bool(current.get("smoke")),
        }
    if not entries:
        raise SystemExit(
            f"no tracked entries in benchmark artifact; run the smoke "
            f"benchmarks first (expected one of {sorted(THROUGHPUT_FIELDS)})"
        )
    baseline = {
        "calibration_seconds": round(calibration_s, 6),
        "entries": entries,
        "tolerance": REGRESSION_TOLERANCE,
    }
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return baseline


def _load(path: Path, what: str) -> dict[str, Any]:
    if not path.exists():
        raise SystemExit(f"no {what} at {path}")
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        raise SystemExit(f"malformed {what} at {path}: {exc}")
    if not isinstance(data, dict):
        raise SystemExit(f"malformed {what} at {path}: expected an object")
    return data


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.perfreg",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "command",
        nargs="?",
        default="check",
        choices=("check", "baseline"),
        help="check: gate against PERF_BASELINE.json (default); "
        "baseline: refresh it from the current BENCH artifact",
    )
    parser.add_argument(
        "--bench", default=str(BENCH_PATH), help="benchmark artifact to read"
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), help="committed baseline path"
    )
    parser.add_argument(
        "--trajectory",
        default=str(TRAJECTORY_PATH),
        help="trajectory JSONL to append to",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=REGRESSION_TOLERANCE,
        help="fractional regression that fails the gate (default 0.20)",
    )
    args = parser.parse_args(argv)

    bench = _load(Path(args.bench), "benchmark artifact")
    calibration_s = calibration_probe()

    if args.command == "baseline":
        write_baseline(bench, calibration_s, Path(args.baseline))
        print(f"wrote baseline to {args.baseline} "
              f"(calibration {calibration_s * 1e3:.1f}ms)")
        return 0

    baseline = _load(Path(args.baseline), "perf baseline")
    checks = check_entries(
        bench, baseline, calibration_s, tolerance=args.tolerance
    )
    record = build_record(bench, checks, calibration_s)
    append_trajectory(record, Path(args.trajectory))

    base_cal = float(baseline.get("calibration_seconds", 0.0))
    speed = base_cal / calibration_s if calibration_s > 0 else float("nan")
    print(f"machine calibration: {calibration_s * 1e3:.1f}ms probe "
          f"({speed:.2f}x the baseline machine)")
    if not checks:
        print("no comparable entries (new baseline or mode mismatch): pass")
        return 0
    for check in checks:
        verdict = "ok" if check.ok else "REGRESSION"
        print(
            f"  {check.entry}.{check.field}: {check.measured:,.0f} measured, "
            f"{check.normalized:,.0f} normalized vs {check.baseline:,.0f} "
            f"baseline ({check.ratio:.2f}x) {verdict}"
        )
    if not record["ok"]:
        print(
            f"perf regression: normalized throughput fell more than "
            f"{args.tolerance:.0%} below the committed baseline"
        )
        return 1
    print("perf gate: pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
