"""Project symbol table + call graph for ``repro lint --deep``.

The per-file rule engine (:mod:`repro.devtools.lint.engine`) sees one
AST at a time, so it cannot answer questions like "does any function
reachable from ``MixturePolicy.target_mix`` read the wall clock?" or
"is this Generator pickled into a sweep worker?".  :class:`ProjectIndex`
parses every module of the package into one structure the
interprocedural passes (:mod:`repro.devtools.flow.rngflow`,
:mod:`~repro.devtools.flow.stationarity`,
:mod:`~repro.devtools.flow.parity`) share:

* :class:`ModuleInfo` — source, AST, and an import table resolving local
  names to dotted targets (including ``TYPE_CHECKING``-guarded and
  function-local imports, which matter for annotation resolution);
* :class:`ClassInfo` — bases (resolved best-effort), methods, class
  attributes, and *inferred instance-attribute types* from ``__init__``
  assignments, parameter annotations, and class-body annotations;
* :class:`FunctionInfo` — every function and method with resolved
  parameter types;
* :meth:`ProjectIndex.resolve_call` — call-graph edges covering direct
  names, ``self.method()``, ``self.attr.method()`` through inferred
  attribute types with subclass virtual dispatch, annotated-parameter
  receivers, locally-constructed receivers, ``super()``, module-alias
  calls, and class construction (edges to ``__init__``).

Everything is best-effort static analysis: unresolvable calls yield no
edge and the passes decide how conservatively to treat that.  Tests
build tiny virtual projects with :meth:`ProjectIndex.from_sources`, the
whole-program analogue of the ``virtual=`` path idiom in
``tests/devtools``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "attr_chain",
]

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner: Optional[str] = None  # owning class qname, None for functions
    param_names: tuple[str, ...] = ()
    #: parameter name -> resolved dotted type (best effort)
    param_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class: bases, methods, and inferred attribute types."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class-body assignments (``name = <expr>`` / annotated), by name
    class_attrs: dict[str, ast.expr] = field(default_factory=dict)
    #: instance attribute -> resolved dotted type (best effort)
    attr_types: dict[str, str] = field(default_factory=dict)
    #: instance attribute -> every ``self.attr = <expr>`` value seen
    attr_assigns: dict[str, list[ast.expr]] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module with its import table."""

    name: str
    path: str
    relpath: str
    source: str
    tree: ast.Module
    is_package: bool = False
    #: local name -> dotted target ("np" -> "numpy", "ServingPolicy" ->
    #: "repro.serving.policy.ServingPolicy")
    imports: dict[str, str] = field(default_factory=dict)
    #: top-level definitions (functions, classes, assignments)
    defs: set[str] = field(default_factory=set)
    #: top-level ``name = <expr>`` assignments, by name
    module_assigns: dict[str, ast.expr] = field(default_factory=dict)

    def in_dir(self, *prefixes: str) -> bool:
        return any(
            self.relpath == p or self.relpath.startswith(p) for p in prefixes
        )


@dataclass(frozen=True)
class CallSite:
    """One resolved call expression inside a function."""

    node: ast.Call
    chain: tuple[str, ...]
    #: in-index callee qnames (several under virtual dispatch)
    targets: tuple[str, ...]
    #: dotted name outside the index ("numpy.random.default_rng"), when
    #: the call resolved but not to project code
    external: Optional[str] = None


def _module_relpath(package: str, name: str, is_package: bool) -> str:
    parts = name.split(".")
    if parts[0] == package:
        parts = parts[1:]
    if not parts:
        return "__init__.py"
    if is_package:
        return "/".join(parts) + "/__init__.py"
    return "/".join(parts) + ".py"


class ProjectIndex:
    """Whole-package symbol table + call graph."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self._direct_subclasses: dict[str, set[str]] = {}
        self._local_types: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_package(cls, root: str | Path) -> "ProjectIndex":
        """Index every ``*.py`` under the package directory ``root``."""
        root_path = Path(root)
        package = root_path.name
        sources: dict[str, str] = {}
        paths: dict[str, str] = {}
        packages: set[str] = set()
        for path in sorted(root_path.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root_path)
            parts = list(rel.parts)
            if parts[-1] == "__init__.py":
                parts = parts[:-1]
                name = ".".join([package, *parts])
                packages.add(name)
            else:
                parts[-1] = parts[-1][:-3]
                name = ".".join([package, *parts])
            sources[name] = path.read_text(encoding="utf-8")
            paths[name] = str(path)
        return cls._build(package, sources, paths, packages)

    @classmethod
    def from_sources(
        cls, sources: Mapping[str, str], package: str = "repro"
    ) -> "ProjectIndex":
        """Index an in-memory project: ``{module name: source}``.

        The whole-program analogue of linting fixture code under a
        ``virtual=`` path — tests hand in small synthetic packages whose
        module names place them in scoped directories (``repro.core.x``
        lives at ``core/x.py``).
        """
        return cls._build(package, dict(sources), None, set())

    @classmethod
    def _build(
        cls,
        package: str,
        sources: dict[str, str],
        paths: Optional[dict[str, str]],
        packages: set[str],
    ) -> "ProjectIndex":
        index = cls(package)
        for name in sorted(sources):
            source = sources[name]
            try:
                tree = ast.parse(source, filename=name)
            except SyntaxError:
                continue  # the shallow engine reports REPRO-P000
            is_package = name in packages
            relpath = _module_relpath(package, name, is_package)
            module = ModuleInfo(
                name=name,
                path=paths[name] if paths else relpath,
                relpath=relpath,
                source=source,
                tree=tree,
                is_package=is_package,
            )
            index.modules[name] = module
            index._collect_module(module)
        index._resolve_second_phase()
        return index

    def _collect_module(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports.setdefault(local, target)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports.setdefault(local, f"{base}.{alias.name}")
        for stmt in module.tree.body:
            if isinstance(stmt, _FUNC_DEFS):
                module.defs.add(stmt.name)
                self._add_function(module, stmt, owner=None)
            elif isinstance(stmt, ast.ClassDef):
                module.defs.add(stmt.name)
                self._add_class(module, stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module.defs.add(target.id)
                        module.module_assigns[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                module.defs.add(stmt.target.id)
                if stmt.value is not None:
                    module.module_assigns[stmt.target.id] = stmt.value

    @staticmethod
    def _import_base(
        module: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = module.name.split(".")
        if not module.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop:
            parts = parts[: len(parts) - drop] if drop <= len(parts) else []
        if not parts:
            return node.module
        base = ".".join(parts)
        return f"{base}.{node.module}" if node.module else base

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: Optional[str],
    ) -> FunctionInfo:
        qname = (
            f"{owner}.{node.name}" if owner else f"{module.name}.{node.name}"
        )
        args = node.args
        params = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        info = FunctionInfo(
            qname=qname,
            module=module.name,
            name=node.name,
            node=node,
            owner=owner,
            param_names=tuple(a.arg for a in params),
        )
        self.functions[qname] = info
        return info

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qname = f"{module.name}.{node.name}"
        info = ClassInfo(
            qname=qname, module=module.name, name=node.name, node=node
        )
        self.classes[qname] = info
        for stmt in node.body:
            if isinstance(stmt, _FUNC_DEFS):
                info.methods[stmt.name] = self._add_function(
                    module, stmt, owner=qname
                )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.class_attrs[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if stmt.value is not None:
                    info.class_attrs[stmt.target.id] = stmt.value
                ann = self.resolve_annotation_late(module, stmt.annotation)
                if ann:
                    info.attr_types.setdefault(stmt.target.id, ann)

    # Annotations in the class body are resolved before all imports are
    # in: do it lazily via a tiny deferral (second phase re-resolves).
    def resolve_annotation_late(
        self, module: ModuleInfo, node: Optional[ast.expr]
    ) -> Optional[str]:
        return self.resolve_annotation(module, node)

    def _resolve_second_phase(self) -> None:
        for info in self.classes.values():
            module = self.modules[info.module]
            bases: list[str] = []
            for base in info.node.bases:
                chain = attr_chain(base)
                if not chain:
                    continue
                resolved = self.resolve_name(module, chain)
                bases.append(resolved or ".".join(chain))
            info.bases = tuple(bases)
            for base in bases:
                self._direct_subclasses.setdefault(base, set()).add(
                    info.qname
                )
        for fn in self.functions.values():
            module = self.modules[fn.module]
            args = fn.node.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                resolved = self.resolve_annotation(module, arg.annotation)
                if resolved:
                    fn.param_types[arg.arg] = resolved
        for info in self.classes.values():
            self._infer_attr_types(info)

    def _infer_attr_types(self, info: ClassInfo) -> None:
        module = self.modules[info.module]
        for method in info.methods.values():
            for node in ast.walk(method.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        ann = self.resolve_annotation(module, node.annotation)
                        if ann:
                            info.attr_types.setdefault(target.attr, ann)
                if (
                    target is None
                    or not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                if value is not None:
                    info.attr_assigns.setdefault(target.attr, []).append(
                        value
                    )
                    inferred = self._infer_value_type(module, method, value)
                    if inferred:
                        info.attr_types.setdefault(target.attr, inferred)

    def _infer_value_type(
        self, module: ModuleInfo, fn: FunctionInfo, value: ast.expr
    ) -> Optional[str]:
        if isinstance(value, ast.Call):
            chain = attr_chain(value.func)
            if chain:
                resolved = self.resolve_name(module, chain)
                if resolved and resolved in self.classes:
                    return resolved
            return None
        if isinstance(value, ast.Name):
            return fn.param_types.get(value.id)
        return None

    # ------------------------------------------------------------------
    # Name / annotation resolution
    # ------------------------------------------------------------------
    def resolve_name(
        self, module: ModuleInfo, chain: Sequence[str]
    ) -> Optional[str]:
        """Resolve a dotted name chain in ``module`` to a project or
        external dotted qname (following package re-exports)."""
        if not chain:
            return None
        head = chain[0]
        if head in module.defs:
            base = f"{module.name}.{head}"
        elif head in module.imports:
            base = module.imports[head]
        else:
            return None
        full = ".".join([base, *chain[1:]])
        return self._follow_reexports(full)

    def _follow_reexports(self, qname: str) -> str:
        for _ in range(4):
            if (
                qname in self.functions
                or qname in self.classes
                or qname in self.modules
            ):
                return qname
            head, _, last = qname.rpartition(".")
            owner = self.modules.get(head)
            if owner is None or last not in owner.imports:
                return qname
            qname = owner.imports[last]
        return qname

    def resolve_annotation(
        self, module: ModuleInfo, node: Optional[ast.expr]
    ) -> Optional[str]:
        """Dotted type named by an annotation (unwrapping ``Optional``/
        ``Union``/``X | None`` and quoted forward references)."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            base = attr_chain(node.value)
            if base and base[-1] in ("Optional", "Union"):
                elements = (
                    list(node.slice.elts)
                    if isinstance(node.slice, ast.Tuple)
                    else [node.slice]
                )
                for element in elements:
                    if isinstance(element, ast.Constant) and element.value is None:
                        continue
                    resolved = self.resolve_annotation(module, element)
                    if resolved:
                        return resolved
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            for side in (node.left, node.right):
                if isinstance(side, ast.Constant) and side.value is None:
                    continue
                resolved = self.resolve_annotation(module, side)
                if resolved:
                    return resolved
            return None
        chain = attr_chain(node)
        if not chain:
            return None
        resolved = self.resolve_name(module, chain)
        return resolved or ".".join(chain)

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------
    def mro(self, qname: str) -> list[ClassInfo]:
        """Linearised ancestry within the index (approximate MRO)."""
        out: list[ClassInfo] = []
        queue, seen = [qname], set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            out.append(info)
            queue.extend(info.bases)
        return out

    def transitive_subclasses(self, qname: str) -> set[str]:
        out: set[str] = set()
        queue = [qname]
        while queue:
            for sub in self._direct_subclasses.get(queue.pop(), ()):
                if sub not in out:
                    out.add(sub)
                    queue.append(sub)
        return out

    def lookup_method(
        self, cls_qname: str, name: str
    ) -> Optional[FunctionInfo]:
        for info in self.mro(cls_qname):
            if name in info.methods:
                return info.methods[name]
        return None

    def attr_type(self, cls_qname: str, attr: str) -> Optional[str]:
        for info in self.mro(cls_qname):
            if attr in info.attr_types:
                return info.attr_types[attr]
        return None

    def attr_assignments(self, cls_qname: str, attr: str) -> list[ast.expr]:
        out: list[ast.expr] = []
        for info in self.mro(cls_qname):
            out.extend(info.attr_assigns.get(attr, ()))
        return out

    def class_attr(
        self, cls_qname: str, attr: str
    ) -> Optional[ast.expr]:
        for info in self.mro(cls_qname):
            if attr in info.class_attrs:
                return info.class_attrs[attr]
        return None

    def virtual_targets(
        self, cls_qname: str, method: str
    ) -> list[FunctionInfo]:
        """``method`` resolved on ``cls_qname`` *and* every subclass —
        the static over-approximation of virtual dispatch."""
        out: list[FunctionInfo] = []
        seen: set[str] = set()
        for candidate in [cls_qname, *sorted(self.transitive_subclasses(cls_qname))]:
            target = self.lookup_method(candidate, method)
            if target is not None and target.qname not in seen:
                seen.add(target.qname)
                out.append(target)
        return out

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------
    def _function_local_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Parameter types plus locally-constructed receiver types."""
        cached = self._local_types.get(fn.qname)
        if cached is not None:
            return cached
        module = self.modules[fn.module]
        env = dict(fn.param_types)
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            inferred = self._infer_value_type(module, fn, node.value)
            if inferred:
                env.setdefault(target.id, inferred)
        self._local_types[fn.qname] = env
        return env

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> CallSite:
        """Resolve one call expression inside ``fn`` to callee(s)."""
        chain = tuple(attr_chain(call.func))
        # super().method(...)
        if (
            not chain
            and isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Call)
            and isinstance(call.func.value.func, ast.Name)
            and call.func.value.func.id == "super"
            and fn.owner is not None
        ):
            ancestry = self.mro(fn.owner)[1:]
            for info in ancestry:
                if call.func.attr in info.methods:
                    target = info.methods[call.func.attr]
                    return CallSite(
                        node=call,
                        chain=("super", call.func.attr),
                        targets=(target.qname,),
                    )
            return CallSite(node=call, chain=("super", call.func.attr), targets=())
        if not chain:
            return CallSite(node=call, chain=(), targets=())
        module = self.modules[fn.module]
        if chain[0] == "self" and fn.owner is not None:
            if len(chain) == 2:
                target = self.lookup_method(fn.owner, chain[1])
                return CallSite(
                    node=call,
                    chain=chain,
                    targets=(target.qname,) if target else (),
                )
            if len(chain) == 3:
                attr_cls = self.attr_type(fn.owner, chain[1])
                if attr_cls and attr_cls in self.classes:
                    targets = tuple(
                        t.qname
                        for t in self.virtual_targets(attr_cls, chain[2])
                    )
                    return CallSite(node=call, chain=chain, targets=targets)
            return CallSite(node=call, chain=chain, targets=())
        local_types = self._function_local_types(fn)
        if len(chain) >= 2 and chain[0] in local_types:
            receiver = local_types[chain[0]]
            if receiver in self.classes:
                if len(chain) == 2:
                    targets = tuple(
                        t.qname
                        for t in self.virtual_targets(receiver, chain[1])
                    )
                    return CallSite(node=call, chain=chain, targets=targets)
                if len(chain) == 3:
                    attr_cls = self.attr_type(receiver, chain[1])
                    if attr_cls and attr_cls in self.classes:
                        targets = tuple(
                            t.qname
                            for t in self.virtual_targets(attr_cls, chain[2])
                        )
                        return CallSite(
                            node=call, chain=chain, targets=targets
                        )
            return CallSite(node=call, chain=chain, targets=())
        resolved = self.resolve_name(module, chain)
        if resolved is None:
            return CallSite(node=call, chain=chain, targets=())
        if resolved in self.functions:
            return CallSite(node=call, chain=chain, targets=(resolved,))
        if resolved in self.classes:
            init = self.lookup_method(resolved, "__init__")
            return CallSite(
                node=call,
                chain=chain,
                targets=(init.qname,) if init else (),
                external=resolved,
            )
        return CallSite(node=call, chain=chain, targets=(), external=resolved)

    def iter_calls(self, fn: FunctionInfo) -> Iterator[CallSite]:
        """Every call expression in ``fn`` (nested defs included)."""
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                yield self.resolve_call(fn, node)

    def reachable(
        self,
        entries: Sequence[str],
        *,
        exclude_dirs: tuple[str, ...] = (),
    ) -> set[str]:
        """Function qnames reachable from ``entries`` through resolved
        call edges, never descending into ``exclude_dirs`` modules."""
        seen: set[str] = set()
        queue = [q for q in entries if q in self.functions]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            fn = self.functions.get(current)
            if fn is None:
                continue
            if exclude_dirs and self.modules[fn.module].in_dir(*exclude_dirs):
                continue
            seen.add(current)
            for site in self.iter_calls(fn):
                queue.extend(t for t in site.targets if t not in seen)
        return seen
